//! WAL record kinds and their CRC-framed wire encoding.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [len: u32][crc: u32][payload: len bytes]
//! payload = [tag: u8][fields...]
//! ```
//!
//! `crc` is the CRC-32 of the payload alone, so a frame is valid iff the
//! header is intact *and* every payload byte survived. Decoding a stream
//! ([`decode_stream`]) walks frames until the first one that is
//! truncated, oversized, checksum-corrupt, or undecodable, and reports
//! the byte length of the clean prefix — the recovery contract is "the
//! log is its longest clean prefix", which is exactly what an
//! append-only log with torn final writes guarantees physically.

use crate::crc::crc32;

/// Upper bound on a single payload; anything larger in a length header
/// is treated as corruption (a torn length field can claim 4 GiB).
pub const MAX_PAYLOAD: usize = 1 << 26;

/// Byte overhead of the frame header (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// One durable log record. `shard`/`txn` identify a transaction in the
/// server's shard-local id space; `entity` is the shard-local entity
/// index and `value` the written domain value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction was defined on `shard`.
    Begin {
        /// Owning shard.
        shard: u32,
        /// Shard-local transaction id.
        txn: u64,
    },
    /// A write was applied to the shard's multiversion store.
    Write {
        /// Owning shard.
        shard: u32,
        /// Shard-local transaction id.
        txn: u64,
        /// Shard-local entity index.
        entity: u32,
        /// Written value.
        value: i64,
    },
    /// The transaction committed. A commit is visible after recovery iff
    /// this record is in the durable clean prefix.
    Commit {
        /// Owning shard.
        shard: u32,
        /// Shard-local transaction id.
        txn: u64,
    },
    /// The transaction aborted — explicitly, by re-eval, or by a cascade
    /// that can undo an already-committed sibling (commit is only
    /// relative to the parent in the KS model), so an `Abort` *after* a
    /// `Commit` for the same transaction revokes it.
    Abort {
        /// Owning shard.
        shard: u32,
        /// Shard-local transaction id.
        txn: u64,
    },
    /// Full materialized state of every shard, written (and synced)
    /// at service startup before any transaction of the new incarnation.
    /// Doubles as an epoch fence: recovery replays only records after
    /// the last checkpoint, so shard-local txn ids reused across
    /// restarts can never collide.
    Checkpoint {
        /// Per-shard entity values, indexed `[shard][entity]`.
        shards: Vec<Vec<i64>>,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;

impl WalRecord {
    /// Encode as one frame, appended to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(32);
        match self {
            WalRecord::Begin { shard, txn } => {
                payload.push(TAG_BEGIN);
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Write {
                shard,
                txn,
                entity,
                value,
            } => {
                payload.push(TAG_WRITE);
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&txn.to_le_bytes());
                payload.extend_from_slice(&entity.to_le_bytes());
                payload.extend_from_slice(&value.to_le_bytes());
            }
            WalRecord::Commit { shard, txn } => {
                payload.push(TAG_COMMIT);
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Abort { shard, txn } => {
                payload.push(TAG_ABORT);
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Checkpoint { shards } => {
                payload.push(TAG_CHECKPOINT);
                payload.extend_from_slice(&(shards.len() as u32).to_le_bytes());
                for entities in shards {
                    payload.extend_from_slice(&(entities.len() as u32).to_le_bytes());
                    for v in entities {
                        payload.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }

    /// Encoded frame length in bytes.
    pub fn frame_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Decode one payload (the bytes after the frame header). `None` on
    /// unknown tag, short fields, or trailing garbage — a payload must
    /// be consumed exactly.
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let (&tag, rest) = payload.split_first()?;
        let mut cur = Cursor(rest);
        let record = match tag {
            TAG_BEGIN | TAG_COMMIT | TAG_ABORT => {
                let shard = cur.u32()?;
                let txn = cur.u64()?;
                match tag {
                    TAG_BEGIN => WalRecord::Begin { shard, txn },
                    TAG_COMMIT => WalRecord::Commit { shard, txn },
                    _ => WalRecord::Abort { shard, txn },
                }
            }
            TAG_WRITE => WalRecord::Write {
                shard: cur.u32()?,
                txn: cur.u64()?,
                entity: cur.u32()?,
                value: cur.u64()? as i64,
            },
            TAG_CHECKPOINT => {
                let nshards = cur.u32()? as usize;
                // Arity sanity: each shard needs at least its length word.
                if nshards > payload.len() {
                    return None;
                }
                let mut shards = Vec::with_capacity(nshards);
                for _ in 0..nshards {
                    let n = cur.u32()? as usize;
                    if n.checked_mul(8)? > cur.0.len() {
                        return None;
                    }
                    let mut entities = Vec::with_capacity(n);
                    for _ in 0..n {
                        entities.push(cur.u64()? as i64);
                    }
                    shards.push(entities);
                }
                WalRecord::Checkpoint { shards }
            }
            _ => return None,
        };
        if cur.0.is_empty() {
            Some(record)
        } else {
            None
        }
    }
}

/// Little-endian field reader over a payload tail.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn u32(&mut self) -> Option<u32> {
        let (head, tail) = self.0.split_first_chunk::<4>()?;
        self.0 = tail;
        Some(u32::from_le_bytes(*head))
    }

    fn u64(&mut self) -> Option<u64> {
        let (head, tail) = self.0.split_first_chunk::<8>()?;
        self.0 = tail;
        Some(u64::from_le_bytes(*head))
    }
}

/// Result of scanning a byte stream: the records of the clean prefix,
/// its byte length, and — when the stream did not end exactly at a frame
/// boundary — why the scan stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamScan {
    /// Every record decoded from the clean prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the clean prefix (`bytes[..clean_len]` re-decodes
    /// to exactly `records`).
    pub clean_len: usize,
    /// `None` when the stream ends at a frame boundary; otherwise a
    /// human-readable reason the tail was discarded (torn header, torn
    /// payload, CRC mismatch, undecodable payload, oversized length).
    pub torn: Option<String>,
}

/// Scan `bytes` as a sequence of frames, stopping at the first damage.
///
/// This is total: any byte string yields a (possibly empty) clean prefix
/// and never panics, which is what lets recovery treat "whatever the
/// disk has" as input.
pub fn decode_stream(bytes: &[u8]) -> StreamScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    let torn = loop {
        if at == bytes.len() {
            break None;
        }
        let rest = &bytes[at..];
        if rest.len() < FRAME_HEADER {
            break Some(format!("torn frame header: {} trailing bytes", rest.len()));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            break Some(format!("oversized payload length {len}"));
        }
        if rest.len() < FRAME_HEADER + len {
            break Some(format!(
                "torn payload: header claims {len} bytes, {} present",
                rest.len() - FRAME_HEADER
            ));
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != crc {
            break Some("payload CRC mismatch".to_string());
        }
        match WalRecord::decode_payload(payload) {
            Some(record) => records.push(record),
            None => break Some("undecodable payload".to_string()),
        }
        at += FRAME_HEADER + len;
    };
    StreamScan {
        records,
        clean_len: at,
        torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { shard: 0, txn: 1 },
            WalRecord::Write {
                shard: 0,
                txn: 1,
                entity: 3,
                value: -42,
            },
            WalRecord::Commit { shard: 0, txn: 1 },
            WalRecord::Abort { shard: 2, txn: 9 },
            WalRecord::Checkpoint {
                shards: vec![vec![1, 2, 3], vec![], vec![i64::MIN, i64::MAX]],
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut bytes = Vec::new();
        for r in sample() {
            r.encode(&mut bytes);
        }
        let scan = decode_stream(&bytes);
        assert_eq!(scan.records, sample());
        assert_eq!(scan.clean_len, bytes.len());
        assert_eq!(scan.torn, None);
    }

    #[test]
    fn truncated_tail_yields_clean_prefix() {
        let mut bytes = Vec::new();
        for r in sample() {
            r.encode(&mut bytes);
        }
        let full = bytes.len();
        // Chop every possible number of trailing bytes; the scan must
        // never panic and the clean prefix must re-decode exactly.
        for keep in 0..full {
            let scan = decode_stream(&bytes[..keep]);
            assert!(scan.clean_len <= keep);
            let again = decode_stream(&bytes[..scan.clean_len]);
            assert_eq!(again.records, scan.records);
            assert_eq!(again.torn, None);
            if keep != scan.clean_len {
                assert!(scan.torn.is_some(), "keep={keep}");
            }
        }
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut bytes = Vec::new();
        WalRecord::Commit { shard: 1, txn: 7 }.encode(&mut bytes);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            // A flip in the length header desyncs the frame, a flip in
            // the crc or payload fails the checksum: the record must
            // never silently change, so nothing decodes.
            let scan = decode_stream(&bad);
            assert!(scan.records.is_empty(), "corrupted byte {i} still decoded");
            assert!(scan.torn.is_some(), "byte {i}");
        }
    }

    #[test]
    fn oversized_length_header_is_corruption() {
        let mut bytes = ((MAX_PAYLOAD + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 12]);
        let scan = decode_stream(&bytes);
        assert_eq!(scan.clean_len, 0);
        assert!(scan.torn.unwrap().contains("oversized"));
    }

    #[test]
    fn trailing_garbage_in_payload_fails_closed() {
        let mut payload = vec![TAG_COMMIT];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0xEE); // one extra byte
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let scan = decode_stream(&bytes);
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn.as_deref(), Some("undecodable payload"));
    }
}
