//! Property tests for the WAL frame codec, mirroring the byte-boundary
//! suite ks-net runs over its `FrameReader`: arbitrary record sequences
//! must round-trip; arbitrary truncation must yield a clean,
//! re-decodable prefix; and arbitrary single-byte corruption must never
//! let a *different* record through (fail-closed, prefix preserved).

use ks_wal::{decode_stream, WalRecord};
use proptest::prelude::*;

/// An arbitrary record driven by a handful of integers (the vendored
/// proptest shim has no enum strategies, so records are built from a
/// tag draw plus field draws).
fn build_record(tag: u8, shard: u32, txn: u64, entity: u32, value: i64) -> WalRecord {
    match tag % 5 {
        0 => WalRecord::Begin { shard, txn },
        1 => WalRecord::Write {
            shard,
            txn,
            entity,
            value,
        },
        2 => WalRecord::Commit { shard, txn },
        3 => WalRecord::Abort { shard, txn },
        _ => WalRecord::Checkpoint {
            shards: vec![
                vec![value, value.wrapping_add(entity as i64)],
                vec![txn as i64],
            ],
        },
    }
}

fn encode_all(records: &[WalRecord]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for r in records {
        r.encode(&mut bytes);
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trip_arbitrary_sequences(
        seeds in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u64>(), any::<u32>(), any::<i64>()), 0..12)
    ) {
        let records: Vec<WalRecord> = seeds
            .iter()
            .map(|&(t, s, x, e, v)| build_record(t, s, x, e, v))
            .collect();
        let bytes = encode_all(&records);
        let scan = decode_stream(&bytes);
        prop_assert_eq!(scan.records, records);
        prop_assert_eq!(scan.clean_len, bytes.len());
        prop_assert!(scan.torn.is_none());
    }

    #[test]
    fn truncation_yields_clean_redecodable_prefix(
        seeds in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u64>(), any::<u32>(), any::<i64>()), 1..8),
        cut in any::<u16>()
    ) {
        let records: Vec<WalRecord> = seeds
            .iter()
            .map(|&(t, s, x, e, v)| build_record(t, s, x, e, v))
            .collect();
        let bytes = encode_all(&records);
        let keep = (cut as usize) % (bytes.len() + 1);
        let scan = decode_stream(&bytes[..keep]);
        // The clean prefix is a prefix of the original sequence…
        prop_assert!(scan.records.len() <= records.len());
        prop_assert_eq!(&scan.records[..], &records[..scan.records.len()]);
        // …and re-decoding exactly the clean bytes reproduces it with no
        // torn tail (the recovery idempotence recovery relies on).
        let again = decode_stream(&bytes[..scan.clean_len]);
        prop_assert_eq!(again.records, scan.records);
        prop_assert!(again.torn.is_none());
        // A cut that is not at a frame boundary must be reported torn.
        prop_assert_eq!(scan.torn.is_some(), keep != scan.clean_len);
    }

    #[test]
    fn single_byte_corruption_fails_closed(
        seeds in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u64>(), any::<u32>(), any::<i64>()), 1..6),
        victim in any::<u16>(),
        flip in 1..=255u8
    ) {
        let records: Vec<WalRecord> = seeds
            .iter()
            .map(|&(t, s, x, e, v)| build_record(t, s, x, e, v))
            .collect();
        let mut bytes = encode_all(&records);
        let at = (victim as usize) % bytes.len();
        bytes[at] ^= flip;
        let scan = decode_stream(&bytes);
        // Every decoded record must be one we actually wrote, in order:
        // corruption may truncate history but never invent or alter it.
        // (A flipped length field can desync framing, so decoding could
        // stop before the corrupted byte's own frame — that's fine; what
        // is not fine is a record surviving with different contents.)
        prop_assert!(scan.records.len() <= records.len());
        prop_assert_eq!(&scan.records[..], &records[..scan.records.len()]);
    }
}
