//! # ks-dst: deterministic simulation testing for the KS stack
//!
//! A FoundationDB-style simulation harness that runs the *production*
//! stack — the `ks-net` client (framing, deadlines, retry/backoff,
//! poisoning), the server-side connection core, and a real
//! [`TxnService`](ks_server::TxnService) with its shard workers — over
//! an in-memory simulated link, injecting faults at every layer, and
//! checks the result against the paper's correctness criterion. Every
//! run is a pure function of a `u64` seed and the protection switches:
//! a failure anywhere reproduces from the seed alone.
//!
//! The moving parts:
//!
//! * [`plan`] — the seed expands into an explicit [`RunPlan`](plan::RunPlan)
//!   (ops + fault schedule) before anything executes, so shrinking never
//!   shifts the randomness of the steps it keeps.
//! * [`link`] — the simulated [`World`](link::World) and the
//!   [`SimLink`](link::SimLink) transport: drops, duplicates, trickled
//!   frames, readiness starvation, resets, forged server timeouts, and whole-server
//!   crash-restarts against WAL-backed simulated storage with torn
//!   unsynced tails, all byte-exact against the production frame reader.
//! * [`run`] — the single-threaded driver and the post-run oracles,
//!   runnable against any certification [`Backend`] via
//!   [`run_plan_with`]
//!   (per-backend history correctness, terminal end state, commit coherence,
//!   commit accounting, benign-fault liveness, obs causality, and crash
//!   durability: every acked commit survives recovery, nothing revoked
//!   is resurrected).
//! * [`shrink`] — ddmin-style minimization of failing plans.
//! * [`proto`] — bare-manager fuzzing with `force_assign` perturbations
//!   (the fault class the service API cannot reach).
//! * [`artifact`] — replayable failure dumps.
//!
//! The harness can also switch *off* each of four protections the stack
//! relies on ([`Protections`]) to prove the oracles catch the bug each
//! one prevents — a test of the tests.

#![warn(missing_docs)]

pub mod artifact;
pub mod link;
pub mod plan;
pub mod proto;
pub mod run;
pub mod shrink;

pub use ks_protocol::Backend;
pub use link::{Protections, SimLink, World, WorldEnd};
pub use plan::{generate, Fault, OpKind, RunPlan, Step};
pub use run::{run_plan, run_plan_with, RunOutcome};
pub use shrink::{shrink, ShrinkResult};
