//! Explicit, shrinkable run plans.
//!
//! A [`RunPlan`] is the *entire* input of a simulation run: every client
//! operation and every injected fault, expanded up front from one `u64`
//! seed. Nothing downstream draws randomness — the driver executes the
//! plan literally, so (a) the same seed always produces the same run and
//! (b) the shrinker can delete steps without shifting the fault schedule
//! of the steps it keeps (the classic pitfall of deciding faults on the
//! fly from a shared PRNG stream).
//!
//! Ops reference client-local transaction *slots*, not handles: a step
//! whose slot is empty (its `Open` was removed by the shrinker, failed,
//! or the slot already closed) executes as a no-op. That keeps every
//! subset of a plan well-formed by construction.

use ks_core::Specification;
use ks_kernel::EntityId;
use ks_predicate::random::SplitMix64;
use ks_predicate::{Atom, Clause, CmpOp, Cnf, Strategy};
use ks_server::BatchOp;

/// Clients driven by a plan (each with its own connection + home shard).
pub const CLIENTS: usize = 3;
/// Transaction slots per client.
pub const SLOTS: usize = 3;
/// Entity shards the simulated service runs.
pub const SHARDS: usize = 2;
/// Entities per shard (global entity `e` lives on shard `e % SHARDS`).
pub const ENTITIES_PER_SHARD: usize = 4;
/// Inclusive upper bound of every entity's domain (lower bound is 0).
pub const MAX_VALUE: i64 = 100;
/// Steps per generated plan.
pub const STEPS: usize = 64;
/// Percent of steps that carry an injected fault.
const FAULT_PCT: u64 = 22;
/// Percent of steps that end in a whole-server crash-restart.
const CRASH_PCT: u64 = 4;

/// One injected fault, attached to a single step's first request.
/// Client-internal retries of the same step are delivered cleanly — the
/// fault models one network/server incident, not a broken link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The request frame vanishes in flight: the server never sees it,
    /// the client's read deadline expires and the connection poisons.
    DropRequest,
    /// The server executes the request but its response frame vanishes:
    /// the op is applied, the client times out and poisons.
    DropResponse,
    /// The request frame is delivered twice back-to-back; the server
    /// handles both and the second response is swallowed so the stream
    /// stays frame-aligned. Exercises double-execution hardening.
    DupRequest,
    /// The request frame arrives in `chunks` pieces with the byte stream
    /// going quiet (read-would-block) between them — the frame straddles
    /// poll ticks. `salt` seeds the split points deterministically.
    Trickle {
        /// Number of pieces (≥ 2).
        chunks: u8,
        /// Seed for the split positions (mixed with the frame length, so
        /// the cuts do not move when other steps are shrunk away).
        salt: u32,
    },
    /// The server executes the request but the reply rendezvous expires —
    /// a stalled shard worker, seen from the wire: the client receives a
    /// server-signalled `Timeout` while the op *was* applied.
    ServerTimeoutApplied,
    /// The server sheds the request before execution and signals
    /// `Timeout`: the op was *not* applied.
    ServerTimeoutLost,
    /// The connection is severed before the request is delivered: nothing
    /// is applied, the server reaps the connection (running its
    /// abort-on-disconnect sweep), the client poisons and reconnects.
    Reset,
    /// Readiness starvation: the request's bytes arrive and the
    /// connection is *readable*, but the event loop does not schedule it
    /// for `ticks` logical ticks (a busy I/O thread servicing other
    /// connections), after which it is finally serviced and the request
    /// executes normally. Models the poll-loop hazard where a ready
    /// connection sits unserviced behind its neighbours — the bytes must
    /// survive the wait intact and the reply must still come.
    Starve {
        /// Ticks the readable connection goes unscheduled (≥ 1).
        ticks: u8,
    },
    /// A whole-server power cut *after* the step's op completes: the
    /// step's request (and its ack) go through cleanly, then the
    /// simulated storage loses a torn suffix of its unsynced bytes, every
    /// connection vaporizes without a goodbye or abort sweep, and a fresh
    /// service incarnation recovers from the write-ahead log. `torn_salt`
    /// seeds how much of each segment's unsynced tail survives. The
    /// durability oracle compares the recovered state against the dying
    /// incarnation's committed effects — "commit acked then instant
    /// kill" is exactly the scenario this fault manufactures.
    Crash {
        /// Seed for the per-segment torn-write prefix.
        torn_salt: u32,
    },
}

impl Fault {
    /// Faults after which the server is guaranteed to have produced a
    /// reply the client can read — the run oracle flags any such step
    /// whose op nevertheless ended in a transport timeout (that is how a
    /// frame-reassembly desync presents when no bytes were corrupted).
    pub fn is_benign(self) -> bool {
        matches!(
            self,
            Fault::DupRequest | Fault::Trickle { .. } | Fault::Starve { .. }
        )
    }
}

/// One client operation on a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Open a transaction into `slot` (no-op if the slot is occupied).
    Open {
        /// Target slot.
        slot: u8,
        /// Seed for the specification shape (see [`spec_for`]).
        spec_salt: u32,
        /// Slots whose live transactions this one orders after.
        after: Vec<u8>,
        /// Slots whose live transactions this one orders before.
        before: Vec<u8>,
        /// Per-transaction solver override.
        strategy: Option<Strategy>,
        /// Pipeline depth hint (≥ 1): how many `Batch` wire frames the
        /// client keeps in flight for this transaction's bursts.
        depth: u8,
    },
    /// Validate the slot's transaction.
    Validate {
        /// Target slot.
        slot: u8,
    },
    /// Read one of the client's home-shard entities.
    Read {
        /// Target slot.
        slot: u8,
        /// Index into the client's entity pool.
        entity_ix: u8,
    },
    /// Write one of the client's home-shard entities.
    Write {
        /// Target slot.
        slot: u8,
        /// Index into the client's entity pool.
        entity_ix: u8,
        /// The value (within the domain).
        value: i64,
    },
    /// Run a burst of reads and writes through
    /// [`Client::run_batch`](ks_server::Client::run_batch): the client
    /// chunks it into pipelined `Batch` wire frames per the slot's
    /// pipeline depth, so faults on this step land on batch frames.
    Batch {
        /// Target slot.
        slot: u8,
        /// Seed expanding into the op mix (see [`batch_ops_for`]).
        ops_salt: u32,
        /// Ops in the burst (≥ 1).
        len: u8,
    },
    /// Commit the slot's transaction.
    Commit {
        /// Target slot.
        slot: u8,
    },
    /// Abort the slot's transaction.
    Abort {
        /// Target slot.
        slot: u8,
    },
    /// Fetch service metrics (duplicate-safe, exercises the retry path).
    Metrics,
}

impl OpKind {
    /// The slot this op targets, if any.
    pub fn slot(&self) -> Option<u8> {
        match self {
            OpKind::Open { slot, .. }
            | OpKind::Validate { slot }
            | OpKind::Read { slot, .. }
            | OpKind::Write { slot, .. }
            | OpKind::Batch { slot, .. }
            | OpKind::Commit { slot }
            | OpKind::Abort { slot } => Some(*slot),
            OpKind::Metrics => None,
        }
    }
}

/// One step: which client acts, what it does, and the injected fault (if
/// any) on the step's first request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Acting client (0-based).
    pub client: u8,
    /// The operation.
    pub op: OpKind,
    /// Injected fault for this step.
    pub fault: Option<Fault>,
}

/// A complete, self-contained run input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPlan {
    /// The seed this plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The steps, executed in order by a single-threaded driver.
    pub steps: Vec<Step>,
}

impl RunPlan {
    /// Steps carrying a fault.
    pub fn fault_count(&self) -> usize {
        self.steps.iter().filter(|s| s.fault.is_some()).count()
    }

    /// Human-readable listing, one step per line (used in artifacts).
    pub fn render(&self) -> String {
        let mut out = format!(
            "plan seed={} steps={} faults={}\n",
            self.seed,
            self.steps.len(),
            self.fault_count()
        );
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!("  [{i:3}] client {} {:?}", s.client, s.op));
            if let Some(f) = s.fault {
                out.push_str(&format!("  !{f:?}"));
            }
            out.push('\n');
        }
        out
    }
}

/// The global entity pool of client `c`: all entities of its home shard
/// `c % SHARDS`, so every transaction the client opens is co-located and
/// never rejected as cross-shard.
pub fn client_entities(client: usize) -> Vec<EntityId> {
    let home = client % SHARDS;
    (0..ENTITIES_PER_SHARD)
        .map(|i| EntityId((i * SHARDS + home) as u32))
        .collect()
}

/// Build the specification a salt encodes, over `pool` (the client's
/// home-shard entities). The mix deliberately spans the interesting
/// space: tautologies (always validate), value-pinning inputs (may be
/// unsatisfiable against the current candidate versions), and occasional
/// output predicates (commit rejects unless the final write matches).
pub fn spec_for(salt: u32, pool: &[EntityId]) -> Specification {
    let mut rng = SplitMix64::new(u64::from(salt) ^ 0x5DE7_AC0D);
    let n = 1 + rng.index(3.min(pool.len()));
    // n distinct entities from the pool, order-stable.
    let mut picked: Vec<EntityId> = Vec::new();
    while picked.len() < n {
        let e = pool[rng.index(pool.len())];
        if !picked.contains(&e) {
            picked.push(e);
        }
    }
    let mut clauses: Vec<Clause> = picked
        .iter()
        .map(|&e| Clause::unit(Atom::cmp_const(e, CmpOp::Ge, 0)))
        .collect();
    if rng.below(100) < 20 {
        // Pin one entity to a concrete value: satisfiable only if some
        // candidate version carries it (often just the initial 0).
        let e = picked[rng.index(picked.len())];
        let v = if rng.coin() {
            0
        } else {
            rng.below(MAX_VALUE as u64 + 1) as i64
        };
        clauses.push(Clause::unit(Atom::cmp_const(e, CmpOp::Eq, v)));
    }
    let output = if rng.below(100) < 15 {
        let e = picked[rng.index(picked.len())];
        Cnf::new(vec![Clause::unit(Atom::cmp_const(
            e,
            CmpOp::Eq,
            rng.below(MAX_VALUE as u64 + 1) as i64,
        ))])
    } else {
        Cnf::truth()
    };
    Specification::new(Cnf::new(clauses), output)
}

/// Expand a batch step's salt into its concrete op mix over `pool`: a
/// read-heavy blend (reads never violate a write-monotone invariant, so
/// most per-op results should be values) with in-domain writes mixed in.
/// Deterministic in `(salt, len)` alone, so shrinking other steps never
/// moves a burst's contents.
pub fn batch_ops_for(salt: u32, len: u8, pool: &[EntityId]) -> Vec<BatchOp> {
    let mut rng = SplitMix64::new(u64::from(salt) ^ 0xBA7C_4005);
    (0..len.max(1))
        .map(|_| {
            let e = pool[rng.index(pool.len())];
            if rng.below(100) < 60 {
                BatchOp::Read(e)
            } else {
                BatchOp::Write(e, rng.below(MAX_VALUE as u64 + 1) as i64)
            }
        })
        .collect()
}

/// Assumed lifecycle phase of a slot while generating (optimistic — the
/// run may diverge when an op fails, which only means the plan exercises
/// a wrong-phase path instead of the intended one).
#[derive(Clone, Copy, PartialEq, Eq)]
enum GenPhase {
    Empty,
    Defined,
    Validated,
}

/// Expand `seed` into a full plan.
///
/// Generation is lifecycle-aware: it tracks each slot's *assumed* phase
/// and biases the op choice toward advancing it (open → validate →
/// write → commit), because a blind op mix almost never lines up a full
/// successful lifecycle — and the most interesting faults (a forged
/// timeout on a commit that actually landed) need successful commits to
/// bite. Wrong-phase ops are still generated deliberately at a lower
/// rate to keep the server's error paths covered.
pub fn generate(seed: u64) -> RunPlan {
    let mut rng = SplitMix64::new(seed ^ 0xD57_0001);
    let mut steps = Vec::with_capacity(STEPS);
    let mut phase = [[GenPhase::Empty; SLOTS]; CLIENTS];
    for _ in 0..STEPS {
        let client = rng.index(CLIENTS) as u8;
        let slot = rng.index(SLOTS) as u8;
        let p = &mut phase[client as usize][slot as usize];
        let roll = rng.below(100);
        // Set when the op commits a transaction believed validated — the
        // step most likely to produce a *successful* commit, and so the
        // one worth hammering with ambiguity faults.
        let mut commit_live = false;
        // Set when the op is a batch burst on a validated transaction:
        // these steps get their own fault bias so drops, trickles, and
        // resets land on (and mid-way through) pipelined batch frames.
        let mut batch_live = false;
        let op = match *p {
            GenPhase::Empty => match roll {
                0..=79 => {
                    let mut after = Vec::new();
                    let mut before = Vec::new();
                    if rng.below(100) < 30 {
                        let other = rng.index(SLOTS) as u8;
                        if other != slot {
                            if rng.coin() {
                                after.push(other);
                            } else {
                                before.push(other);
                            }
                        }
                    }
                    let strategy = match rng.below(10) {
                        0 => Some(Strategy::GreedyLatest),
                        1 => Some(Strategy::Exhaustive),
                        _ => None,
                    };
                    *p = GenPhase::Defined;
                    OpKind::Open {
                        slot,
                        spec_salt: rng.next_u64() as u32,
                        after,
                        before,
                        strategy,
                        depth: 1 + rng.index(3) as u8,
                    }
                }
                // No-op ops on an empty slot: kept so the shrinker's
                // subset plans stay representative.
                80..=89 => OpKind::Validate { slot },
                90..=94 => OpKind::Commit { slot },
                _ => OpKind::Metrics,
            },
            GenPhase::Defined => match roll {
                0..=49 => {
                    *p = GenPhase::Validated;
                    OpKind::Validate { slot }
                }
                // Wrong-phase probes: the server must reject these
                // without disturbing the transaction.
                50..=59 => OpKind::Read {
                    slot,
                    entity_ix: rng.index(ENTITIES_PER_SHARD) as u8,
                },
                60..=64 => OpKind::Write {
                    slot,
                    entity_ix: rng.index(ENTITIES_PER_SHARD) as u8,
                    value: rng.below(MAX_VALUE as u64 + 1) as i64,
                },
                // A batch on an unvalidated transaction: every per-op
                // result must come back as a typed rejection, never a
                // stream desync.
                65..=69 => OpKind::Batch {
                    slot,
                    ops_salt: rng.next_u64() as u32,
                    len: 1 + rng.index(8) as u8,
                },
                70..=79 => OpKind::Commit { slot },
                80..=89 => {
                    *p = GenPhase::Empty;
                    OpKind::Abort { slot }
                }
                _ => OpKind::Metrics,
            },
            GenPhase::Validated => match roll {
                0..=24 => OpKind::Write {
                    slot,
                    entity_ix: rng.index(ENTITIES_PER_SHARD) as u8,
                    value: rng.below(MAX_VALUE as u64 + 1) as i64,
                },
                25..=54 => {
                    *p = GenPhase::Empty;
                    commit_live = true;
                    OpKind::Commit { slot }
                }
                // The pipelined-batch surface: a burst of reads/writes
                // chunked into in-flight `Batch` frames.
                55..=69 => {
                    batch_live = true;
                    OpKind::Batch {
                        slot,
                        ops_salt: rng.next_u64() as u32,
                        len: 1 + rng.index(8) as u8,
                    }
                }
                70..=79 => OpKind::Read {
                    slot,
                    entity_ix: rng.index(ENTITIES_PER_SHARD) as u8,
                },
                80..=89 => {
                    *p = GenPhase::Empty;
                    OpKind::Abort { slot }
                }
                90..=94 => OpKind::Validate { slot },
                _ => OpKind::Metrics,
            },
        };
        let fault = if rng.below(100) < CRASH_PCT {
            // A power cut can land anywhere; the op itself executes
            // cleanly first, so a crash on a commit step is the classic
            // "acked then killed" durability probe.
            Some(Fault::Crash {
                torn_salt: rng.next_u64() as u32,
            })
        } else if commit_live && rng.below(100) < 40 {
            // The commit of a validated transaction is the one request
            // whose outcome a client must never mis-learn: bias these
            // steps toward the faults that make the outcome ambiguous
            // (forged/real timeouts, lost replies) or doubled.
            Some(match rng.below(4) {
                0 => Fault::ServerTimeoutApplied,
                1 => Fault::ServerTimeoutLost,
                2 => Fault::DropResponse,
                _ => Fault::DupRequest,
            })
        } else if batch_live && rng.below(100) < 35 {
            // Batch frames must survive the exact incidents unit frames
            // do: the directive arms on the burst's *first* frame, so a
            // Reset leaves the rest of the burst writing into a dead
            // connection and a Trickle straddles a frame mid-burst.
            Some(match rng.below(7) {
                0 => Fault::DropRequest,
                1 => Fault::DropResponse,
                2 => Fault::Trickle {
                    chunks: 2 + rng.index(3) as u8,
                    salt: rng.next_u64() as u32,
                },
                3 => Fault::Reset,
                4 => Fault::ServerTimeoutApplied,
                5 => Fault::Starve {
                    ticks: 1 + rng.index(8) as u8,
                },
                _ => Fault::ServerTimeoutLost,
            })
        } else if rng.below(100) < FAULT_PCT {
            Some(match rng.below(8) {
                0 => Fault::DropRequest,
                1 => Fault::DropResponse,
                2 => Fault::DupRequest,
                3 => Fault::Trickle {
                    chunks: 2 + rng.index(3) as u8,
                    salt: rng.next_u64() as u32,
                },
                4 => Fault::ServerTimeoutApplied,
                5 => Fault::ServerTimeoutLost,
                6 => Fault::Starve {
                    ticks: 1 + rng.index(8) as u8,
                },
                _ => Fault::Reset,
            })
        } else {
            None
        };
        // Keep the assumed phases in sync with what the driver will do:
        // a poisoning/reset fault forces a reconnect that wipes every
        // slot of the client, and a server-signalled timeout makes the
        // driver clear (and for unit ops abort) the slot.
        match fault {
            Some(Fault::DropRequest | Fault::DropResponse | Fault::Reset) => {
                phase[client as usize] = [GenPhase::Empty; SLOTS];
            }
            Some(Fault::Crash { .. }) => {
                // The restart severs every connection: all clients lose
                // every slot, not just the acting one.
                phase = [[GenPhase::Empty; SLOTS]; CLIENTS];
            }
            Some(Fault::ServerTimeoutApplied | Fault::ServerTimeoutLost) => {
                if let Some(s) = op.slot() {
                    phase[client as usize][s as usize] = GenPhase::Empty;
                }
            }
            _ => {}
        }
        steps.push(Step { client, op, fault });
    }
    RunPlan { seed, steps }
}

/// Deterministic split positions for a trickled frame of `len` bytes:
/// `chunks − 1` cut points strictly inside the frame, derived from the
/// fault's salt so they never move when unrelated steps are shrunk away.
pub fn trickle_cuts(salt: u32, chunks: u8, len: usize) -> Vec<usize> {
    let mut rng = SplitMix64::new(
        u64::from(salt)
            .wrapping_mul(0x9E37)
            .wrapping_add(len as u64),
    );
    let mut cuts: Vec<usize> = Vec::new();
    if len < 2 {
        return cuts;
    }
    for _ in 1..chunks.max(2) {
        let c = 1 + rng.index(len - 1);
        if !cuts.contains(&c) {
            cuts.push(c);
        }
    }
    cuts.sort_unstable();
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn specs_are_colocated_per_client() {
        for c in 0..CLIENTS {
            let pool = client_entities(c);
            let home = (c % SHARDS) as u32;
            assert!(pool.iter().all(|e| e.0 % SHARDS as u32 == home));
        }
    }

    #[test]
    fn plans_cover_faulted_batch_steps() {
        let mut batches = 0usize;
        let mut faulted = 0usize;
        for seed in 0..20u64 {
            for step in generate(seed).steps {
                if matches!(step.op, OpKind::Batch { .. }) {
                    batches += 1;
                    faulted += usize::from(step.fault.is_some());
                }
            }
        }
        assert!(batches > 0, "generator never emits batch steps");
        assert!(faulted > 0, "no fault ever lands on a batch step");
    }

    #[test]
    fn plans_cover_crash_steps() {
        let mut crashes = 0usize;
        for seed in 0..20u64 {
            crashes += generate(seed)
                .steps
                .iter()
                .filter(|s| matches!(s.fault, Some(Fault::Crash { .. })))
                .count();
        }
        assert!(crashes > 0, "generator never emits crash-restart steps");
    }

    #[test]
    fn plans_cover_starve_steps() {
        let mut starves = 0usize;
        for seed in 0..20u64 {
            for step in generate(seed).steps {
                if let Some(Fault::Starve { ticks }) = step.fault {
                    assert!(ticks >= 1, "a starve must last at least one tick");
                    starves += 1;
                }
            }
        }
        assert!(
            starves > 0,
            "generator never emits readiness-starvation steps"
        );
    }

    #[test]
    fn batch_ops_are_deterministic_and_in_domain() {
        let pool = client_entities(1);
        let ops = batch_ops_for(33, 8, &pool);
        assert_eq!(ops, batch_ops_for(33, 8, &pool));
        assert_eq!(ops.len(), 8);
        for op in &ops {
            match op {
                BatchOp::Read(e) => assert!(pool.contains(e)),
                BatchOp::Write(e, v) => {
                    assert!(pool.contains(e));
                    assert!((0..=MAX_VALUE).contains(v));
                }
            }
        }
    }

    #[test]
    fn trickle_cuts_are_interior_and_sorted() {
        for salt in 0..50u32 {
            let cuts = trickle_cuts(salt, 4, 37);
            assert!(cuts.windows(2).all(|w| w[0] < w[1]));
            assert!(cuts.iter().all(|&c| c >= 1 && c < 37));
            assert_eq!(cuts, trickle_cuts(salt, 4, 37));
        }
    }
}
