//! Protocol-layer fuzzing: drive a bare [`ProtocolManager`] directly,
//! with and without `force_assign` perturbations.
//!
//! The network harness cannot reach inside a running `TxnService` to
//! perturb a shard manager mid-flight, so the `force_assign` fault class
//! lives here: a seeded scenario plants a version assignment the
//! protocol would never choose and asserts the predicate-correctness
//! oracle both catches it and names the victim. The clean twin drives
//! random seeded traffic with no forcing and asserts the oracle stays
//! silent — the two directions that make an oracle trustworthy.

use crate::plan::MAX_VALUE;
use ks_core::Specification;
use ks_kernel::{Domain, EntityId, Schema, UniqueState};
use ks_obs::Recorder;
use ks_predicate::random::SplitMix64;
use ks_predicate::{Atom, Clause, CmpOp, Cnf, Strategy};
use ks_protocol::{CommitOutcome, ProtocolManager, Txn, ValidationOutcome};
use ks_server::{verify_certifiers_with_dump, VerifyReport, ViolationDump};

/// Entities the bare-manager scenarios run over.
const PROTO_ENTITIES: usize = 4;

fn setup(rng: &mut SplitMix64) -> (Schema, UniqueState, Vec<i64>) {
    let schema = Schema::uniform(
        (0..PROTO_ENTITIES).map(|i| format!("p{i}")),
        Domain::Range {
            min: 0,
            max: MAX_VALUE,
        },
    );
    let initial: Vec<i64> = (0..PROTO_ENTITIES)
        .map(|_| rng.below(MAX_VALUE as u64 + 1) as i64)
        .collect();
    let state = UniqueState::new(&schema, initial.clone()).expect("initial values in domain");
    (schema, state, initial)
}

fn unit_spec(e: EntityId, op: CmpOp, v: i64) -> Specification {
    Specification::new(
        Cnf::new(vec![Clause::unit(Atom::cmp_const(e, op, v))]),
        Cnf::truth(),
    )
}

/// Run the seeded forced-misassignment scenario: a writer commits a new
/// version of one entity, a victim validates against the *initial*
/// version, and `force_assign` rebinds the victim to the writer's
/// version — which falsifies the victim's input predicate. Returns the
/// verification report and dump; the report must name the victim.
pub fn run_proto_forced(seed: u64) -> (VerifyReport, Option<ViolationDump>, u32) {
    let mut rng = SplitMix64::new(seed ^ 0xF0CE_A551);
    let (schema, state, initial) = setup(&mut rng);
    let mut pm = ProtocolManager::new(schema, &state, Specification::trivial());
    let recorder = Recorder::new(1 << 12);
    pm.attach_obs(recorder.sink(0));

    let target = EntityId(rng.index(PROTO_ENTITIES) as u32);
    let old = initial[target.0 as usize];
    // A value the writer commits that provably breaks `target = old`.
    let new = (old + 1 + rng.below(MAX_VALUE as u64) as i64) % (MAX_VALUE + 1);
    debug_assert_ne!(new, old);

    // Background noise: a tautological committer on some entity.
    let noise = pm
        .define(
            pm.root(),
            unit_spec(EntityId(rng.index(PROTO_ENTITIES) as u32), CmpOp::Ge, 0),
            &[],
            &[],
        )
        .expect("define noise");
    assert_eq!(
        pm.validate(noise, Strategy::Backtracking)
            .expect("validate"),
        ValidationOutcome::Validated
    );
    assert_eq!(pm.commit(noise).expect("commit"), CommitOutcome::Committed);

    // Writer: creates version 1 of `target` with the conflicting value.
    let writer = pm
        .define(pm.root(), unit_spec(target, CmpOp::Ge, 0), &[], &[])
        .expect("define writer");
    assert_eq!(
        pm.validate(writer, Strategy::Backtracking)
            .expect("validate"),
        ValidationOutcome::Validated
    );
    pm.write(writer, target, new).expect("write");
    assert_eq!(pm.commit(writer).expect("commit"), CommitOutcome::Committed);

    // Victim: input pins `target = old`; validation correctly assigns the
    // initial version.
    let victim = pm
        .define(pm.root(), unit_spec(target, CmpOp::Eq, old), &[], &[])
        .expect("define victim");
    assert_eq!(
        pm.validate(victim, Strategy::Backtracking)
            .expect("validate"),
        ValidationOutcome::Validated
    );

    // The perturbation the protocol would never make.
    pm.force_assign(victim, target, 1).expect("force_assign");
    assert_eq!(pm.commit(victim).expect("commit"), CommitOutcome::Committed);

    let certs: Vec<Box<dyn ks_protocol::Certifier>> = vec![Box::new(pm)];
    let (report, dump) = verify_certifiers_with_dump(&certs, &recorder);
    (report, dump, victim.0 as u32)
}

/// Drive random seeded traffic on a bare manager with *no* perturbation
/// and return the verification report, which must be correct — the
/// oracle's false-positive check.
pub fn run_proto_clean(seed: u64) -> VerifyReport {
    let mut rng = SplitMix64::new(seed ^ 0xC1EA_0001);
    let (schema, state, initial) = setup(&mut rng);
    let mut pm = ProtocolManager::new(schema, &state, Specification::trivial());
    let recorder = Recorder::new(1 << 12);
    pm.attach_obs(recorder.sink(0));

    let mut open: Vec<Txn> = Vec::new();
    for _ in 0..40 {
        match rng.below(100) {
            0..=34 => {
                let e = EntityId(rng.index(PROTO_ENTITIES) as u32);
                let spec = if rng.below(100) < 25 {
                    // Sometimes pin to the initial value (may be stale by
                    // now — validation is allowed to fail).
                    unit_spec(e, CmpOp::Eq, initial[e.0 as usize])
                } else {
                    unit_spec(e, CmpOp::Ge, 0)
                };
                if let Ok(t) = pm.define(pm.root(), spec, &[], &[]) {
                    if matches!(
                        pm.validate(t, Strategy::Backtracking),
                        Ok(ValidationOutcome::Validated)
                    ) {
                        open.push(t);
                    } else {
                        let _ = pm.abort(t);
                    }
                }
            }
            35..=64 => {
                if !open.is_empty() {
                    let t = open[rng.index(open.len())];
                    let e = EntityId(rng.index(PROTO_ENTITIES) as u32);
                    let _ = pm.write(t, e, rng.below(MAX_VALUE as u64 + 1) as i64);
                }
            }
            65..=84 => {
                if !open.is_empty() {
                    let t = open.remove(rng.index(open.len()));
                    if !matches!(pm.commit(t), Ok(CommitOutcome::Committed)) {
                        let _ = pm.abort(t);
                    }
                }
            }
            _ => {
                if !open.is_empty() {
                    let t = open.remove(rng.index(open.len()));
                    let _ = pm.abort(t);
                }
            }
        }
    }
    for t in open {
        let _ = pm.abort(t);
    }

    let certs: Vec<Box<dyn ks_protocol::Certifier>> = vec![Box::new(pm)];
    let (report, _dump) = verify_certifiers_with_dump(&certs, &recorder);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_misassignment_is_caught_and_named() {
        for seed in 0..10u64 {
            let (report, dump, victim) = run_proto_forced(seed);
            assert!(
                !report.is_correct(),
                "seed {seed}: forced misassignment escaped the oracle"
            );
            assert!(
                report.offenders.iter().any(|&(_, t)| t == victim),
                "seed {seed}: offenders {:?} do not name victim {victim}",
                report.offenders
            );
            let dump = dump.expect("violations must dump");
            assert!(
                dump.summary.contains("\"forced\":true"),
                "seed {seed}: summary must surface the forced decision"
            );
        }
    }

    #[test]
    fn clean_fuzz_never_trips_the_oracle() {
        for seed in 0..10u64 {
            let report = run_proto_clean(seed);
            assert!(report.is_correct(), "seed {seed}: {:?}", report.violations);
        }
    }
}
