//! Replayable failure artifacts.
//!
//! When a run fails its oracles, the harness writes one self-contained
//! text file: the seed and protections (everything needed to replay),
//! the violations, the minimized plan, the world's fault journal, and
//! the canonical observability trace. `dst_smoke --replay <seed>`
//! regenerates the identical artifact from the seed alone.

use crate::link::Protections;
use crate::plan::RunPlan;
use crate::run::RunOutcome;
use std::io;
use std::path::{Path, PathBuf};

/// Render the artifact text for a (usually minimized) failing run.
pub fn render(plan: &RunPlan, outcome: &RunOutcome, protections: Protections) -> String {
    let mut out = String::new();
    out.push_str("# ks-dst failure artifact\n");
    out.push_str(&format!("seed: {}\n", plan.seed));
    out.push_str(&format!(
        "protections: frame_retention={} timeout_carveout={} abort_on_disconnect={} \
         commit_flush={}\n",
        protections.frame_retention,
        protections.timeout_carveout,
        protections.abort_on_disconnect,
        protections.commit_flush
    ));
    out.push_str(&format!(
        "commits: definite={} ambiguous={} server={}\n",
        outcome.definite_commits, outcome.ambiguous_commits, outcome.report.committed
    ));
    out.push_str("\n## violations\n");
    for v in &outcome.violations {
        out.push_str(&format!("- {v}\n"));
    }
    out.push_str("\n## plan (minimized)\n");
    out.push_str(&plan.render());
    out.push_str("\n## world journal\n");
    out.push_str(&outcome.journal);
    out.push_str("\n\n## canonical obs trace\n");
    out.push_str(&outcome.canonical_trace);
    out
}

/// Write the artifact under `dir` as `dst-<tag>-seed<seed>.txt`,
/// creating the directory if needed. Returns the written path.
pub fn write(
    dir: &Path,
    tag: &str,
    plan: &RunPlan,
    outcome: &RunOutcome,
    protections: Protections,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("dst-{tag}-seed{}.txt", plan.seed));
    std::fs::write(&path, render(plan, outcome, protections))?;
    Ok(path)
}
