//! The simulated network and the single-threaded world it lives in.
//!
//! [`World`] embeds a real [`TxnService`] (real shard workers, real
//! protocol managers) and serves it through the *production* server-side
//! connection machinery: every delivered byte goes through
//! [`wire::FrameReader`] and every decoded request through
//! [`ConnCore::handle`] — the exact code the TCP server runs. Clients are
//! real [`RemoteSession`](ks_net::RemoteSession)s whose [`Transport`] is
//! a [`SimLink`]: writing a frame hands it to the world, which applies
//! the current fault directive (drop, duplicate, trickle, readiness
//! starvation, reset, forged server timeout) and pumps the server
//! synchronously; reading serves the
//! in-memory inbox or fails with `WouldBlock`, which the client maps to a
//! deadline expiry exactly as it would on a socket.
//!
//! Determinism: the driver is single-threaded and every client call is
//! synchronous, so at most one request is ever in flight inside the
//! service — the shard worker threads are real, but they process a
//! deterministic request sequence. Combined with the plan being fully
//! expanded from the seed (see [`crate::plan`]) and the server-side state
//! being ordered containers throughout, a run is a pure function of
//! `(seed, protections)`.

use crate::plan::{trickle_cuts, Fault, ENTITIES_PER_SHARD, MAX_VALUE, SHARDS};
use ks_kernel::{Domain, Schema, UniqueState};
use ks_net::wire::{self, FrameProgress, FrameReader, Response};
use ks_net::{ConnAction, ConnCore, Transport, TransportRx};
use ks_obs::{ObsKind, ObsSink, Recorder, NO_TXN};
use ks_protocol::{Backend, Certifier, TxnState};
use ks_server::{Durability, ServerConfig, ServerError, TxnService, WalOptions};
use ks_wal::{MemStore, SegmentStore};
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// The four known-fixed protections the harness can switch off to prove
/// its oracles catch the bugs they guard against (the "teeth" of the
/// acceptance criteria). All on = the production configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protections {
    /// `FrameReader` retains partial-frame progress across read timeouts
    /// (off = recreate the reader on every `Pending`, resurrecting the
    /// PR 3 stream-desync bug).
    pub frame_retention: bool,
    /// Server-signalled `Timeout` is not retried for non-idempotent
    /// requests (off = set the client's `unsafe_retry_non_idempotent`
    /// hook, resurrecting the at-least-once double-apply bug).
    pub timeout_carveout: bool,
    /// A dying connection aborts its open transactions (off = skip the
    /// [`ConnCore::abort_open_txns`] sweep, leaking validated
    /// transactions and the locks they hold).
    pub abort_on_disconnect: bool,
    /// A commit's WAL record is fsynced before the commit is
    /// acknowledged (off = the server still logs everything but never
    /// flushes at commit time, so a [`Fault::Crash`] tears acked commits
    /// out of the log and the durability oracle catches the lie).
    pub commit_flush: bool,
}

impl Default for Protections {
    fn default() -> Self {
        Protections {
            frame_retention: true,
            timeout_carveout: true,
            abort_on_disconnect: true,
            commit_flush: true,
        }
    }
}

impl Protections {
    /// The production configuration.
    pub fn all_on() -> Protections {
        Protections::default()
    }

    /// Switch one protection off by its CLI name (`frame-retention`,
    /// `timeout-carveout`, `abort-on-disconnect`, `commit-flush`).
    pub fn disable(name: &str) -> Option<Protections> {
        let mut p = Protections::all_on();
        match name {
            "frame-retention" => p.frame_retention = false,
            "timeout-carveout" => p.timeout_carveout = false,
            "abort-on-disconnect" => p.abort_on_disconnect = false,
            "commit-flush" => p.commit_flush = false,
            _ => return None,
        }
        Some(p)
    }

    /// The CLI names [`Protections::disable`] accepts.
    pub const NAMES: [&'static str; 4] = [
        "frame-retention",
        "timeout-carveout",
        "abort-on-disconnect",
        "commit-flush",
    ];
}

/// Server-side receive buffer: bytes the world has delivered but the
/// frame reader has not yet consumed, plus a budget bounding how much a
/// single pump may read before the stream "goes quiet" (`WouldBlock`) —
/// that is what makes a trickled frame straddle poll ticks.
struct RxBuf {
    buf: VecDeque<u8>,
    budget: usize,
}

/// The `Read` half the server's [`FrameReader`] sees.
struct RxHandle(Rc<RefCell<RxBuf>>);

impl Read for RxHandle {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut rx = self.0.borrow_mut();
        let n = out.len().min(rx.buf.len()).min(rx.budget);
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "stream quiet"));
        }
        for slot in out.iter_mut().take(n) {
            *slot = rx.buf.pop_front().unwrap();
        }
        rx.budget -= n;
        Ok(n)
    }
}

/// One simulated connection's server side.
struct ServerConn {
    rx: Rc<RefCell<RxBuf>>,
    reader: FrameReader<RxHandle>,
    core: Option<ConnCore>,
    hello_done: bool,
    open: bool,
}

/// One simulated connection's client side.
struct ClientEnd {
    inbox: VecDeque<u8>,
    reset: bool,
}

/// Everything a simulation run shares: the embedded service, every
/// connection's two ends, the pending fault directive, the logical
/// clock, and the journals the oracles read afterwards.
pub struct World {
    service: Option<TxnService>,
    recorder: Recorder,
    obs: ObsSink,
    conns: Vec<ServerConn>,
    clients: Vec<ClientEnd>,
    fault: Option<Fault>,
    protections: Protections,
    clock: u64,
    journal: Vec<String>,
    /// The simulated durable media every service incarnation logs to.
    sim_store: MemStore,
    /// Schema/initial kept so a crash can boot a fresh incarnation.
    schema: Schema,
    initial: UniqueState,
    /// Which certification backend every incarnation runs.
    backend: Backend,
    /// Shard certifiers of every crashed incarnation, in crash order, so
    /// the oracles can account for commits across the whole run.
    epochs: Vec<Vec<Box<dyn Certifier>>>,
    /// Durability-oracle findings (acked commits lost by a crash,
    /// aborted commits resurrected, recovered state diverging).
    durability_violations: Vec<String>,
    /// Crash-restarts executed.
    crashes: usize,
    /// Frame/decode errors the server side hit. The simulator never
    /// corrupts bytes, so with a correct stack this stays empty — any
    /// entry is a reassembly desync (the frame-retention oracle).
    stream_errors: Vec<String>,
    /// Every `(conn, wire txn id)` whose `Commit` the server answered
    /// with `Done` — server ground truth for the outcome-coherence
    /// oracle (a client may never be told such a commit failed).
    acked_commits: BTreeSet<(usize, u64)>,
}

/// Ring capacity for DST recorders: far above what a plan can emit, so
/// `dropped() == 0` holds and the causality oracle never runs blind.
const DST_RING_CAPACITY: usize = 1 << 13;

/// What [`World::finish`] hands the oracles.
pub struct WorldEnd {
    /// The final incarnation's shard certifiers, drained for
    /// verification.
    pub certifiers: Vec<Box<dyn Certifier>>,
    /// Shard certifiers of every crashed incarnation, in crash order.
    pub epochs: Vec<Vec<Box<dyn Certifier>>>,
    /// The shared flight recorder (service + world + clients).
    pub recorder: Recorder,
    /// The world's human-readable fault/delivery journal.
    pub journal: String,
    /// Server-side stream desync records (must be empty when correct).
    pub stream_errors: Vec<String>,
    /// `(conn, wire txn id)` pairs whose commit the server acked.
    pub acked_commits: BTreeSet<(usize, u64)>,
    /// Durability-oracle findings across every crash and the final
    /// graceful shutdown (must be empty when commit flushing is on).
    pub durability_violations: Vec<String>,
    /// Crash-restarts the run executed.
    pub crashes: usize,
}

impl World {
    /// Build the world: a real `TxnService` over [`SHARDS`] shards of
    /// [`ENTITIES_PER_SHARD`] entities each, domain `[0, MAX_VALUE]`,
    /// initial state all zeros, with a generous request timeout so real
    /// machine stalls can never masquerade as injected ones.
    ///
    /// Every incarnation runs with [`Durability::Wal`] over one shared
    /// simulated [`MemStore`], naive (non-group) fsync so sync counts
    /// are a pure function of the plan, and commit-time flushing
    /// following the `commit_flush` protection. Runs the paper's CPC
    /// backend; [`World::new_with_backend`] picks another certifier.
    pub fn new(protections: Protections) -> World {
        World::new_with_backend(protections, Backend::Cpc)
    }

    /// [`World::new`], but every incarnation runs the given
    /// certification backend — same shards, WAL, faults, and oracles.
    pub fn new_with_backend(protections: Protections, backend: Backend) -> World {
        let n = SHARDS * ENTITIES_PER_SHARD;
        let schema = Schema::uniform(
            (0..n).map(|i| format!("e{i}")),
            Domain::Range {
                min: 0,
                max: MAX_VALUE,
            },
        );
        let initial = UniqueState::constant(n, 0);
        let recorder = Recorder::new(DST_RING_CAPACITY);
        let sim_store = MemStore::new();
        let obs = recorder.sink(u32::MAX);
        let mut world = World {
            service: None,
            recorder,
            obs,
            conns: Vec::new(),
            clients: Vec::new(),
            fault: None,
            protections,
            clock: 0,
            journal: Vec::new(),
            sim_store,
            schema,
            initial,
            backend,
            epochs: Vec::new(),
            durability_violations: Vec::new(),
            crashes: 0,
            stream_errors: Vec::new(),
            acked_commits: BTreeSet::new(),
        };
        world.service = Some(TxnService::new(
            world.schema.clone(),
            &world.initial,
            world.service_config(),
        ));
        world
    }

    /// The config every incarnation boots with: same recorder, same
    /// simulated media, commit flushing per the protections.
    fn service_config(&self) -> ServerConfig {
        let media = self.sim_store.clone();
        let mut wal = WalOptions::new(Arc::new(move || {
            Box::new(media.clone()) as Box<dyn SegmentStore>
        }));
        // Group commit batches wall-clock-concurrent fsyncs; the DST
        // driver is synchronous, so it would only add a flusher thread's
        // timing to an otherwise deterministic run. Naive mode syncs
        // inline on the worker thread instead.
        wal.group_commit = false;
        wal.sync_on_commit = self.protections.commit_flush;
        wal.segment_bytes = 1 << 16;
        ServerConfig::builder()
            .shards(SHARDS)
            .backend(self.backend)
            .request_timeout(Duration::from_secs(60))
            .recorder(self.recorder.clone())
            .durability(Durability::Wal(wal))
            .build()
            .expect("static DST config is valid")
    }

    /// The protections this world runs under.
    pub fn protections(&self) -> Protections {
        self.protections
    }

    /// The shared recorder (for trace assembly after the run).
    pub fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// Arm the fault directive for the next client flush.
    pub fn set_fault(&mut self, fault: Option<Fault>) {
        self.fault = fault;
    }

    /// Disarm an unconsumed directive (the step's op was a no-op), so it
    /// cannot leak onto the next step's request.
    pub fn clear_fault(&mut self) {
        self.fault = None;
    }

    fn note(&mut self, line: String) {
        self.journal.push(format!("t{:04} {line}", self.clock));
    }

    /// Open a new simulated connection; returns its id.
    pub fn connect(&mut self) -> usize {
        let id = self.conns.len();
        let rx = Rc::new(RefCell::new(RxBuf {
            buf: VecDeque::new(),
            budget: 0,
        }));
        self.conns.push(ServerConn {
            reader: FrameReader::new(RxHandle(Rc::clone(&rx))),
            rx,
            core: None,
            hello_done: false,
            open: true,
        });
        self.clients.push(ClientEnd {
            inbox: VecDeque::new(),
            reset: false,
        });
        self.clock += 1;
        self.obs
            .emit_at(self.clock, NO_TXN, ObsKind::ConnOpened { conn: id as u32 });
        self.note(format!("conn {id} opened"));
        id
    }

    /// Reap a connection server-side: run the abort-on-disconnect sweep
    /// (when that protection is on) and drop its session.
    pub fn reap(&mut self, conn: usize, why: &str) {
        if !self.conns[conn].open {
            return;
        }
        self.conns[conn].open = false;
        let mut core = self.conns[conn].core.take();
        let swept = if let Some(core) = core.as_mut() {
            let open = core.open_txns();
            if self.protections.abort_on_disconnect {
                core.abort_open_txns();
            }
            open
        } else {
            0
        };
        drop(core);
        self.clock += 1;
        self.obs.emit_at(
            self.clock,
            NO_TXN,
            ObsKind::ConnClosed { conn: conn as u32 },
        );
        let sweep = if self.protections.abort_on_disconnect {
            "swept"
        } else {
            "LEAKED (abort-on-disconnect off)"
        };
        self.note(format!(
            "conn {conn} closed ({why}); {sweep} {swept} open txns"
        ));
    }

    /// Ids of connections the server still considers open.
    pub fn open_conns(&self) -> Vec<usize> {
        (0..self.conns.len())
            .filter(|&i| self.conns[i].open)
            .collect()
    }

    /// Reap every still-open connection (end of run).
    pub fn reap_all(&mut self) {
        for id in self.open_conns() {
            self.reap(id, "end of run");
        }
    }

    /// A whole-server power cut followed by a restart.
    ///
    /// Order matters: the media crashes *first* (losing a torn,
    /// salt-derived suffix of every segment's unsynced bytes), so the
    /// dying workers' graceful shutdown syncs are no-ops and can never
    /// make the cut look cleaner than it was. Connections vaporize with
    /// no goodbye and *no abort sweep* — a power cut runs nothing. The
    /// dying incarnation's managers are snapshotted for their committed
    /// effects, a fresh incarnation recovers from the log, and any
    /// divergence (acked commit lost, revoked commit resurrected,
    /// recovered state off) is recorded for the durability oracle.
    pub fn crash_restart(&mut self, torn_salt: u32) {
        self.crashes += 1;
        self.clock += 1;
        self.note(format!("CRASH: power cut (torn_salt={torn_salt:#010x})"));
        self.sim_store.crash(u64::from(torn_salt));
        for id in 0..self.conns.len() {
            if !self.conns[id].open {
                continue;
            }
            self.conns[id].open = false;
            // Dropped without the abort_open_txns sweep: nothing runs
            // during a power cut.
            self.conns[id].core = None;
            self.clients[id].inbox.clear();
            self.clients[id].reset = true;
            self.clock += 1;
            self.obs
                .emit_at(self.clock, NO_TXN, ObsKind::ConnClosed { conn: id as u32 });
            self.note(format!("conn {id} vaporized by crash"));
        }
        let dying = self
            .service
            .take()
            .expect("crash_restart needs a live service")
            .shutdown();
        let (want_states, want_committed) = committed_snapshot(&dying);
        self.epochs.push(dying);
        self.sim_store.revive();

        let service = TxnService::new(self.schema.clone(), &self.initial, self.service_config());
        let report = service
            .recovery_report()
            .expect("DST services always run with a WAL")
            .clone();
        let got_committed: BTreeSet<(u32, u64)> = report.committed.iter().copied().collect();
        let crash = self.crashes;
        for &(shard, txn) in want_committed.difference(&got_committed) {
            self.durability_violations.push(format!(
                "durability: crash {crash}: acked commit (shard {shard}, txn {txn}) \
                 missing after recovery"
            ));
        }
        for &(shard, txn) in got_committed.difference(&want_committed) {
            self.durability_violations.push(format!(
                "durability: crash {crash}: recovery resurrected (shard {shard}, \
                 txn {txn}) which the dying server did not hold committed"
            ));
        }
        if report.states.as_ref() != Some(&want_states) {
            self.durability_violations.push(format!(
                "durability: crash {crash}: recovered state {:?} != dying committed \
                 effects {want_states:?}",
                report.states
            ));
        }
        self.note(format!(
            "restart: recovered {} committed txns from {} log records{}",
            got_committed.len(),
            report.records,
            report
                .torn
                .as_deref()
                .map(|t| format!(" (torn tail: {t})"))
                .unwrap_or_default()
        ));
        self.service = Some(service);
    }

    /// A client flushed `bytes` (one request frame): apply the armed
    /// fault directive and pump the server side.
    pub fn client_flush(&mut self, conn: usize, bytes: Vec<u8>) {
        self.clock += 1;
        if !self.conns[conn].open {
            // Writing into a severed connection: bytes vanish; the client
            // discovers the failure at its next read.
            self.note(format!("conn {conn}: {} bytes into dead conn", bytes.len()));
            return;
        }
        match self.fault.take() {
            None => self.deliver(conn, &bytes, &[], true),
            Some(Fault::DropRequest) => {
                self.note(format!("conn {conn}: DROPPED request ({}B)", bytes.len()));
            }
            Some(Fault::DropResponse) => {
                self.note(format!("conn {conn}: request delivered, response DROPPED"));
                self.deliver(conn, &bytes, &[], false);
            }
            Some(Fault::DupRequest) => {
                self.note(format!("conn {conn}: request DUPLICATED"));
                self.deliver(conn, &bytes, &[], true);
                if self.conns[conn].open {
                    self.deliver(conn, &bytes, &[], false);
                }
            }
            Some(Fault::Trickle { chunks, salt }) => {
                let cuts = trickle_cuts(salt, chunks, bytes.len());
                self.note(format!(
                    "conn {conn}: request TRICKLED ({}B at cuts {cuts:?})",
                    bytes.len()
                ));
                self.deliver(conn, &bytes, &cuts, true);
            }
            Some(Fault::Starve { ticks }) => {
                // Readiness starvation: the whole frame arrives (the
                // connection is readable) but the event loop does not
                // schedule it — the bytes sit in the receive buffer with
                // no pump while the clock runs, exactly a busy I/O
                // thread servicing other connections. When the loop
                // finally gets to it, the frame must decode intact and
                // the request execute normally.
                self.note(format!(
                    "conn {conn}: request STARVED ({}B readable, unscheduled \
                     for {ticks} ticks)",
                    bytes.len()
                ));
                {
                    let mut rx = self.conns[conn].rx.borrow_mut();
                    rx.buf.extend(&bytes);
                    rx.budget += bytes.len();
                }
                self.clock += u64::from(ticks);
                self.note(format!("conn {conn}: starved bytes finally scheduled"));
                self.pump(conn, true);
            }
            Some(Fault::ServerTimeoutApplied) => {
                self.note(format!(
                    "conn {conn}: request applied, reply replaced by server Timeout"
                ));
                // The forged reply must still correlate with the request
                // it displaces, or the client would rightly discard it.
                let corr = forged_corr(&bytes);
                self.deliver(conn, &bytes, &[], false);
                // Forged frames echo trace 0: the fault injector peeks
                // only the correlation id, and the client ignores the
                // echoed trace anyway.
                self.push_response(conn, corr, 0, &Response::error(&ServerError::Timeout));
            }
            Some(Fault::ServerTimeoutLost) => {
                self.note(format!(
                    "conn {conn}: request shed, server Timeout signalled"
                ));
                let corr = forged_corr(&bytes);
                self.push_response(conn, corr, 0, &Response::error(&ServerError::Timeout));
            }
            Some(Fault::Reset) => {
                self.note(format!("conn {conn}: RESET before delivery"));
                self.reap(conn, "reset");
                self.clients[conn].inbox.clear();
                self.clients[conn].reset = true;
            }
            Some(Fault::Crash { .. }) => {
                // Crashes are step-level events the driver runs *after*
                // the op (see `crash_restart`); one can never be armed as
                // a wire directive. Deliver cleanly if it ever is.
                self.deliver(conn, &bytes, &[], true);
            }
        }
    }

    /// Deliver `bytes` to the server side in chunks split at `cuts`,
    /// pumping the frame reader after each chunk. `keep` controls whether
    /// responses reach the client inbox.
    fn deliver(&mut self, conn: usize, bytes: &[u8], cuts: &[usize], keep: bool) {
        let mut start = 0;
        let bounds: Vec<(usize, usize)> = cuts
            .iter()
            .chain(std::iter::once(&bytes.len()))
            .map(|&end| {
                let seg = (start, end);
                start = end;
                seg
            })
            .collect();
        for (i, (a, b)) in bounds.into_iter().enumerate() {
            if !self.conns[conn].open {
                return;
            }
            {
                let mut rx = self.conns[conn].rx.borrow_mut();
                rx.buf.extend(&bytes[a..b]);
                rx.budget += b - a;
            }
            if i > 0 {
                self.clock += 1;
            }
            self.pump(conn, keep);
        }
    }

    /// Poll the connection's frame reader until the stream goes quiet,
    /// handling every complete frame. This is the simulated counterpart
    /// of the TCP server's reader loop.
    fn pump(&mut self, conn: usize, keep: bool) {
        loop {
            if !self.conns[conn].open {
                return;
            }
            match self.conns[conn].reader.poll_frame() {
                Ok(FrameProgress::Frame(payload)) => self.on_frame(conn, payload, keep),
                Ok(FrameProgress::Pending) | Ok(FrameProgress::Eof) => {
                    if !self.protections.frame_retention {
                        // Resurrected bug: throw the incremental reader
                        // away on every quiet tick, losing any partial
                        // length-prefix/payload progress it held.
                        let rx = Rc::clone(&self.conns[conn].rx);
                        self.conns[conn].reader = FrameReader::new(RxHandle(rx));
                    }
                    return;
                }
                Err(e) => {
                    let desc = format!("conn {conn}: server stream error: {e}");
                    self.note(desc.clone());
                    self.stream_errors.push(desc);
                    self.reap(conn, "stream error");
                    return;
                }
            }
        }
    }

    /// Handle one decoded-or-not frame payload.
    fn on_frame(&mut self, conn: usize, payload: Vec<u8>, keep: bool) {
        let (corr, trace, req) = match wire::decode_request(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                let desc = format!("conn {conn}: request decode error: {e}");
                self.note(desc.clone());
                self.stream_errors.push(desc);
                self.reap(conn, "decode error");
                return;
            }
        };
        if !self.conns[conn].hello_done {
            let shards = self.service.as_ref().map_or(0, |s| s.shard_map().shards());
            let backend = self.service.as_ref().map_or(self.backend, |s| s.backend());
            match ks_net::conn::handshake_reply(&req, shards, backend) {
                Ok(resp) => {
                    let session = match self.service.as_ref().map(|s| s.session()) {
                        Some(Ok(session)) => session,
                        Some(Err(e)) => {
                            self.push_response(conn, corr, trace, &Response::error(&e));
                            self.reap(conn, "session refused");
                            return;
                        }
                        None => {
                            self.reap(conn, "service down");
                            return;
                        }
                    };
                    self.conns[conn].core = Some(ConnCore::new(session));
                    self.conns[conn].hello_done = true;
                    self.push_response(conn, corr, trace, &resp);
                }
                Err(resp) => {
                    self.push_response(conn, corr, trace, &resp);
                    self.reap(conn, "bad hello");
                }
            }
            return;
        }
        let commit_id = match &req {
            wire::Request::Commit { txn } => Some(*txn),
            _ => None,
        };
        let action = {
            let service = self.service.as_ref();
            let core = self.conns[conn]
                .core
                .as_mut()
                .expect("post-hello connection has a core");
            core.handle(trace, req, &|| service.map(|s| s.metrics()))
        };
        match action {
            ConnAction::Reply(resp) => {
                if let (Some(id), Response::Done) = (commit_id, &resp) {
                    self.acked_commits.insert((conn, id));
                }
                if keep {
                    self.push_response(conn, corr, trace, &resp);
                } else {
                    self.note(format!("conn {conn}: response swallowed"));
                }
            }
            ConnAction::Bye => {
                self.push_response(conn, corr, trace, &Response::Bye);
                self.reap(conn, "bye");
            }
        }
    }

    /// Frame and enqueue a response for the client to read, echoing the
    /// request's correlation and trace ids.
    fn push_response(&mut self, conn: usize, corr: u64, trace: u64, resp: &Response) {
        let payload = wire::encode_response(corr, trace, resp);
        let inbox = &mut self.clients[conn].inbox;
        inbox.extend((payload.len() as u32).to_le_bytes());
        inbox.extend(&payload);
    }

    /// The client side of `conn` reads from its inbox.
    fn client_read(&mut self, conn: usize, out: &mut [u8]) -> io::Result<usize> {
        let end = &mut self.clients[conn];
        if end.reset {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "simulated connection reset",
            ));
        }
        let n = out.len().min(end.inbox.len());
        if n == 0 {
            // An empty inbox is indistinguishable from a reply that will
            // never come: the read deadline expires.
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "simulated read deadline expired",
            ));
        }
        for slot in out.iter_mut().take(n) {
            *slot = end.inbox.pop_front().unwrap();
        }
        Ok(n)
    }

    /// End the run: reap every connection, shut the service down
    /// gracefully, and hand the oracles the managers, recorder, and
    /// journals. Graceful shutdown always syncs the log, so the final
    /// durability check (media vs managers) holds even with the
    /// commit-flush protection off — only a [`Fault::Crash`] can expose
    /// that hole.
    pub fn finish(mut self) -> WorldEnd {
        self.reap_all();
        let certifiers = self.service.take().expect("finish called once").shutdown();
        let (want_states, want_committed) = committed_snapshot(&certifiers);
        match ks_wal::recover(&self.sim_store) {
            Ok(recovered) => {
                let got: BTreeSet<(u32, u64)> = recovered.committed.iter().copied().collect();
                if got != want_committed || recovered.states.as_ref() != Some(&want_states) {
                    self.durability_violations.push(format!(
                        "durability: graceful shutdown: log replays to \
                         {:?}/{got:?} but the certifiers committed \
                         {want_states:?}/{want_committed:?}",
                        recovered.states
                    ));
                }
            }
            Err(e) => self
                .durability_violations
                .push(format!("durability: end-of-run log unreadable: {e}")),
        }
        WorldEnd {
            certifiers,
            epochs: self.epochs,
            recorder: self.recorder,
            journal: self.journal.join("\n"),
            stream_errors: self.stream_errors,
            acked_commits: self.acked_commits,
            durability_violations: self.durability_violations,
            crashes: self.crashes,
        }
    }
}

/// The committed effects of a dying (or finished) incarnation's shard
/// certifiers: per shard, the latest committed value of every entity (in
/// shard-local entity order — [`Certifier::checkpoint`] is specified to
/// match the WAL checkpoint layout), plus the set of `(shard, txn)` ids
/// the certifiers hold committed. This is exactly what WAL recovery must
/// reproduce, whichever backend produced it.
fn committed_snapshot(certs: &[Box<dyn Certifier>]) -> (Vec<Vec<i64>>, BTreeSet<(u32, u64)>) {
    let mut states = Vec::with_capacity(certs.len());
    let mut committed = BTreeSet::new();
    for (shard, cert) in certs.iter().enumerate() {
        for txn in cert.txns() {
            if cert.state_of(txn) == Ok(TxnState::Committed) {
                committed.insert((shard as u32, txn.0 as u64));
            }
        }
        states.push(cert.checkpoint());
    }
    (states, committed)
}

/// The correlation id to stamp on a forged (fault-injected) reply to the
/// framed request in `bytes`: the id the client is actually awaiting.
/// Frames too mangled to carry one get `u64::MAX`, which the client
/// discards — exactly what a real server would provoke.
fn forged_corr(bytes: &[u8]) -> u64 {
    bytes.get(4..).and_then(wire::peek_corr).unwrap_or(u64::MAX)
}

/// The client-side [`Transport`]: an in-memory link into a shared
/// [`World`]. Writes accumulate until `flush` hands one frame to the
/// world; reads serve the inbox or fail like an expired socket deadline.
/// Splitting yields two handles onto the same connection — legal here
/// because the simulation is single-threaded, so the "halves" are never
/// used concurrently.
pub struct SimLink {
    world: Rc<RefCell<World>>,
    conn: usize,
    out: Vec<u8>,
}

impl SimLink {
    /// Open a fresh simulated connection into `world`.
    pub fn connect(world: &Rc<RefCell<World>>) -> SimLink {
        let conn = world.borrow_mut().connect();
        SimLink {
            world: Rc::clone(world),
            conn,
            out: Vec::new(),
        }
    }

    /// This link's connection id (for reaping after the client side is
    /// dropped or poisoned).
    pub fn conn_id(&self) -> usize {
        self.conn
    }
}

impl Read for SimLink {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.world.borrow_mut().client_read(self.conn, out)
    }
}

impl Write for SimLink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.out.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.out.is_empty() {
            let frame = std::mem::take(&mut self.out);
            self.world.borrow_mut().client_flush(self.conn, frame);
        }
        Ok(())
    }
}

impl TransportRx for SimLink {
    fn set_read_deadline(&mut self, _deadline: Option<Duration>) -> io::Result<()> {
        // The simulated clock decides when a reply is "late": an empty
        // inbox at read time *is* the deadline expiring.
        Ok(())
    }
}

impl Transport for SimLink {
    type Rx = SimLink;
    type Tx = SimLink;

    fn split(self) -> (SimLink, SimLink) {
        let rx = SimLink {
            world: Rc::clone(&self.world),
            conn: self.conn,
            out: Vec::new(),
        };
        (rx, self)
    }
}
