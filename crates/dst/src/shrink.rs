//! Failure shrinking: minimize a failing plan while it keeps failing.
//!
//! A ddmin-style pass first deletes step chunks (halves, then smaller,
//! down to single steps), then a second pass strips fault annotations
//! one at a time. Every candidate is re-executed with [`run_plan`] under
//! the same protections; because a run is a pure function of `(plan,
//! protections)`, shrinking the same failure twice produces the same
//! minimized plan — the replay guarantee `dst_smoke --replay` checks.
//!
//! Slot-based ops make every subset plan well-formed (a step whose
//! `Open` was deleted just no-ops), and each fault's randomness is
//! keyed by its own salt, so deleting neighbors never perturbs the
//! steps that remain.

use crate::link::Protections;
use crate::plan::RunPlan;
use crate::run::{run_plan, RunOutcome};

/// A minimized failure.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The smallest still-failing plan found.
    pub plan: RunPlan,
    /// Its outcome (same violation class as the original, usually).
    pub outcome: RunOutcome,
    /// Simulation runs spent shrinking.
    pub runs: usize,
}

/// Shrink `plan` (which must fail under `protections`) within a budget
/// of `max_runs` simulation runs.
///
/// Returns the original plan's outcome unshrunk if it does not actually
/// fail (so callers need not special-case).
pub fn shrink(plan: &RunPlan, protections: Protections, max_runs: usize) -> ShrinkResult {
    let mut best = plan.clone();
    let mut best_out = run_plan(&best, protections);
    let mut runs = 1usize;
    if !best_out.failed() {
        return ShrinkResult {
            plan: best,
            outcome: best_out,
            runs,
        };
    }

    // Pass 1: delete contiguous chunks, halving the granularity.
    let mut chunk = (best.steps.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < best.steps.len() && runs < max_runs {
            let end = (i + chunk).min(best.steps.len());
            let mut steps = best.steps.clone();
            steps.drain(i..end);
            if steps.is_empty() {
                i = end;
                continue;
            }
            let cand = RunPlan {
                seed: best.seed,
                steps,
            };
            let out = run_plan(&cand, protections);
            runs += 1;
            if out.failed() {
                best = cand;
                best_out = out;
                // Retry the same offset: the next chunk slid into place.
            } else {
                i = end;
            }
        }
        if chunk == 1 || runs >= max_runs {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    // Pass 2: strip fault annotations that are not load-bearing.
    let mut i = 0;
    while i < best.steps.len() && runs < max_runs {
        if best.steps[i].fault.is_some() {
            let mut cand = best.clone();
            cand.steps[i].fault = None;
            let out = run_plan(&cand, protections);
            runs += 1;
            if out.failed() {
                best = cand;
                best_out = out;
            }
        }
        i += 1;
    }

    ShrinkResult {
        plan: best,
        outcome: best_out,
        runs,
    }
}
