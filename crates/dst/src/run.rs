//! The single-threaded driver and the post-run oracles.
//!
//! [`run_plan`] executes a [`RunPlan`] against a fresh [`World`]: each
//! step picks its client, arms the step's fault directive, and issues the
//! op through a real [`RemoteSession`] over a [`SimLink`]. The driver
//! tracks only what a correct client can know — which commits are
//! *definitely* applied (clean `Ok`) and which are *ambiguous* (a
//! timeout or transport failure after the commit may or may not have
//! landed) — and the oracles reconcile that against what the shard
//! certifiers actually did.
//!
//! Oracles, in order:
//!
//! 1. **History correctness** — [`verify_certifiers`]: every committed
//!    transaction re-checked against its backend's own criterion (CPC:
//!    the paper's input predicate holds on the assigned version state;
//!    SSI/2PL: conflict-graph serializability of the recorded history —
//!    catches double-applied commits and forced misassignments).
//! 2. **End state** — after every connection is reaped, no transaction
//!    is left non-terminal (catches a missing abort-on-disconnect sweep).
//! 3. **Commit coherence** — a commit the server acked `Done` may never
//!    be reported to its client as a definitive failure: the world keeps
//!    the set of acked `(conn, id)` pairs and the driver keeps the set
//!    the client concluded "definitely not committed"; they must be
//!    disjoint (this is exactly the lie an unsafe retry of a timed-out
//!    commit produces — the retried frame hits a spent id and the
//!    client is told a committed transaction failed).
//! 4. **Commit accounting** — the server's committed count must lie in
//!    `[definite − undone, definite + ambiguous]`, where `undone` counts
//!    commits the protocol cascaded away (a committed sibling's commit
//!    "is only relative to the parent" and may be undone — the paper's
//!    first option). The server may resolve ambiguity either way but can
//!    never commit more than the clients submitted.
//! 5. **Benign-fault liveness** — a step whose fault is
//!    [benign](Fault::is_benign) (the server provably produced a
//!    readable reply) must not end in a transport timeout, and the
//!    server-side stream must never record a framing/decode error
//!    (catches reassembly desync without corrupting a single byte).
//! 6. **Obs causality** — per ring and transaction: at most one
//!    `TxnCommitted`, no validation after termination, no begin after
//!    termination (catches trace corruption and double-retired txns).

use crate::link::{Protections, SimLink, World};
use crate::plan::{
    batch_ops_for, client_entities, spec_for, Fault, OpKind, RunPlan, CLIENTS, SLOTS,
};
use ks_net::{NetClientConfig, RemoteSession, RemoteTxn};
use ks_obs::{event_to_json, ObsEvent, ObsKind, Recorder};
use ks_protocol::{Backend, TxnState};
use ks_server::{verify_certifiers, Client, ServerError, TxnBuilder, VerifyReport};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Everything a finished run exposes to tests, the shrinker, and the
/// artifact writer.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every oracle violation (empty ⇔ the run passed).
    pub violations: Vec<String>,
    /// The predicate-correctness report.
    pub report: VerifyReport,
    /// Commits the clients saw succeed.
    pub definite_commits: usize,
    /// Commits whose outcome the clients could not observe.
    pub ambiguous_commits: usize,
    /// The run's observability trace with every wall-clock-valued field
    /// zeroed: byte-identical across runs of the same `(plan,
    /// protections)` — the seed-determinism regression surface.
    pub canonical_trace: String,
    /// The world's fault/delivery journal.
    pub journal: String,
    /// Flight-recorder events lost to ring wraparound (0 in practice;
    /// the causality oracle is skipped when nonzero).
    pub dropped_events: u64,
    /// Crash-restarts the plan executed (each one ran the durability
    /// oracle against the dying incarnation's committed effects).
    pub crashes: usize,
}

impl RunOutcome {
    /// Did any oracle fire?
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// What one op call told the driver.
enum Outcome {
    /// Clean success.
    Ok,
    /// A typed server error on a healthy connection: the op definitively
    /// did not happen (`Rejected`, unknown id, unsatisfiable, …).
    Definitive,
    /// `Busy`/`Backpressure` surfaced after the client's retries: the op
    /// did not happen and the step is simply skipped.
    Congested,
    /// A server-signalled `Timeout` on a healthy connection: the op may
    /// or may not have been applied.
    AmbiguousTimeout,
    /// The transport poisoned (read deadline, reset, desync): outcome
    /// unknown and the connection is dead.
    TransportFail,
}

/// Per-client driver state.
struct ClientState {
    client_index: usize,
    session: Option<RemoteSession<SimLink>>,
    conn_id: usize,
    slots: Vec<Option<RemoteTxn>>,
}

/// The client config the harness runs under: one attempt deadline is
/// irrelevant (the sim decides timeouts), backoff is nanoscale so runs
/// are fast, and the carve-out knob follows the protections.
fn dst_client_config(protections: Protections, recorder: &Recorder) -> NetClientConfig {
    NetClientConfig {
        connect_timeout: Duration::from_secs(5),
        request_deadline: Duration::from_secs(5),
        max_retries: 3,
        backoff_base: Duration::from_nanos(50),
        backoff_cap: Duration::from_nanos(400),
        unsafe_retry_non_idempotent: !protections.timeout_carveout,
        recorder: Some(recorder.clone()),
        // Trace every request: span breadcrumbs are filtered out of the
        // canonical trace (they carry wall-clock timestamps) but feed the
        // causality oracle's span bookkeeping.
        trace_sample: 1.0,
    }
}

/// Execute `plan` under `protections` with the paper's CPC backend and
/// run every oracle.
pub fn run_plan(plan: &RunPlan, protections: Protections) -> RunOutcome {
    run_plan_with(plan, protections, Backend::Cpc)
}

/// [`run_plan`], but the embedded service certifies with `backend` — the
/// cross-backend gate runs the same seed through all three and expects
/// every oracle to hold for each.
pub fn run_plan_with(plan: &RunPlan, protections: Protections, backend: Backend) -> RunOutcome {
    let recorder;
    let world = {
        let w = World::new_with_backend(protections, backend);
        recorder = w.recorder();
        Rc::new(RefCell::new(w))
    };
    let config = dst_client_config(protections, &recorder);

    let mut clients: Vec<ClientState> = (0..CLIENTS)
        .map(|client_index| ClientState {
            client_index,
            session: None,
            conn_id: usize::MAX,
            slots: vec![None; SLOTS],
        })
        .collect();
    let mut definite_commits = 0usize;
    let mut ambiguous_commits = 0usize;
    // Commits the client was definitively told failed, by (conn, wire id).
    let mut claimed_failed: Vec<(usize, u64)> = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    for (i, step) in plan.steps.iter().enumerate() {
        let c = step.client as usize;
        // (Re)connect outside the fault window: the handshake itself is
        // not a step and is always delivered cleanly.
        if clients[c].session.as_ref().is_none_or(|s| s.is_poisoned()) {
            if clients[c].session.take().is_some() {
                // The server side of the poisoned connection is reaped
                // now (this is when a real server's reader loop would see
                // the disconnect), releasing or leaking its open
                // transactions per the protections.
                world.borrow_mut().reap(clients[c].conn_id, "client gone");
            }
            clients[c].slots = vec![None; SLOTS];
            let link = SimLink::connect(&world);
            clients[c].conn_id = link.conn_id();
            match RemoteSession::over(link, config.clone()) {
                Ok(s) => clients[c].session = Some(s),
                Err(e) => {
                    violations.push(format!("step {i}: clean reconnect failed: {e}"));
                    break;
                }
            }
        }

        // A crash fires *after* the step's op completes cleanly (so "ack
        // then power cut" is exercised); it is never armed as a wire
        // directive.
        let crash_salt = match step.fault {
            Some(Fault::Crash { torn_salt }) => Some(torn_salt),
            fault => {
                world.borrow_mut().set_fault(fault);
                None
            }
        };
        let outcome = exec_step(
            &mut clients[c],
            &step.op,
            &mut definite_commits,
            &mut ambiguous_commits,
            &mut claimed_failed,
        );
        // An op that never sent a request (empty/occupied slot) leaves
        // the directive armed; disarm it so it cannot leak forward.
        world.borrow_mut().clear_fault();

        if step.fault.is_some_and(Fault::is_benign) {
            if let Some(Outcome::TransportFail | Outcome::AmbiguousTimeout) = outcome {
                violations.push(format!(
                    "step {i}: benign fault {:?} ended in a lost reply \
                     (frame reassembly desync)",
                    step.fault.unwrap()
                ));
            }
        }

        if let Some(salt) = crash_salt {
            world.borrow_mut().crash_restart(salt);
            // Every connection died with the server; the next step each
            // client takes reconnects into the new incarnation.
            for cs in clients.iter_mut() {
                cs.session = None;
                cs.slots = vec![None; SLOTS];
            }
        }
    }

    // Orderly goodbyes where possible; the world reaps the rest.
    for cs in &mut clients {
        if let Some(session) = cs.session.take() {
            let poisoned = session.is_poisoned();
            let _ = session.close();
            if poisoned {
                world.borrow_mut().reap(cs.conn_id, "client gone");
            }
        }
    }

    let world = Rc::try_unwrap(world)
        .unwrap_or_else(|_| panic!("driver holds the last World reference"))
        .into_inner();
    let end = world.finish();

    // Oracle 1: history correctness on the final incarnation. Crashed
    // epochs are *incomplete* executions (a power cut leaves live
    // children mid-flight), so the finished-session model check does not
    // apply to them — their committed work is instead held to account by
    // the durability oracle (replayed exactly) and the commit-accounting
    // oracle below, whose server-side count sums every incarnation:
    // recovery bakes prior commits into the next incarnation's initial
    // state rather than re-creating the transactions, so each commit is
    // counted exactly once.
    let report = verify_certifiers(&end.certifiers);
    violations.extend(report.violations.iter().cloned());
    let mut server_committed = report.committed;
    for certs in &end.epochs {
        for cert in certs.iter() {
            server_committed += cert
                .txns()
                .into_iter()
                .filter(|&t| cert.state_of(t) == Ok(TxnState::Committed))
                .count();
        }
    }

    // Oracle 7: durability — every acked commit survives recovery,
    // nothing revoked is resurrected, recovered state matches the dying
    // incarnation's committed effects (collected by the world at each
    // crash and at the final graceful shutdown).
    violations.extend(end.durability_violations.iter().cloned());

    // Oracle 2: end state — every transaction terminal.
    for (shard, cert) in end.certifiers.iter().enumerate() {
        for txn in cert.txns() {
            match cert.state_of(txn) {
                Ok(TxnState::Committed | TxnState::Aborted) => {}
                Ok(state) => violations.push(format!(
                    "shard {shard}: txn {} left {state:?} after every \
                     connection closed (abort-on-disconnect missing)",
                    txn.0
                )),
                Err(e) => violations.push(format!(
                    "shard {shard}: txn {} state unreadable: {e}",
                    txn.0
                )),
            }
        }
    }

    // Oracle 3: commit coherence — a server-acked commit may never be
    // reported to its client as a definitive failure.
    for &(conn, id) in &claimed_failed {
        if end.acked_commits.contains(&(conn, id)) {
            violations.push(format!(
                "commit coherence: conn {conn} txn id {id} was committed \
                 server-side but the client was told the commit \
                 definitively failed (double-sent commit)"
            ));
        }
    }

    // Oracle 5 (second half): the stream itself must never desync.
    for e in &end.stream_errors {
        violations.push(format!("server stream desync: {e}"));
    }

    // Oracle 6: obs causality, meaningful only on a complete trace; also
    // yields the cascade-undone commit count oracle 4 needs.
    let rings = end.recorder.drain_rings();
    let dropped_events = end.recorder.dropped();
    let undone = if dropped_events == 0 {
        check_causality(&rings, &mut violations)
    } else {
        0
    };

    // Oracle 4: commit accounting (skipped on an incomplete trace, where
    // `undone` is unknowable). Counts span every incarnation.
    if dropped_events == 0
        && (server_committed + undone < definite_commits
            || server_committed > definite_commits + ambiguous_commits)
    {
        violations.push(format!(
            "commit accounting: server committed {server_committed} (+{undone} undone by \
             cascade) but clients saw {definite_commits} definite + \
             {ambiguous_commits} ambiguous (double-applied or lost commit)"
        ));
    }

    RunOutcome {
        violations,
        report,
        definite_commits,
        ambiguous_commits,
        canonical_trace: canonical_trace(&rings, dropped_events),
        journal: end.journal,
        dropped_events,
        crashes: end.crashes,
    }
}

/// Issue one op. Returns `None` if the op was a no-op (slot state made it
/// inapplicable), otherwise the classified outcome.
fn exec_step(
    cs: &mut ClientState,
    op: &OpKind,
    definite: &mut usize,
    ambiguous: &mut usize,
    claimed_failed: &mut Vec<(usize, u64)>,
) -> Option<Outcome> {
    let session = cs.session.as_ref().expect("connected above");
    match op {
        OpKind::Open {
            slot,
            spec_salt,
            after,
            before,
            strategy,
            depth,
        } => {
            let slot = *slot as usize;
            if cs.slots[slot].is_some() {
                return None;
            }
            let pool = client_entities(client_of(cs));
            let mut builder =
                TxnBuilder::new(spec_for(*spec_salt, &pool)).pipeline_depth(*depth as usize);
            for &s in after {
                if let Some(h) = cs.slots[s as usize] {
                    builder = builder.after(h);
                }
            }
            for &s in before {
                if let Some(h) = cs.slots[s as usize] {
                    builder = builder.before(h);
                }
            }
            if let Some(st) = strategy {
                builder = builder.strategy(*st);
            }
            match session.open(builder) {
                Ok(h) => {
                    cs.slots[slot] = Some(h);
                    Some(Outcome::Ok)
                }
                Err(e) => Some(classify(session, &e)),
            }
        }
        OpKind::Validate { slot } => cs.unit_op(*slot, |s, h| s.validate(h)),
        OpKind::Read { slot, entity_ix } => {
            let pool = client_entities(client_of(cs));
            let entity = pool[*entity_ix as usize % pool.len()];
            cs.unit_op(*slot, |s, h| s.read(h, entity).map(|_| ()))
        }
        OpKind::Write {
            slot,
            entity_ix,
            value,
        } => {
            let pool = client_entities(client_of(cs));
            let entity = pool[*entity_ix as usize % pool.len()];
            cs.unit_op(*slot, |s, h| s.write(h, entity, *value))
        }
        OpKind::Batch {
            slot,
            ops_salt,
            len,
        } => {
            let pool = client_entities(client_of(cs));
            let ops = batch_ops_for(*ops_salt, *len, &pool);
            // Per-op errors (wrong-phase probes, unsatisfiable reads) are
            // expected and typed; only the *burst's* outcome classifies.
            cs.unit_op(*slot, |s, h| s.run_batch(h, &ops).map(|_| ()))
        }
        OpKind::Commit { slot } => {
            let slot = *slot as usize;
            let h = cs.slots[slot]?;
            match session.commit(h) {
                Ok(()) => {
                    *definite += 1;
                    cs.slots[slot] = None;
                    Some(Outcome::Ok)
                }
                Err(e) => {
                    let outcome = classify(session, &e);
                    match outcome {
                        // The commit may have landed; the id is gone (or
                        // the conn is dead) either way, so the slot is
                        // abandoned without a follow-up abort.
                        Outcome::AmbiguousTimeout | Outcome::TransportFail => {
                            *ambiguous += 1;
                            cs.slots[slot] = None;
                        }
                        // The server *told* the client this commit did
                        // not happen — record the claim so the
                        // coherence oracle can hold the server to it.
                        Outcome::Definitive => {
                            claimed_failed.push((cs.conn_id, h.0));
                            cs.slots[slot] = None;
                        }
                        // Busy: the txn is intact; a later step may retry.
                        Outcome::Congested | Outcome::Ok => {}
                    }
                    Some(outcome)
                }
            }
        }
        OpKind::Abort { slot } => {
            let slot = *slot as usize;
            let h = cs.slots[slot]?;
            let result = session.abort(h);
            let outcome = result.map_or_else(|e| classify(session, &e), |()| Outcome::Ok);
            // Whatever happened, the client is done with this handle; a
            // dead connection's server side sweeps it, and a definitive
            // error means it was already gone.
            if !matches!(outcome, Outcome::Congested) {
                cs.slots[slot] = None;
            }
            Some(outcome)
        }
        OpKind::Metrics => {
            let result = session.metrics();
            Some(result.map_or_else(|e| classify(session, &e), |_| Outcome::Ok))
        }
    }
}

impl ClientState {
    /// Run a unit op against a slot's live handle; on a definitive error
    /// or ambiguous timeout, abort-and-release the slot (the abort is
    /// idempotent server-side, and tolerated if the id is already gone).
    fn unit_op(
        &mut self,
        slot: u8,
        f: impl FnOnce(&RemoteSession<SimLink>, RemoteTxn) -> Result<(), ServerError>,
    ) -> Option<Outcome> {
        let slot = slot as usize;
        let h = self.slots[slot]?;
        let session = self.session.as_ref().expect("connected above");
        let outcome = match f(session, h) {
            Ok(()) => Outcome::Ok,
            Err(e) => classify(session, &e),
        };
        match outcome {
            Outcome::Definitive | Outcome::AmbiguousTimeout => {
                // Clean up: the txn's fate is sealed (or sealable) —
                // release the slot and make sure the server side agrees.
                let _ = session.abort(h);
                self.slots[slot] = None;
            }
            Outcome::TransportFail => {
                // Connection dead; reconnect wipes the slots and the
                // server's reap sweeps the open txns.
            }
            Outcome::Ok | Outcome::Congested => {}
        }
        Some(outcome)
    }
}

/// The plan-level client index a driver state belongs to (decides its
/// home-shard entity pool).
fn client_of(cs: &ClientState) -> usize {
    cs.client_index
}

/// Classify an op error against the connection's health.
fn classify(session: &RemoteSession<SimLink>, e: &ServerError) -> Outcome {
    if session.is_poisoned() {
        return Outcome::TransportFail;
    }
    match e {
        ServerError::Timeout => Outcome::AmbiguousTimeout,
        ServerError::Busy | ServerError::Backpressure => Outcome::Congested,
        _ => Outcome::Definitive,
    }
}

/// Per-ring, per-txn lifecycle checks plus cross-ring span pairing on a
/// complete trace. Returns the number of commits the protocol later
/// undid by cascade (a committed sibling aborted when versions it
/// depends on became doomed — legal per the paper, and needed by the
/// accounting oracle's lower bound).
fn check_causality(rings: &[Vec<ObsEvent>], violations: &mut Vec<String>) -> usize {
    use std::collections::BTreeMap;
    let mut undone = 0usize;
    for (ring_ix, ring) in rings.iter().enumerate() {
        // txn -> (seen_begin, committed, aborted)
        let mut life: BTreeMap<(u32, u32), (bool, bool, bool)> = BTreeMap::new();
        for ev in ring {
            // A recovery replay marks an epoch boundary: the restarted
            // shard reuses worker-local txn ids, so lifecycle tracking
            // starts over (the WAL's checkpoint fence is what makes the
            // reuse safe on the durability side).
            if matches!(ev.kind, ObsKind::RecoveryReplay { .. }) {
                life.clear();
                continue;
            }
            if ev.txn == ks_obs::NO_TXN {
                continue;
            }
            let key = (ev.shard, ev.txn);
            let entry = life.entry(key).or_insert((false, false, false));
            match &ev.kind {
                ObsKind::TxnBegin => {
                    if entry.0 {
                        violations.push(format!("obs ring {ring_ix}: txn {key:?} begins twice"));
                    }
                    if entry.1 || entry.2 {
                        violations.push(format!(
                            "obs ring {ring_ix}: txn {key:?} begins after terminating"
                        ));
                    }
                    entry.0 = true;
                }
                ObsKind::TxnCommitted => {
                    if entry.1 {
                        violations.push(format!(
                            "obs ring {ring_ix}: txn {key:?} committed twice \
                             (double-applied commit)"
                        ));
                    }
                    entry.1 = true;
                }
                ObsKind::TxnAborted => {
                    if entry.1 {
                        // Committed-then-aborted is cascade undo: legal,
                        // but it loosens the accounting lower bound.
                        undone += 1;
                    }
                    entry.2 = true;
                }
                ObsKind::TxnValidated if entry.2 => {
                    violations.push(format!(
                        "obs ring {ring_ix}: txn {key:?} validated after aborting"
                    ));
                }
                _ => {}
            }
        }
    }
    check_spans(rings, violations);
    undone
}

/// Distributed-trace span pairing. Spans cross rings — a `Queue` span
/// opens on the enqueuing session thread and closes on the shard worker
/// — so the check runs on the merged, time-ordered stream. The network
/// may legally replay a frame (`Fault::DupRequest` executes the same
/// traced request twice), so repeated starts open *incarnations* of the
/// same `(trace, hop)` span; the invariant is that every end closes an
/// incarnation some start opened before it. A `RecoveryReplay` marks an
/// epoch boundary: a crash legitimately strands open spans (the thread
/// that would close them died mid-request), so open incarnations are
/// *forgiven* — their late ends are accepted silently.
fn check_spans(rings: &[Vec<ObsEvent>], violations: &mut Vec<String>) {
    use std::collections::BTreeMap;
    let mut merged: Vec<&ObsEvent> = rings.iter().flatten().collect();
    // Starts sort before ends at equal timestamps, so a span opened and
    // closed within one clock tick still pairs in causal order.
    merged.sort_by_key(|ev| (ev.ts, !matches!(ev.kind, ObsKind::SpanStart { .. })));
    // (trace, hop) -> (open incarnations, forgiven incarnations).
    let mut spans: BTreeMap<(u64, u32), (u64, u64)> = BTreeMap::new();
    for ev in merged {
        match ev.kind {
            ObsKind::RecoveryReplay { .. } => {
                for (open, forgiven) in spans.values_mut() {
                    *forgiven += *open;
                    *open = 0;
                }
            }
            ObsKind::SpanStart { hop, trace, .. } => {
                spans.entry((trace, hop.code())).or_insert((0, 0)).0 += 1;
            }
            ObsKind::SpanEnd { hop, trace, .. } => {
                let (open, forgiven) = spans.entry((trace, hop.code())).or_insert((0, 0));
                if *open > 0 {
                    *open -= 1;
                } else if *forgiven > 0 {
                    *forgiven -= 1;
                } else {
                    violations.push(format!(
                        "span causality: trace {trace:#x} hop {hop:?} ends without a start"
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Serialize the rings with every wall-clock-valued field zeroed, so the
/// result is a pure function of the run's logical behavior.
fn canonical_trace(rings: &[Vec<ObsEvent>], dropped: u64) -> String {
    let mut out = String::new();
    if dropped > 0 {
        out.push_str(&format!("# WARNING: {dropped} events dropped\n"));
    }
    for (i, ring) in rings.iter().enumerate() {
        // Worker drain sizes depend on thread wakeup timing (how many
        // requests queued before the shard worker woke), so the events
        // are dropped from the canonical trace entirely — even their
        // count varies run to run. Span breadcrumbs and telemetry
        // deltas go the same way: which WAL flush group a commit lands
        // in and which 1-second window a request falls into are
        // wall-clock facts, not logical ones (the span causality oracle
        // checks them instead).
        let logical = ring.iter().filter(|ev| {
            !matches!(
                ev.kind,
                ObsKind::WorkerDrain { .. }
                    | ObsKind::SpanStart { .. }
                    | ObsKind::SpanEnd { .. }
                    | ObsKind::TelemetryDelta { .. }
            )
        });
        out.push_str(&format!(
            "# ring {i} ({} events)\n",
            logical.clone().count()
        ));
        for ev in logical {
            let mut ev = *ev;
            ev.ts = 0;
            ev.kind = match ev.kind {
                ObsKind::Execute { op, .. } => ObsKind::Execute { op, queue_ns: 0 },
                ObsKind::Reply { op, ok, .. } => ObsKind::Reply { op, ok, exec_ns: 0 },
                ObsKind::NetRetry { op, attempt, .. } => ObsKind::NetRetry {
                    op,
                    attempt,
                    delay_ns: 0,
                },
                ObsKind::WalFsync { records, .. } => ObsKind::WalFsync {
                    records,
                    sync_ns: 0,
                },
                other => other,
            };
            out.push_str(&event_to_json(&ev));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_obs::{OpCode, SpanHop, NO_TXN};

    fn ev(ts: u64, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            ts,
            shard: 0,
            txn: NO_TXN,
            kind,
        }
    }

    fn start(ts: u64, hop: SpanHop, trace: u64) -> ObsEvent {
        ev(
            ts,
            ObsKind::SpanStart {
                hop,
                op: OpCode::Commit,
                trace,
            },
        )
    }

    fn end(ts: u64, hop: SpanHop, trace: u64) -> ObsEvent {
        ev(
            ts,
            ObsKind::SpanEnd {
                hop,
                ok: true,
                trace,
            },
        )
    }

    /// A start/end pair split across two rings (the Queue span opens on
    /// the session thread and closes on the worker) pairs cleanly.
    #[test]
    fn spans_pair_across_rings() {
        let rings = vec![
            vec![start(10, SpanHop::Queue, 7)],
            vec![end(20, SpanHop::Queue, 7)],
        ];
        let mut violations = Vec::new();
        check_spans(&rings, &mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// An end with no start anywhere is a causality violation.
    #[test]
    fn orphan_end_is_a_violation() {
        let rings = vec![vec![end(5, SpanHop::Exec, 9)]];
        let mut violations = Vec::new();
        check_spans(&rings, &mut violations);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("ends without a start"),
            "{violations:?}"
        );
    }

    /// A replayed frame (Fault::DupRequest) opens two incarnations of
    /// the same span; two ends close them without complaint, a third
    /// would not.
    #[test]
    fn duplicate_delivery_opens_incarnations() {
        let rings = vec![vec![
            start(1, SpanHop::Exec, 3),
            start(2, SpanHop::Exec, 3),
            end(3, SpanHop::Exec, 3),
            end(4, SpanHop::Exec, 3),
        ]];
        let mut violations = Vec::new();
        check_spans(&rings, &mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// A crash strands open spans; the RecoveryReplay epoch boundary
    /// forgives them, so a late end (the client's Request span closing
    /// after the server restarted) is not a violation — but an end with
    /// no start in *any* epoch still is.
    #[test]
    fn recovery_epoch_forgives_spans_open_across_the_crash() {
        let replay = ev(
            15,
            ObsKind::RecoveryReplay {
                writes: 1,
                committed: 1,
            },
        );
        let rings = vec![
            vec![start(10, SpanHop::Request, 11)],
            vec![replay],
            vec![end(20, SpanHop::Request, 11), end(21, SpanHop::Certify, 12)],
        ];
        let mut violations = Vec::new();
        check_spans(&rings, &mut violations);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("0xc"), "{violations:?}");
    }
}
