//! Faults landing on pipelined `Batch` frames.
//!
//! A batch burst is chunked into several wire frames in flight at once,
//! and the fault directive arms on the burst's *first* frame — so a
//! `Reset` leaves the rest of the burst writing into a dead connection,
//! a `Trickle` straddles one frame of an in-flight window, and a dropped
//! reply must poison exactly the callers of that burst. These hand-built
//! plans pin each of those shapes; the generator-coverage test keeps the
//! seeded gates exercising them; and the final test re-checks the
//! commit-coherence oracle still bites now that plans contain batches.

use ks_dst::{generate, run_plan, Fault, OpKind, Protections, RunPlan, Step};

/// A minimal full lifecycle around one batch burst: open (pipeline depth
/// 3) → validate → 8-op batch (3 frames in flight) → commit, with
/// `fault` armed on the batch step.
fn batch_plan(fault: Option<Fault>) -> RunPlan {
    let open = OpKind::Open {
        slot: 0,
        spec_salt: 5,
        after: Vec::new(),
        before: Vec::new(),
        strategy: None,
        depth: 3,
    };
    let steps = vec![
        Step {
            client: 0,
            op: open,
            fault: None,
        },
        Step {
            client: 0,
            op: OpKind::Validate { slot: 0 },
            fault: None,
        },
        Step {
            client: 0,
            op: OpKind::Batch {
                slot: 0,
                ops_salt: 1,
                len: 8,
            },
            fault,
        },
        Step {
            client: 0,
            op: OpKind::Commit { slot: 0 },
            fault: None,
        },
    ];
    RunPlan { seed: 0, steps }
}

#[test]
fn clean_pipelined_batch_commits() {
    let out = run_plan(&batch_plan(None), Protections::all_on());
    assert!(!out.failed(), "{:#?}", out.violations);
    assert_eq!(
        out.definite_commits, 1,
        "the batched lifecycle must commit cleanly:\n{}",
        out.journal
    );
}

#[test]
fn trickled_batch_frame_reassembles_mid_burst() {
    // Benign by construction: the oracle inside `run_plan` flags the run
    // if the trickled frame desyncs reassembly and the burst times out.
    let out = run_plan(
        &batch_plan(Some(Fault::Trickle {
            chunks: 4,
            salt: 99,
        })),
        Protections::all_on(),
    );
    assert!(!out.failed(), "{:#?}", out.violations);
    assert_eq!(
        out.definite_commits, 1,
        "a trickled batch frame must still complete the lifecycle:\n{}",
        out.journal
    );
}

#[test]
fn poisoning_faults_inside_a_batch_stay_coherent() {
    // Drop the burst's first frame / its reply / the whole connection:
    // the burst fails, the client reconnects, and every oracle (end
    // state, accounting, coherence) must still hold.
    for fault in [Fault::DropRequest, Fault::DropResponse, Fault::Reset] {
        let out = run_plan(&batch_plan(Some(fault)), Protections::all_on());
        assert!(!out.failed(), "{fault:?}: {:#?}", out.violations);
        assert_eq!(
            out.definite_commits, 0,
            "{fault:?} poisons the connection before the commit step:\n{}",
            out.journal
        );
    }
}

#[test]
fn forged_timeouts_on_a_batch_classify_as_ambiguous() {
    for fault in [Fault::ServerTimeoutApplied, Fault::ServerTimeoutLost] {
        let out = run_plan(&batch_plan(Some(fault)), Protections::all_on());
        assert!(!out.failed(), "{fault:?}: {:#?}", out.violations);
    }
}

#[test]
fn seeded_plans_land_poisoning_faults_on_batches() {
    // The gates scan seeds 0..25 (`dst_smoke --seeds 25`); within that
    // range the generator must land drop/trickle/reset faults on batch
    // steps, or the hand-built shapes above are the only coverage.
    let mut hit = 0usize;
    for seed in 0..25u64 {
        for step in generate(seed).steps {
            if matches!(step.op, OpKind::Batch { .. })
                && matches!(
                    step.fault,
                    Some(
                        Fault::DropRequest
                            | Fault::DropResponse
                            | Fault::Reset
                            | Fault::Trickle { .. }
                    )
                )
            {
                hit += 1;
            }
        }
    }
    assert!(
        hit >= 3,
        "only {hit} drop/trickle/reset faults landed on batch steps across the gate's seed range"
    );
}

#[test]
fn commit_coherence_oracle_still_bites_with_batches_in_plans() {
    // Disable the timeout carve-out (the client will blindly retry a
    // timed-out commit) and scan the gate's seed range: some seed must
    // fail, and specifically on the commit-coherence oracle — batches in
    // the op mix must not dilute the oracle's teeth.
    let protections = Protections::disable("timeout-carveout").unwrap();
    let coherence_bites = (0..25u64).any(|seed| {
        run_plan(&generate(seed), protections)
            .violations
            .iter()
            .any(|v| v.contains("commit coherence"))
    });
    assert!(
        coherence_bites,
        "no commit-coherence violation across seeds 0..25 with the carve-out disabled"
    );
}
