//! The oracles must have teeth: with every protection on, the fixed seed
//! range is clean; switching any one protection off makes some seed in
//! the same range fail; and shrinking a failure twice minimizes to the
//! identical plan (the replay guarantee).

use ks_dst::{generate, run_plan, shrink, Protections};

/// The fixed seed range the gates scan (matches `dst_smoke --seeds 25`).
const SEEDS: u64 = 25;

#[test]
fn all_protections_on_seed_range_is_clean() {
    for seed in 0..SEEDS {
        let out = run_plan(&generate(seed), Protections::all_on());
        assert!(
            !out.failed(),
            "seed {seed} violated with all protections on:\n{:#?}\njournal:\n{}",
            out.violations,
            out.journal
        );
    }
}

fn first_failing_seed(protections: Protections) -> Option<u64> {
    (0..SEEDS).find(|&seed| run_plan(&generate(seed), protections).failed())
}

#[test]
fn disabling_any_protection_is_caught_within_the_seed_range() {
    for name in Protections::NAMES {
        let protections = Protections::disable(name).unwrap();
        assert!(
            first_failing_seed(protections).is_some(),
            "disabling {name} went undetected across seeds 0..{SEEDS}"
        );
    }
}

#[test]
fn shrinking_is_reproducible_and_still_failing() {
    let protections = Protections::disable("timeout-carveout").unwrap();
    let seed =
        first_failing_seed(protections).expect("some seed must fail with the carve-out disabled");
    let plan = generate(seed);
    let a = shrink(&plan, protections, 150);
    let b = shrink(&plan, protections, 150);
    assert!(a.outcome.failed(), "shrunk plan must still fail");
    assert_eq!(
        a.plan, b.plan,
        "shrinking the same failure twice must minimize identically"
    );
    assert_eq!(a.outcome.violations, b.outcome.violations);
    assert!(
        a.plan.steps.len() <= plan.steps.len(),
        "shrinking must not grow the plan"
    );
}
