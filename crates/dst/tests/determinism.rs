//! Seed-determinism regression: the same seed must produce the same run,
//! down to the byte, twice in the same process — the property every
//! replay and shrink guarantee rests on.

use ks_dst::{generate, run_plan, Protections};

#[test]
fn same_seed_same_canonical_trace() {
    for seed in [0u64, 1, 7, 41] {
        let plan = generate(seed);
        let a = run_plan(&plan, Protections::all_on());
        let b = run_plan(&plan, Protections::all_on());
        assert_eq!(
            a.canonical_trace, b.canonical_trace,
            "seed {seed}: canonical obs traces diverged between two runs"
        );
        assert_eq!(
            a.journal, b.journal,
            "seed {seed}: world journals diverged between two runs"
        );
        assert_eq!(a.definite_commits, b.definite_commits, "seed {seed}");
        assert_eq!(a.ambiguous_commits, b.ambiguous_commits, "seed {seed}");
        assert_eq!(a.violations, b.violations, "seed {seed}");
    }
}

#[test]
fn traces_are_complete_and_nonempty() {
    let plan = generate(3);
    let out = run_plan(&plan, Protections::all_on());
    assert_eq!(out.dropped_events, 0, "DST rings must never overflow");
    assert!(
        out.canonical_trace.lines().count() > 10,
        "a 64-step run must leave a substantial trace:\n{}",
        out.canonical_trace
    );
}
