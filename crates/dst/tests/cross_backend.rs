//! Cross-backend DST gate: the same seeded plans run under every
//! certification backend — CPC, SSI, and 2PL — through the identical
//! production stack (wire framing, connection core, shard workers, WAL),
//! and every oracle must hold for each of them. The seed set is required
//! to contain power cuts, so the durability oracle (acked commits
//! survive recovery, nothing revoked is resurrected) runs against every
//! backend, not just the paper's.

use ks_dst::{generate, run_plan_with, Backend, Fault, Protections, RunPlan};

/// Seeds picked to mix quiet runs with fault-heavy ones; the test
/// asserts the set actually exercises crash-restarts, so generator
/// drift cannot silently hollow the gate out.
const SEEDS: [u64; 5] = [0, 2, 3, 7, 11];

fn plans() -> Vec<(u64, RunPlan)> {
    SEEDS.iter().map(|&s| (s, generate(s))).collect()
}

#[test]
fn every_backend_passes_every_oracle_on_the_same_seeds() {
    let mut crashes = 0usize;
    for (seed, plan) in plans() {
        for backend in Backend::all() {
            let out = run_plan_with(&plan, Protections::all_on(), backend);
            assert!(
                !out.failed(),
                "seed {seed}, backend {backend}: oracles fired: {:#?}\njournal:\n{}",
                out.violations,
                out.journal
            );
            crashes += out.crashes;
        }
    }
    assert!(
        crashes > 0,
        "seed set exercises no power cuts — the durability oracle never \
         ran against SSI/2PL"
    );
}

#[test]
fn the_seed_set_contains_power_cuts() {
    let cuts: usize = plans()
        .iter()
        .map(|(_, p)| {
            p.steps
                .iter()
                .filter(|s| matches!(s.fault, Some(Fault::Crash { .. })))
                .count()
        })
        .sum();
    assert!(cuts > 0, "pick seeds whose plans include Fault::Crash");
}

/// Readiness starvation is benign: the request's bytes sit readable the
/// whole time, so once the event loop finally schedules the connection
/// the reply must still come — a starved step ending in a lost reply or
/// a stream desync trips the liveness oracle. This gate runs a plan in
/// which *every* non-crash step is starved (worst case: every frame of
/// the run waits out an unscheduled window) through all three backends.
#[test]
fn starved_connections_stay_live_on_every_backend() {
    let base = generate(5);
    let steps: Vec<_> = base
        .steps
        .into_iter()
        .enumerate()
        .map(|(i, mut s)| {
            // Crash steps keep their fault (a power cut is a step-level
            // event, not a wire directive); everything else is starved
            // with a tick count that varies across the plan.
            if !matches!(s.fault, Some(Fault::Crash { .. })) {
                s.fault = Some(Fault::Starve {
                    ticks: 1 + (i as u8 % 7),
                });
            }
            s
        })
        .collect();
    let plan = RunPlan {
        seed: base.seed,
        steps,
    };
    let starved = plan
        .steps
        .iter()
        .filter(|s| matches!(s.fault, Some(Fault::Starve { .. })))
        .count();
    assert!(starved > 0, "the starvation plan starves nothing");
    for backend in Backend::all() {
        let out = run_plan_with(&plan, Protections::all_on(), backend);
        assert!(
            !out.failed(),
            "backend {backend}: starved connections lost liveness: {:#?}\njournal:\n{}",
            out.violations,
            out.journal
        );
    }
}

/// The generator itself emits starvation steps, and generated plans
/// carrying them pass every oracle on every backend — so the fault is
/// exercised by the seed sweep, not only the handcrafted gate above.
#[test]
fn generated_starve_seeds_pass_every_backend() {
    let mut hit = 0usize;
    for seed in 0..40u64 {
        let plan = generate(seed);
        if !plan
            .steps
            .iter()
            .any(|s| matches!(s.fault, Some(Fault::Starve { .. })))
        {
            continue;
        }
        hit += 1;
        for backend in Backend::all() {
            let out = run_plan_with(&plan, Protections::all_on(), backend);
            assert!(
                !out.failed(),
                "seed {seed}, backend {backend}: {:#?}\njournal:\n{}",
                out.violations,
                out.journal
            );
        }
        if hit >= 3 {
            break;
        }
    }
    assert!(hit > 0, "no seed in 0..40 generated a Starve step");
}

/// Each backend is individually deterministic: same plan, same backend,
/// byte-identical canonical trace — the property replay and shrinking
/// rest on, now needed for three certifiers instead of one.
#[test]
fn every_backend_is_seed_deterministic() {
    let plan = generate(3);
    for backend in Backend::all() {
        let a = run_plan_with(&plan, Protections::all_on(), backend);
        let b = run_plan_with(&plan, Protections::all_on(), backend);
        assert_eq!(
            a.canonical_trace, b.canonical_trace,
            "backend {backend}: canonical traces diverged"
        );
        assert_eq!(a.journal, b.journal, "backend {backend}");
        assert_eq!(a.violations, b.violations, "backend {backend}");
    }
}
