//! # ks-baselines
//!
//! The classical concurrency-control schedulers the paper positions itself
//! against (Section 2.4):
//!
//! * [`TwoPhaseLocking`] — strict two-phase locking with waits-for deadlock
//!   detection. Yannakakis's theorem makes 2PL essentially the only
//!   unstructured way to guarantee serializability, and the paper's point
//!   is that its lock-hold times scale with transaction duration:
//!   long-duration waits.
//! * [`TimestampOrdering`] — basic T/O: no waits, but stale transactions
//!   abort; a long transaction is nearly always stale by the time it
//!   writes, so long transactions starve ("aborts are undesirable when
//!   transactions are of long duration since a substantial amount of work
//!   is undone").
//! * [`MultiversionTimestampOrdering`] — MVTO: reads never block or abort,
//!   writes abort when a later reader has already consumed the interval.
//!
//! * [`PredicatewiseTwoPhaseLocking`] — the companion protocol of
//!   Korth et al. 1988 that the paper derives its `PWSR` class from:
//!   two-phase locking per *conjunct*, releasing an object's locks as soon
//!   as a transaction's accesses to it end. Guarantees `PWCSR`, not `CSR` —
//!   the first step away from serializability.
//!
//! All implement [`ks_sim::ConcurrencyControl`] and are exercised by
//! the `sec24-waits`/`sec24-aborts` experiments against the Korth–Speegle
//! protocol adapter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mvto;
pub mod pw2pl;
pub mod to;
pub mod tpl;

pub use mvto::MultiversionTimestampOrdering;
pub use pw2pl::PredicatewiseTwoPhaseLocking;
pub use to::TimestampOrdering;
pub use tpl::TwoPhaseLocking;
