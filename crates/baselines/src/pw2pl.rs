//! Predicate-wise two-phase locking (after Korth et al. 1988).
//!
//! The paper derives its `PWSR` class from "a protocol called predicate-wise
//! two-phase locking": if the consistency constraint is in CNF, it suffices
//! to be two-phase **per conjunct** — a transaction may release one
//! object's locks while still acquiring another's, because each conjunct is
//! independently responsible for consistency. Lock hold times shrink from
//! "the rest of the transaction" to "the rest of the accesses *to that
//! object*", and the committed interleavings are guaranteed `PWCSR`, not
//! `CSR`.
//!
//! This implementation partitions entities into objects and uses the
//! workload's access plans (the same information the KS adapter uses) to
//! detect each transaction's last access to an object, releasing that
//! object's locks immediately afterwards.

use ks_kernel::EntityId;
use ks_sim::{ConcurrencyControl, Decision, SimTime, SimTxnId, Workload};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Default, Clone)]
struct LockState {
    shared: BTreeSet<SimTxnId>,
    exclusive: Option<SimTxnId>,
}

/// Predicate-wise strict-per-object 2PL.
#[derive(Debug)]
pub struct PredicatewiseTwoPhaseLocking {
    /// Object index of each entity (the conjunct partition).
    object_of: Vec<usize>,
    /// Planned remaining accesses per transaction per object.
    plan: Vec<BTreeMap<usize, usize>>,
    /// Live remaining-access counters (reset on restart).
    remaining: Vec<BTreeMap<usize, usize>>,
    locks: BTreeMap<EntityId, LockState>,
    /// txn → entities it holds locks on, grouped by object.
    held: BTreeMap<SimTxnId, BTreeMap<usize, BTreeSet<EntityId>>>,
    waits_for: BTreeMap<SimTxnId, BTreeSet<SimTxnId>>,
    deadlocks_detected: u64,
    early_releases: u64,
}

impl PredicatewiseTwoPhaseLocking {
    /// Build for a workload with an explicit entity → object partition
    /// (`object_of[e]` = object index). Entities in the same conjunct of
    /// the database constraint share an object.
    pub fn for_workload_with_objects(workload: &Workload, object_of: Vec<usize>) -> Self {
        assert!(object_of.len() >= workload.spec.num_entities);
        let plan: Vec<BTreeMap<usize, usize>> = workload
            .txns
            .iter()
            .map(|t| {
                let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
                for op in &t.ops {
                    *counts.entry(object_of[op.entity.index()]).or_insert(0) += 1;
                }
                counts
            })
            .collect();
        PredicatewiseTwoPhaseLocking {
            object_of,
            remaining: plan.clone(),
            plan,
            locks: BTreeMap::new(),
            held: BTreeMap::new(),
            waits_for: BTreeMap::new(),
            deadlocks_detected: 0,
            early_releases: 0,
        }
    }

    /// Build with the loosest partition: every entity its own object (each
    /// conjunct mentions one entity).
    pub fn for_workload(workload: &Workload) -> Self {
        let object_of = (0..workload.spec.num_entities).collect();
        Self::for_workload_with_objects(workload, object_of)
    }

    /// Deadlocks resolved by aborting the requester.
    pub fn deadlocks_detected(&self) -> u64 {
        self.deadlocks_detected
    }

    /// Object lock groups released before commit (the whole point).
    pub fn early_releases(&self) -> u64 {
        self.early_releases
    }

    fn conflicts(&self, txn: SimTxnId, e: EntityId, write: bool) -> Vec<SimTxnId> {
        let ls = match self.locks.get(&e) {
            Some(ls) => ls,
            None => return vec![],
        };
        let mut out = Vec::new();
        if let Some(x) = ls.exclusive {
            if x != txn {
                out.push(x);
            }
        }
        if write {
            out.extend(ls.shared.iter().copied().filter(|&t| t != txn));
        }
        out
    }

    fn would_deadlock(&self, txn: SimTxnId, targets: &[SimTxnId]) -> bool {
        let mut stack: Vec<SimTxnId> = targets.to_vec();
        let mut seen = BTreeSet::new();
        while let Some(v) = stack.pop() {
            if v == txn {
                return true;
            }
            if seen.insert(v) {
                if let Some(next) = self.waits_for.get(&v) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    fn release_object(&mut self, txn: SimTxnId, object: usize) {
        if let Some(groups) = self.held.get_mut(&txn) {
            if let Some(entities) = groups.remove(&object) {
                for e in entities {
                    if let Some(ls) = self.locks.get_mut(&e) {
                        ls.shared.remove(&txn);
                        if ls.exclusive == Some(txn) {
                            ls.exclusive = None;
                        }
                    }
                }
                self.early_releases += 1;
            }
        }
    }

    fn release_all(&mut self, txn: SimTxnId) {
        if let Some(groups) = self.held.remove(&txn) {
            for (_, entities) in groups {
                for e in entities {
                    if let Some(ls) = self.locks.get_mut(&e) {
                        ls.shared.remove(&txn);
                        if ls.exclusive == Some(txn) {
                            ls.exclusive = None;
                        }
                    }
                }
            }
        }
        self.waits_for.remove(&txn);
    }

    fn request(&mut self, txn: SimTxnId, e: EntityId, write: bool) -> Decision {
        let conflicting = self.conflicts(txn, e, write);
        if !conflicting.is_empty() {
            if self.would_deadlock(txn, &conflicting) {
                self.deadlocks_detected += 1;
                return Decision::Abort;
            }
            self.waits_for
                .insert(txn, conflicting.into_iter().collect());
            return Decision::Block;
        }
        // Grant.
        let object = self.object_of[e.index()];
        let ls = self.locks.entry(e).or_default();
        if write {
            ls.exclusive = Some(txn);
            ls.shared.remove(&txn);
        } else {
            ls.shared.insert(txn);
        }
        self.held
            .entry(txn)
            .or_default()
            .entry(object)
            .or_default()
            .insert(e);
        self.waits_for.remove(&txn);
        // Account the access; release the object's locks when this was the
        // transaction's last access to it.
        let rem = self.remaining[txn.index()]
            .get_mut(&object)
            .expect("access within plan");
        *rem -= 1;
        if *rem == 0 {
            self.release_object(txn, object);
        }
        Decision::Proceed
    }
}

impl ConcurrencyControl for PredicatewiseTwoPhaseLocking {
    fn on_begin(&mut self, txn: SimTxnId, _now: SimTime) {
        // Restart: reset the remaining-access plan.
        self.remaining[txn.index()] = self.plan[txn.index()].clone();
    }

    fn on_read(&mut self, txn: SimTxnId, entity: EntityId, _now: SimTime) -> Decision {
        self.request(txn, entity, false)
    }

    fn on_write(&mut self, txn: SimTxnId, entity: EntityId, _now: SimTime) -> Decision {
        self.request(txn, entity, true)
    }

    fn on_commit(&mut self, txn: SimTxnId, _now: SimTime) -> Decision {
        self.release_all(txn);
        Decision::Proceed
    }

    fn on_abort(&mut self, txn: SimTxnId, _now: SimTime) {
        self.release_all(txn);
    }

    fn name(&self) -> &'static str {
        "pw-2pl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim::{Engine, EngineConfig, TraceKind, WorkloadSpec};

    fn workload(seed: u64) -> Workload {
        Workload::generate(WorkloadSpec {
            num_txns: 6,
            ops_per_txn: 5,
            num_entities: 6,
            read_pct: 50,
            think_time: 3,
            hot_fraction_pct: 40,
            hot_access_pct: 80,
            arrival_spread: 6,
            chain_length: 1,
            seed,
        })
    }

    fn trace_to_schedule(trace: &[ks_sim::TraceEvent]) -> ks_schedule::Schedule {
        ks_schedule::Schedule::from_ops(
            ks_sim::trace::committed_ops(trace)
                .iter()
                .map(|ev| match ev.kind {
                    TraceKind::Read(e) => ks_schedule::Op::read(ks_schedule::TxnId(ev.txn.0), e),
                    TraceKind::Write(e) => ks_schedule::Op::write(ks_schedule::TxnId(ev.txn.0), e),
                    _ => unreachable!(),
                })
                .collect(),
        )
    }

    /// The defining guarantee: committed traces are PWCSR under the object
    /// partition, across seeds.
    #[test]
    fn committed_traces_are_pwcsr() {
        for seed in 0..8 {
            let w = workload(seed);
            let cc = PredicatewiseTwoPhaseLocking::for_workload(&w);
            let (m, trace, _) = Engine::new(&w, cc, EngineConfig::default()).run();
            assert_eq!(m.committed, 6, "seed {seed}");
            let s = trace_to_schedule(&trace);
            let objects: Vec<ks_predicate::Object> = (0..w.spec.num_entities as u32)
                .map(|i| ks_predicate::Object::from_iter([ks_kernel::EntityId(i)]))
                .collect();
            assert!(
                ks_schedule::pwsr::is_pwcsr(&s, &objects),
                "seed {seed}: {s}"
            );
        }
    }

    /// And the gain: some committed traces are NOT fully conflict
    /// serializable — per-object orders disagree, exactly the concurrency
    /// PW2PL unlocks.
    #[test]
    fn commits_non_serializable_interleavings() {
        let mut found = false;
        for seed in 0..40 {
            let w = workload(seed);
            let cc = PredicatewiseTwoPhaseLocking::for_workload(&w);
            let (_, trace, _) = Engine::new(&w, cc, EngineConfig::default()).run();
            let s = trace_to_schedule(&trace);
            if !ks_schedule::csr::is_csr(&s) {
                found = true;
                break;
            }
        }
        assert!(found, "expected a non-CSR committed trace across seeds");
    }

    /// With a single all-covering object, PW2PL degenerates to strict 2PL
    /// (releases only at commit) and traces become CSR.
    #[test]
    fn single_object_degenerates_to_2pl() {
        for seed in 0..6 {
            let w = workload(seed);
            let object_of = vec![0usize; w.spec.num_entities];
            let cc = PredicatewiseTwoPhaseLocking::for_workload_with_objects(&w, object_of);
            let (m, trace, cc) = Engine::new(&w, cc, EngineConfig::default()).run();
            assert_eq!(m.committed, 6, "seed {seed}");
            // the single object is only released when the txn's accesses end
            // — which IS its commit point plan-wise, so traces are CSR.
            let s = trace_to_schedule(&trace);
            assert!(ks_schedule::csr::is_csr(&s), "seed {seed}: {s}");
            let _ = cc.early_releases();
        }
    }

    /// Early releases happen with singleton objects, shortening hold times.
    #[test]
    fn early_releases_counted() {
        let w = workload(1);
        let cc = PredicatewiseTwoPhaseLocking::for_workload(&w);
        let (_, _, cc) = Engine::new(&w, cc, EngineConfig::default()).run();
        assert!(cc.early_releases() > 0);
    }

    /// Deadlocks are detected and broken, as in plain 2PL.
    #[test]
    fn deadlock_detection_works() {
        let mut cc = PredicatewiseTwoPhaseLocking::for_workload_with_objects(
            &Workload::generate(WorkloadSpec {
                num_txns: 2,
                ops_per_txn: 4,
                num_entities: 2,
                chain_length: 1,
                ..WorkloadSpec::default()
            }),
            vec![0, 0], // one object: no early release interference
        );
        use ks_kernel::EntityId;
        cc.on_begin(SimTxnId(0), 0);
        cc.on_begin(SimTxnId(1), 0);
        assert_eq!(cc.on_write(SimTxnId(0), EntityId(0), 0), Decision::Proceed);
        assert_eq!(cc.on_write(SimTxnId(1), EntityId(1), 0), Decision::Proceed);
        assert_eq!(cc.on_write(SimTxnId(0), EntityId(1), 1), Decision::Block);
        assert_eq!(cc.on_write(SimTxnId(1), EntityId(0), 1), Decision::Abort);
        assert_eq!(cc.deadlocks_detected(), 1);
    }
}
