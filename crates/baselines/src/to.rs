//! Basic timestamp ordering.
//!
//! Each transaction receives a timestamp at (re)start. A read of `e` aborts
//! if a younger transaction already wrote `e`; a write aborts if a younger
//! transaction already read or wrote `e`. No operation ever waits — the
//! whole burden falls on aborts, which is why the paper rejects the scheme
//! for long transactions ("alternatives to two-phase locking based on
//! timestamps lead … to aborts of transactions").

use ks_kernel::EntityId;
use ks_sim::{ConcurrencyControl, Decision, SimTime, SimTxnId};
use std::collections::BTreeMap;

#[derive(Debug, Default, Clone, Copy)]
struct Stamps {
    read_ts: u64,
    write_ts: u64,
}

/// Basic T/O scheduler.
#[derive(Debug, Default)]
pub struct TimestampOrdering {
    next_ts: u64,
    ts_of: BTreeMap<SimTxnId, u64>,
    stamps: BTreeMap<EntityId, Stamps>,
}

impl TimestampOrdering {
    /// New scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn ts(&mut self, txn: SimTxnId) -> u64 {
        *self.ts_of.get(&txn).expect("on_begin assigns a timestamp")
    }

    /// Current timestamp of a transaction (for tests).
    pub fn timestamp_of(&self, txn: SimTxnId) -> Option<u64> {
        self.ts_of.get(&txn).copied()
    }
}

impl ConcurrencyControl for TimestampOrdering {
    fn on_begin(&mut self, txn: SimTxnId, _now: SimTime) {
        self.next_ts += 1;
        self.ts_of.insert(txn, self.next_ts);
    }

    fn on_read(&mut self, txn: SimTxnId, entity: EntityId, _now: SimTime) -> Decision {
        let ts = self.ts(txn);
        let st = self.stamps.entry(entity).or_default();
        if ts < st.write_ts {
            return Decision::Abort;
        }
        st.read_ts = st.read_ts.max(ts);
        Decision::Proceed
    }

    fn on_write(&mut self, txn: SimTxnId, entity: EntityId, _now: SimTime) -> Decision {
        let ts = self.ts(txn);
        let st = self.stamps.entry(entity).or_default();
        if ts < st.read_ts || ts < st.write_ts {
            return Decision::Abort;
        }
        st.write_ts = ts;
        Decision::Proceed
    }

    fn on_commit(&mut self, _txn: SimTxnId, _now: SimTime) -> Decision {
        Decision::Proceed
    }

    fn on_abort(&mut self, txn: SimTxnId, _now: SimTime) {
        // The restart will receive a fresh timestamp via on_begin.
        self.ts_of.remove(&txn);
    }

    fn name(&self) -> &'static str {
        "timestamp-ordering"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn in_order_operations_proceed() {
        let mut s = TimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0);
        s.on_begin(SimTxnId(1), 0);
        assert_eq!(s.on_read(SimTxnId(0), e(0), 1), Decision::Proceed);
        assert_eq!(s.on_write(SimTxnId(1), e(0), 2), Decision::Proceed);
    }

    #[test]
    fn stale_read_aborts() {
        let mut s = TimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0); // ts 1
        s.on_begin(SimTxnId(1), 0); // ts 2
        assert_eq!(s.on_write(SimTxnId(1), e(0), 1), Decision::Proceed);
        // Older transaction reading a younger write: abort.
        assert_eq!(s.on_read(SimTxnId(0), e(0), 2), Decision::Abort);
    }

    #[test]
    fn stale_write_aborts_on_later_read() {
        let mut s = TimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0); // ts 1
        s.on_begin(SimTxnId(1), 0); // ts 2
        assert_eq!(s.on_read(SimTxnId(1), e(0), 1), Decision::Proceed);
        assert_eq!(s.on_write(SimTxnId(0), e(0), 2), Decision::Abort);
    }

    #[test]
    fn restart_gets_fresh_timestamp() {
        let mut s = TimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0);
        let ts1 = s.timestamp_of(SimTxnId(0)).unwrap();
        s.on_abort(SimTxnId(0), 1);
        assert!(s.timestamp_of(SimTxnId(0)).is_none());
        s.on_begin(SimTxnId(0), 2);
        let ts2 = s.timestamp_of(SimTxnId(0)).unwrap();
        assert!(ts2 > ts1);
    }

    #[test]
    fn never_blocks() {
        let mut s = TimestampOrdering::new();
        for i in 0..10 {
            s.on_begin(SimTxnId(i), 0);
        }
        for i in 0..10 {
            let d1 = s.on_read(SimTxnId(i), e(0), 1);
            let d2 = s.on_write(SimTxnId(i), e(1), 1);
            assert_ne!(d1, Decision::Block);
            assert_ne!(d2, Decision::Block);
        }
    }
}
