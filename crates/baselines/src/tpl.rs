//! Strict two-phase locking with waits-for deadlock detection.
//!
//! Locks are acquired before each operation and held to commit/abort
//! (strictness avoids cascading aborts). A read takes a shared lock, a
//! write an exclusive one, with upgrade when the requester is the only
//! shared holder. When a request must wait, the requester's waits-for edges
//! are recorded; if they close a cycle, the *requester* aborts (youngest-
//! style victim choice keeps the detector simple and deterministic).

use ks_kernel::EntityId;
use ks_sim::{ConcurrencyControl, Decision, SimTime, SimTxnId};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Default, Clone)]
struct LockState {
    shared: BTreeSet<SimTxnId>,
    exclusive: Option<SimTxnId>,
}

/// Strict 2PL scheduler.
#[derive(Debug, Default)]
pub struct TwoPhaseLocking {
    locks: BTreeMap<EntityId, LockState>,
    /// txn → entities it holds locks on (for release).
    held: BTreeMap<SimTxnId, BTreeSet<EntityId>>,
    /// waits-for edges of currently blocked transactions.
    waits_for: BTreeMap<SimTxnId, BTreeSet<SimTxnId>>,
    /// Counters for reporting.
    deadlocks_detected: u64,
}

impl TwoPhaseLocking {
    /// New scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of deadlocks the detector resolved.
    pub fn deadlocks_detected(&self) -> u64 {
        self.deadlocks_detected
    }

    fn release_all(&mut self, txn: SimTxnId) {
        if let Some(entities) = self.held.remove(&txn) {
            for e in entities {
                if let Some(ls) = self.locks.get_mut(&e) {
                    ls.shared.remove(&txn);
                    if ls.exclusive == Some(txn) {
                        ls.exclusive = None;
                    }
                }
            }
        }
        self.waits_for.remove(&txn);
    }

    /// Would granting `txn` a lock on `e` in `write` mode succeed? If not,
    /// returns the conflicting holders.
    fn conflicts(&self, txn: SimTxnId, e: EntityId, write: bool) -> Vec<SimTxnId> {
        let ls = match self.locks.get(&e) {
            Some(ls) => ls,
            None => return vec![],
        };
        let mut out = Vec::new();
        if let Some(x) = ls.exclusive {
            if x != txn {
                out.push(x);
            }
        }
        if write {
            out.extend(ls.shared.iter().copied().filter(|&t| t != txn));
        }
        out
    }

    fn grant(&mut self, txn: SimTxnId, e: EntityId, write: bool) {
        let ls = self.locks.entry(e).or_default();
        if write {
            ls.exclusive = Some(txn);
            ls.shared.remove(&txn); // upgrade consumes the shared lock
        } else {
            ls.shared.insert(txn);
        }
        self.held.entry(txn).or_default().insert(e);
        self.waits_for.remove(&txn);
    }

    /// Does adding `txn → targets` close a cycle in waits-for?
    fn would_deadlock(&self, txn: SimTxnId, targets: &[SimTxnId]) -> bool {
        // DFS from each target through existing edges looking for `txn`.
        let mut stack: Vec<SimTxnId> = targets.to_vec();
        let mut seen = BTreeSet::new();
        while let Some(v) = stack.pop() {
            if v == txn {
                return true;
            }
            if seen.insert(v) {
                if let Some(next) = self.waits_for.get(&v) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    fn request(&mut self, txn: SimTxnId, e: EntityId, write: bool) -> Decision {
        let conflicting = self.conflicts(txn, e, write);
        if conflicting.is_empty() {
            self.grant(txn, e, write);
            return Decision::Proceed;
        }
        if self.would_deadlock(txn, &conflicting) {
            self.deadlocks_detected += 1;
            return Decision::Abort;
        }
        self.waits_for
            .insert(txn, conflicting.into_iter().collect());
        Decision::Block
    }
}

impl ConcurrencyControl for TwoPhaseLocking {
    fn on_begin(&mut self, _txn: SimTxnId, _now: SimTime) {}

    fn on_read(&mut self, txn: SimTxnId, entity: EntityId, _now: SimTime) -> Decision {
        self.request(txn, entity, false)
    }

    fn on_write(&mut self, txn: SimTxnId, entity: EntityId, _now: SimTime) -> Decision {
        self.request(txn, entity, true)
    }

    fn on_commit(&mut self, txn: SimTxnId, _now: SimTime) -> Decision {
        self.release_all(txn);
        Decision::Proceed
    }

    fn on_abort(&mut self, txn: SimTxnId, _now: SimTime) {
        self.release_all(txn);
    }

    fn name(&self) -> &'static str {
        "strict-2pl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_sim::{Engine, EngineConfig, TraceKind, Workload, WorkloadSpec};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn shared_locks_compatible() {
        let mut s = TwoPhaseLocking::new();
        assert_eq!(s.on_read(SimTxnId(0), e(0), 0), Decision::Proceed);
        assert_eq!(s.on_read(SimTxnId(1), e(0), 0), Decision::Proceed);
        // writer must wait behind two readers
        assert_eq!(s.on_write(SimTxnId(2), e(0), 1), Decision::Block);
    }

    #[test]
    fn exclusive_blocks_everything() {
        let mut s = TwoPhaseLocking::new();
        assert_eq!(s.on_write(SimTxnId(0), e(0), 0), Decision::Proceed);
        assert_eq!(s.on_read(SimTxnId(1), e(0), 0), Decision::Block);
        assert_eq!(s.on_write(SimTxnId(1), e(0), 0), Decision::Block);
        // same transaction re-reads its own exclusive lock fine
        assert_eq!(s.on_read(SimTxnId(0), e(0), 0), Decision::Proceed);
    }

    #[test]
    fn upgrade_when_sole_reader() {
        let mut s = TwoPhaseLocking::new();
        assert_eq!(s.on_read(SimTxnId(0), e(0), 0), Decision::Proceed);
        assert_eq!(s.on_write(SimTxnId(0), e(0), 1), Decision::Proceed);
        assert_eq!(s.on_read(SimTxnId(1), e(0), 2), Decision::Block);
    }

    #[test]
    fn locks_released_on_commit() {
        let mut s = TwoPhaseLocking::new();
        assert_eq!(s.on_write(SimTxnId(0), e(0), 0), Decision::Proceed);
        assert_eq!(s.on_write(SimTxnId(1), e(0), 1), Decision::Block);
        assert_eq!(s.on_commit(SimTxnId(0), 2), Decision::Proceed);
        assert_eq!(s.on_write(SimTxnId(1), e(0), 3), Decision::Proceed);
    }

    #[test]
    fn deadlock_detected_and_victim_aborted() {
        let mut s = TwoPhaseLocking::new();
        assert_eq!(s.on_write(SimTxnId(0), e(0), 0), Decision::Proceed);
        assert_eq!(s.on_write(SimTxnId(1), e(1), 0), Decision::Proceed);
        // 0 waits for 1
        assert_eq!(s.on_write(SimTxnId(0), e(1), 1), Decision::Block);
        // 1 requesting e0 closes the cycle → abort
        assert_eq!(s.on_write(SimTxnId(1), e(0), 1), Decision::Abort);
        assert_eq!(s.deadlocks_detected(), 1);
        // After the victim releases, 0 can proceed.
        s.on_abort(SimTxnId(1), 2);
        assert_eq!(s.on_write(SimTxnId(0), e(1), 3), Decision::Proceed);
    }

    /// The soundness property: every committed interleaving under strict
    /// 2PL is conflict serializable.
    #[test]
    fn committed_traces_are_conflict_serializable() {
        for seed in 0..6u64 {
            let w = Workload::generate(WorkloadSpec {
                num_txns: 6,
                ops_per_txn: 5,
                num_entities: 6,
                read_pct: 50,
                think_time: 3,
                hot_access_pct: 80,
                seed,
                ..WorkloadSpec::default()
            });
            let (m, trace, _) =
                Engine::new(&w, TwoPhaseLocking::new(), EngineConfig::default()).run();
            assert_eq!(m.committed, 6, "seed {seed}");
            let ops = ks_sim::trace::committed_ops(&trace);
            let schedule = ks_schedule::Schedule::from_ops(
                ops.iter()
                    .map(|ev| match ev.kind {
                        TraceKind::Read(en) => {
                            ks_schedule::Op::read(ks_schedule::TxnId(ev.txn.0), en)
                        }
                        TraceKind::Write(en) => {
                            ks_schedule::Op::write(ks_schedule::TxnId(ev.txn.0), en)
                        }
                        _ => unreachable!(),
                    })
                    .collect(),
            );
            assert!(
                ks_schedule::csr::is_csr(&schedule),
                "seed {seed}: {schedule}"
            );
        }
    }
}
