//! Multiversion timestamp ordering.
//!
//! Versions carry the writer's timestamp and the largest timestamp of any
//! reader of that version. Reads never wait and never abort: a transaction
//! with timestamp `ts` reads the version with the largest write timestamp
//! `≤ ts`. A write with timestamp `ts` aborts iff the version it would
//! supersede has already been read by a transaction younger than `ts`
//! (the interval is consumed). This is the strongest classical witness that
//! versions help — and still aborts long writers, which is the gap the
//! Korth–Speegle protocol closes with predicate-aware validation.

use ks_kernel::EntityId;
use ks_sim::{ConcurrencyControl, Decision, SimTime, SimTxnId};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct MvtoVersion {
    write_ts: u64,
    max_read_ts: u64,
    author: SimTxnId,
}

/// MVTO scheduler (recoverable: commit waits for the authors of the
/// versions a transaction read — reading uncommitted versions is allowed,
/// but committing against a later-aborted author is not).
#[derive(Debug, Default)]
pub struct MultiversionTimestampOrdering {
    next_ts: u64,
    ts_of: BTreeMap<SimTxnId, u64>,
    /// Per entity: versions sorted by write_ts (index 0 = initial, ts 0).
    versions: BTreeMap<EntityId, Vec<MvtoVersion>>,
    /// reader → authors of versions it read (commit dependencies).
    read_deps: BTreeMap<SimTxnId, std::collections::BTreeSet<SimTxnId>>,
    /// Committed transactions.
    committed: std::collections::BTreeSet<SimTxnId>,
    /// Readers whose source author aborted: they must abort too.
    doomed: std::collections::BTreeSet<SimTxnId>,
}

impl MultiversionTimestampOrdering {
    /// New scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn ts(&self, txn: SimTxnId) -> u64 {
        *self.ts_of.get(&txn).expect("on_begin assigns a timestamp")
    }

    fn chain(&mut self, entity: EntityId) -> &mut Vec<MvtoVersion> {
        self.versions.entry(entity).or_insert_with(|| {
            vec![MvtoVersion {
                write_ts: 0,
                max_read_ts: 0,
                author: SimTxnId(u32::MAX), // the initial pseudo-writer
            }]
        })
    }

    /// Number of versions currently stored for an entity (tests/metrics).
    pub fn version_count(&self, entity: EntityId) -> usize {
        self.versions.get(&entity).map_or(1, |v| v.len())
    }
}

impl ConcurrencyControl for MultiversionTimestampOrdering {
    fn on_begin(&mut self, txn: SimTxnId, _now: SimTime) {
        self.next_ts += 1;
        self.ts_of.insert(txn, self.next_ts);
    }

    fn on_read(&mut self, txn: SimTxnId, entity: EntityId, _now: SimTime) -> Decision {
        if self.doomed.contains(&txn) {
            return Decision::Abort;
        }
        let ts = self.ts(txn);
        let chain = self.chain(entity);
        // version with the largest write_ts ≤ ts
        let v = chain
            .iter_mut()
            .filter(|v| v.write_ts <= ts)
            .max_by_key(|v| v.write_ts)
            .expect("initial version has ts 0");
        v.max_read_ts = v.max_read_ts.max(ts);
        let author = v.author;
        if author != SimTxnId(u32::MAX) && author != txn {
            self.read_deps.entry(txn).or_default().insert(author);
        }
        Decision::Proceed
    }

    fn on_write(&mut self, txn: SimTxnId, entity: EntityId, _now: SimTime) -> Decision {
        if self.doomed.contains(&txn) {
            return Decision::Abort;
        }
        let ts = self.ts(txn);
        let chain = self.chain(entity);
        let predecessor = chain
            .iter()
            .filter(|v| v.write_ts <= ts)
            .max_by_key(|v| v.write_ts)
            .expect("initial version");
        if predecessor.max_read_ts > ts {
            // A younger transaction already read the interval — and in the
            // rewrite case (predecessor is our own version) it read a value
            // we are about to change. Either way: abort.
            return Decision::Abort;
        }
        if predecessor.write_ts == ts {
            // Re-write by the same transaction: replace in place (no
            // younger reader consumed it, per the check above).
            return Decision::Proceed;
        }
        let pos = chain
            .iter()
            .position(|v| v.write_ts > ts)
            .unwrap_or(chain.len());
        chain.insert(
            pos,
            MvtoVersion {
                write_ts: ts,
                max_read_ts: ts,
                author: txn,
            },
        );
        Decision::Proceed
    }

    fn on_commit(&mut self, txn: SimTxnId, _now: SimTime) -> Decision {
        if self.doomed.contains(&txn) {
            return Decision::Abort;
        }
        // Recoverability: wait for every author we read from. Dependencies
        // follow timestamp order, so the waits cannot cycle.
        if let Some(deps) = self.read_deps.get(&txn) {
            if deps.iter().any(|a| !self.committed.contains(a)) {
                return Decision::Block;
            }
        }
        self.committed.insert(txn);
        Decision::Proceed
    }

    fn on_abort(&mut self, txn: SimTxnId, _now: SimTime) {
        // Discard the transaction's versions; restart gets a fresh stamp.
        for chain in self.versions.values_mut() {
            chain.retain(|v| v.author != txn);
        }
        self.ts_of.remove(&txn);
        self.doomed.remove(&txn);
        self.read_deps.remove(&txn);
        // Cascade: anyone who read our (now discarded) versions is doomed.
        let readers: Vec<SimTxnId> = self
            .read_deps
            .iter()
            .filter(|(_, deps)| deps.contains(&txn))
            .map(|(&r, _)| r)
            .collect();
        for r in readers {
            if !self.committed.contains(&r) {
                self.doomed.insert(r);
            }
        }
    }

    fn name(&self) -> &'static str {
        "mvto"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn reads_never_block_or_abort() {
        let mut s = MultiversionTimestampOrdering::new();
        for i in 0..5 {
            s.on_begin(SimTxnId(i), 0);
        }
        // Interleave writes and stale reads freely: reads always proceed.
        assert_eq!(s.on_write(SimTxnId(4), e(0), 0), Decision::Proceed);
        for i in 0..5 {
            assert_eq!(s.on_read(SimTxnId(i), e(0), 1), Decision::Proceed);
        }
    }

    #[test]
    fn old_reader_sees_old_version() {
        let mut s = MultiversionTimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0); // ts 1
        s.on_begin(SimTxnId(1), 0); // ts 2
        assert_eq!(s.on_write(SimTxnId(1), e(0), 1), Decision::Proceed);
        // t0 reads the initial version (write_ts 0), not t1's.
        assert_eq!(s.on_read(SimTxnId(0), e(0), 2), Decision::Proceed);
        assert_eq!(s.version_count(e(0)), 2);
    }

    #[test]
    fn write_into_consumed_interval_aborts() {
        let mut s = MultiversionTimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0); // ts 1 (the long writer)
        s.on_begin(SimTxnId(1), 0); // ts 2
                                    // The younger transaction reads the initial version.
        assert_eq!(s.on_read(SimTxnId(1), e(0), 1), Decision::Proceed);
        // The older one now tries to write "into the past": abort.
        assert_eq!(s.on_write(SimTxnId(0), e(0), 2), Decision::Abort);
    }

    #[test]
    fn independent_intervals_coexist() {
        let mut s = MultiversionTimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0); // ts 1
        s.on_begin(SimTxnId(1), 0); // ts 2
        assert_eq!(s.on_write(SimTxnId(0), e(0), 1), Decision::Proceed);
        assert_eq!(s.on_write(SimTxnId(1), e(0), 2), Decision::Proceed);
        assert_eq!(s.version_count(e(0)), 3);
    }

    #[test]
    fn abort_discards_versions() {
        let mut s = MultiversionTimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0);
        assert_eq!(s.on_write(SimTxnId(0), e(0), 1), Decision::Proceed);
        assert_eq!(s.version_count(e(0)), 2);
        s.on_abort(SimTxnId(0), 2);
        assert_eq!(s.version_count(e(0)), 1);
    }

    #[test]
    fn rewrite_by_same_txn_in_place() {
        let mut s = MultiversionTimestampOrdering::new();
        s.on_begin(SimTxnId(0), 0);
        assert_eq!(s.on_write(SimTxnId(0), e(0), 1), Decision::Proceed);
        assert_eq!(s.on_write(SimTxnId(0), e(0), 2), Decision::Proceed);
        assert_eq!(s.version_count(e(0)), 2);
    }
}
