//! Dump-on-violation acceptance test: deliberately mis-assign a version
//! behind the protocol's back, watch the model check fail, and assert the
//! flight-recorder dump names the offending transaction, the entity, and
//! the causal decision event.

use ks_core::Specification;
use ks_kernel::{Domain, EntityId, Schema, UniqueState};
use ks_obs::{from_jsonl, ObsKind, Recorder};
use ks_predicate::{parse_cnf, Cnf, Strategy};
use ks_protocol::{CommitOutcome, ProtocolManager, ValidationOutcome};
use ks_server::{verify_certifiers_with_dump, Client, ServerConfig, TxnBuilder, TxnService};

fn one_entity_setup() -> (Schema, UniqueState) {
    let schema = Schema::uniform(["x"], Domain::Range { min: 0, max: 99 });
    let initial = UniqueState::new(&schema, vec![5]).unwrap();
    (schema, initial)
}

#[test]
fn forced_misassignment_dump_names_txn_entity_and_decision() {
    let (schema, initial) = one_entity_setup();
    let mut pm = ProtocolManager::new(schema.clone(), &initial, Specification::trivial());
    let recorder = Recorder::new(1024);
    pm.attach_obs(recorder.sink(0));
    let x = EntityId(0);

    // A writer commits x = 7, creating version 1.
    let writer_spec = Specification::new(parse_cnf(&schema, "x >= 0").unwrap(), Cnf::truth());
    let writer = pm.define(pm.root(), writer_spec, &[], &[]).unwrap();
    assert_eq!(
        pm.validate(writer, Strategy::Backtracking).unwrap(),
        ValidationOutcome::Validated
    );
    pm.write(writer, x, 7).unwrap();
    assert_eq!(pm.commit(writer).unwrap(), CommitOutcome::Committed);

    // The victim requires x = 5; validation correctly assigns version 0.
    let victim_spec = Specification::new(parse_cnf(&schema, "x = 5").unwrap(), Cnf::truth());
    let victim = pm.define(pm.root(), victim_spec, &[], &[]).unwrap();
    assert_eq!(
        pm.validate(victim, Strategy::Backtracking).unwrap(),
        ValidationOutcome::Validated
    );

    // Fault injection: overwrite the assignment with version 1 (x = 7),
    // which violates the victim's input condition. The hook records
    // `VersionAssigned { forced: true }` — the causal decision.
    pm.force_assign(victim, x, 1).unwrap();
    assert_eq!(pm.commit(victim).unwrap(), CommitOutcome::Committed);

    let certs: Vec<Box<dyn ks_protocol::Certifier>> = vec![Box::new(pm)];
    let (report, dump) = verify_certifiers_with_dump(&certs, &recorder);
    assert!(!report.is_correct(), "the forced assignment must be caught");
    let victim_node = victim.0 as u32;
    assert!(
        report.offenders.contains(&(0, victim_node)),
        "offenders must name the victim: {:?}",
        report.offenders
    );

    let dump = dump.expect("violations must produce a dump");
    // The JSONL stream is machine-readable and contains the forced event.
    let events = from_jsonl(&dump.jsonl).expect("dump must round-trip");
    assert!(events.iter().any(|e| e.txn == victim_node
        && matches!(
            e.kind,
            ObsKind::VersionAssigned {
                entity: 0,
                version: 1,
                forced: true
            }
        )));
    // The stitched timeline of the offender pins the causal decision.
    let timeline = dump
        .timelines
        .iter()
        .find(|t| t.shard == 0 && t.txn == victim_node)
        .expect("offender timeline");
    let cause = timeline.causal_decision().expect("causal decision");
    assert!(matches!(
        cause.kind,
        ObsKind::VersionAssigned {
            forced: true,
            entity: 0,
            version: 1
        }
    ));
    // The human summary names txn, entity, and decision in one place.
    assert!(
        dump.summary.contains(&format!("txn {victim_node}")),
        "{}",
        dump.summary
    );
    assert!(dump.summary.contains("\"entity\":0"), "{}", dump.summary);
    assert!(
        dump.summary.contains("\"kind\":\"version_assigned\"")
            && dump.summary.contains("\"forced\":true"),
        "{}",
        dump.summary
    );
}

#[test]
fn clean_runs_produce_no_dump() {
    let (schema, initial) = one_entity_setup();
    let mut pm = ProtocolManager::new(schema.clone(), &initial, Specification::trivial());
    let recorder = Recorder::new(1024);
    pm.attach_obs(recorder.sink(0));
    let spec = Specification::new(parse_cnf(&schema, "x >= 0").unwrap(), Cnf::truth());
    let t = pm.define(pm.root(), spec, &[], &[]).unwrap();
    pm.validate(t, Strategy::Backtracking).unwrap();
    pm.write(t, EntityId(0), 9).unwrap();
    pm.commit(t).unwrap();
    let certs: Vec<Box<dyn ks_protocol::Certifier>> = vec![Box::new(pm)];
    let (report, dump) = verify_certifiers_with_dump(&certs, &recorder);
    assert!(report.is_correct(), "{report:?}");
    assert!(dump.is_none());
}

/// End-to-end through the service: a recorder wired into `ServerConfig`
/// captures the full request lifecycle (enqueue → execute → reply) and
/// the workers' protocol decisions, shard-stamped.
#[test]
fn service_with_recorder_captures_request_lifecycle() {
    let (schema, initial) = one_entity_setup();
    let recorder = Recorder::new(4096);
    let svc = TxnService::new(
        schema.clone(),
        &initial,
        ServerConfig {
            shards: 1,
            recorder: Some(recorder.clone()),
            ..ServerConfig::default()
        },
    );
    let session = svc.session().unwrap();
    let spec = Specification::new(parse_cnf(&schema, "x >= 0").unwrap(), Cnf::truth());
    let txn = session.open(TxnBuilder::new(spec)).unwrap();
    session.validate(txn).unwrap();
    session.read(txn, EntityId(0)).unwrap();
    session.write(txn, EntityId(0), 9).unwrap();
    session.commit(txn).unwrap();
    drop(session);
    let managers = svc.shutdown();

    let events = recorder.drain();
    assert!(recorder.dropped() == 0, "tiny run must not overflow rings");
    let has = |pred: &dyn Fn(&ks_obs::ObsEvent) -> bool| events.iter().any(pred);
    assert!(has(&|e| matches!(e.kind, ObsKind::SessionAdmit)));
    assert!(has(&|e| matches!(e.kind, ObsKind::Enqueue { .. })));
    assert!(has(&|e| matches!(
        e.kind,
        ObsKind::Execute {
            op: ks_obs::OpCode::Commit,
            ..
        }
    )));
    assert!(has(&|e| matches!(e.kind, ObsKind::Reply { ok: true, .. })));
    assert!(has(&|e| matches!(e.kind, ObsKind::TxnValidated)));
    assert!(has(&|e| matches!(e.kind, ObsKind::TxnCommitted)));
    assert!(has(&|e| matches!(
        e.kind,
        ObsKind::VersionAssigned { forced: false, .. }
    )));
    // Worker events are stamped with their shard.
    assert!(events
        .iter()
        .filter(|e| matches!(e.kind, ObsKind::Execute { .. }))
        .all(|e| e.shard == 0));

    let (report, dump) = verify_certifiers_with_dump(&managers, &recorder);
    assert!(report.is_correct(), "{report:?}");
    assert!(dump.is_none());
}
