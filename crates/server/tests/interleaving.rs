//! Property test: whatever the thread interleaving, every execution the
//! service lets through passes the paper's model checker.
//!
//! Each case spins up a fresh [`TxnService`] with a random shard count and
//! assignment strategy, then drives it with several concurrent client
//! threads running randomized transaction mixes (reads, writes, explicit
//! aborts, re-eval acknowledgements). The OS scheduler supplies the
//! interleaving; proptest supplies the workload. After shutdown, every
//! shard manager is drained through `ks_protocol::extract` and checked
//! with `ks_core::check` — the service must never have admitted an
//! incorrect execution, no matter how the threads raced.

use ks_core::Specification;
use ks_kernel::{Domain, EntityId, Schema, UniqueState};
use ks_predicate::{Atom, Clause, CmpOp, Cnf, Strategy};
use ks_server::{
    verify_certifiers, Client, ServerConfig, ServerError, Session, TxnBuilder, TxnService,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENTITIES: usize = 12;
const RETRY_BUDGET: u32 = 5_000;

fn tautology_spec(entities: &[EntityId]) -> Specification {
    Specification::new(
        Cnf::new(
            entities
                .iter()
                .map(|&e| Clause::unit(Atom::cmp_const(e, CmpOp::Ge, i64::MIN / 2)))
                .collect(),
        ),
        Cnf::truth(),
    )
}

/// One client's randomized closed loop; returns its commit count.
fn run_client(svc: &TxnService, client: usize, shards: usize, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed ^ (client as u64).wrapping_mul(0x9E37_79B9));
    let session: Session = svc.session().expect("under the session cap");
    let home = client % shards;
    let per_shard = ENTITIES / shards;
    let mut committed = 0;
    for _ in 0..rng.random_range(1..=4usize) {
        // Random access set on the home shard, random op mix.
        let count = rng.random_range(1..=per_shard.min(4));
        let mut entities: Vec<EntityId> = (0..count)
            .map(|_| EntityId((rng.random_range(0..per_shard) * shards + home) as u32))
            .collect();
        entities.sort_unstable_by_key(|e| e.index());
        entities.dedup();
        let spec = tautology_spec(&entities);
        let mut budget = RETRY_BUDGET;
        macro_rules! retry {
            ($call:expr) => {
                loop {
                    match $call {
                        Err(ServerError::Busy) | Err(ServerError::Backpressure) => {
                            if budget == 0 {
                                break Err(ServerError::Busy);
                            }
                            budget -= 1;
                            std::thread::yield_now();
                        }
                        other => break other,
                    }
                }
            };
        }
        let txn = match retry!(session.open(TxnBuilder::new(spec.clone()))) {
            Ok(t) => t,
            Err(_) => continue,
        };
        if retry!(session.validate(txn)).is_err() {
            let _ = session.abort(txn);
            continue;
        }
        let mut doomed = false;
        for _ in 0..rng.random_range(1..=5usize) {
            let e = entities[rng.random_range(0..entities.len())];
            let outcome = if rng.random_range(0..100) < 50 {
                retry!(session.write(txn, e, rng.random_range(0..1_000i64)))
            } else {
                retry!(session.read(txn, e).map(|_| ()))
            };
            if outcome.is_err() {
                doomed = true;
                break;
            }
        }
        // Sometimes walk away from a healthy transaction.
        if doomed || rng.random_range(0..100) < 15 {
            let _ = session.abort(txn);
            continue;
        }
        match retry!(session.commit(txn)) {
            Ok(()) => committed += 1,
            Err(_) => {
                let _ = session.abort(txn);
            }
        }
    }
    committed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero model-correctness violations under randomized interleavings,
    /// shard counts, and assignment strategies.
    #[test]
    fn extracted_executions_always_check(
        seed in any::<u64>(),
        shards in 1usize..=4,
        clients in 2usize..=6,
        greedy in proptest::bool::ANY,
    ) {
        let schema = Schema::uniform(
            (0..ENTITIES).map(|i| format!("d{i}")),
            Domain::Range { min: i64::MIN / 2, max: i64::MAX / 2 },
        );
        let initial = UniqueState::constant(ENTITIES, 0);
        let svc = TxnService::new(
            schema,
            &initial,
            ServerConfig {
                shards,
                max_sessions: clients,
                strategy: if greedy { Strategy::GreedyLatest } else { Strategy::Backtracking },
                // Generous on purpose: `Timeout` is the one error whose
                // outcome is ambiguous (the shard worker may still apply
                // the op), and the committed-count equality below needs
                // every outcome unambiguous. The default 10s is enough on
                // an idle box but not under a loaded CI running 24 cases
                // of this test in parallel.
                request_timeout: std::time::Duration::from_secs(120),
                ..ServerConfig::default()
            },
        );
        let shards = svc.shard_map().shards();
        let committed: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let svc = &svc;
                    scope.spawn(move || run_client(svc, c, shards, seed))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let snap = svc.metrics();
        prop_assert_eq!(committed, snap.committed);
        let stats = svc.protocol_stats().expect("stats before shutdown");
        let cascade_aborts: u64 = stats.iter().map(|s| s.cascade_aborts).sum();
        let report = verify_certifiers(&svc.shutdown());
        prop_assert!(report.is_correct(), "case {seed}: {:?}", report.violations);
        // A client-counted commit can later be undone: a commit "is only
        // relative to the parent", so when the author of a consumed
        // in-flight version aborts (clients walk away 15% of the time),
        // the committed reader is cascade-undone and leaves the extracted
        // execution. Extraction may therefore trail the client count, but
        // only by transactions the cascade machinery actually aborted.
        prop_assert!(
            report.committed as u64 <= committed
                && committed - report.committed as u64 <= cascade_aborts,
            "extracted {} + cascades {} cannot explain client count {}",
            report.committed,
            cascade_aborts,
            committed
        );
    }
}
