//! End-to-end durability: commits logged through the WAL survive a
//! restart — graceful or power-cut — and recovery reports what it
//! replayed.
//!
//! These tests run two service incarnations over one shared
//! [`ks_wal::MemStore`] (the same simulated media the dst harness
//! uses), so "restart" really is a second `TxnService::new` replaying
//! whatever bytes the first incarnation made durable.

use ks_core::Specification;
use ks_kernel::{Domain, EntityId, Schema, UniqueState};
use ks_predicate::{Atom, Clause, CmpOp, Cnf};
use ks_server::{Client, Durability, ServerConfig, TxnBuilder, TxnService, WalOptions};
use ks_wal::{MemStore, SegmentStore};
use std::sync::Arc;
use std::time::Duration;

const ENTITIES: usize = 8;

fn schema() -> Schema {
    Schema::uniform(
        (0..ENTITIES).map(|i| format!("d{i}")),
        Domain::Range {
            min: -1_000_000,
            max: 1_000_000,
        },
    )
}

fn spec(entities: &[EntityId]) -> Specification {
    Specification::new(
        Cnf::new(
            entities
                .iter()
                .map(|&e| Clause::unit(Atom::cmp_const(e, CmpOp::Ge, -1_000_000)))
                .collect(),
        ),
        Cnf::truth(),
    )
}

fn wal_config(store: &MemStore, group_commit: bool, sync_on_commit: bool) -> ServerConfig {
    let media = store.clone();
    let mut opts = WalOptions::new(Arc::new(move || {
        Box::new(media.clone()) as Box<dyn SegmentStore>
    }));
    opts.group_commit = group_commit;
    opts.group_window = Duration::from_micros(200);
    opts.sync_on_commit = sync_on_commit;
    ServerConfig::builder()
        .shards(2)
        .durability(Durability::Wal(opts))
        .build()
        .unwrap()
}

/// Commit one transaction writing `value` to `entity`; panics on any error.
fn commit_write(svc: &TxnService, entity: EntityId, value: i64) {
    let session = svc.session().unwrap();
    let txn = session.open(TxnBuilder::new(spec(&[entity]))).unwrap();
    session.validate(txn).unwrap();
    session.write(txn, entity, value).unwrap();
    session.commit(txn).unwrap();
}

fn read_one(svc: &TxnService, entity: EntityId) -> i64 {
    let session = svc.session().unwrap();
    let txn = session.open(TxnBuilder::new(spec(&[entity]))).unwrap();
    session.validate(txn).unwrap();
    let value = session.read(txn, entity).unwrap();
    session.commit(txn).unwrap();
    value
}

#[test]
fn group_committed_writes_survive_graceful_restart() {
    let store = MemStore::new();
    let svc = TxnService::new(
        schema(),
        &UniqueState::constant(ENTITIES, 0),
        wal_config(&store, true, true),
    );
    assert!(!svc.recovery_report().unwrap().recovered, "fresh media");
    for i in 0..ENTITIES {
        commit_write(&svc, EntityId(i as u32), 100 + i as i64);
    }
    svc.shutdown();

    let svc = TxnService::new(
        schema(),
        &UniqueState::constant(ENTITIES, 0),
        wal_config(&store, true, true),
    );
    let report = svc.recovery_report().unwrap();
    assert!(report.recovered, "second incarnation replays the log");
    assert_eq!(report.committed.len(), ENTITIES, "one commit per entity");
    for i in 0..ENTITIES {
        assert_eq!(read_one(&svc, EntityId(i as u32)), 100 + i as i64);
    }
    svc.shutdown();
}

#[test]
fn acked_commits_survive_a_power_cut() {
    let store = MemStore::new();
    let svc = TxnService::new(
        schema(),
        &UniqueState::constant(ENTITIES, 0),
        wal_config(&store, false, true),
    );
    commit_write(&svc, EntityId(3), 77);
    commit_write(&svc, EntityId(5), -9);
    // Power cut: the media dies before the graceful shutdown syncs, so
    // only what commit-time fsyncs already made durable can survive.
    store.crash(0xD15C_0DE5);
    svc.shutdown();
    store.revive();

    let svc = TxnService::new(
        schema(),
        &UniqueState::constant(ENTITIES, 0),
        wal_config(&store, false, true),
    );
    let report = svc.recovery_report().unwrap();
    assert!(report.recovered);
    assert_eq!(report.committed.len(), 2, "both acked commits replayed");
    assert_eq!(read_one(&svc, EntityId(3)), 77);
    assert_eq!(read_one(&svc, EntityId(5)), -9);
    assert_eq!(
        read_one(&svc, EntityId(0)),
        0,
        "untouched entity keeps initial"
    );
    svc.shutdown();
}

#[test]
fn unsynced_commits_may_die_but_recovery_stays_a_clean_prefix() {
    let store = MemStore::new();
    let svc = TxnService::new(
        schema(),
        &UniqueState::constant(ENTITIES, 0),
        wal_config(&store, false, false),
    );
    for i in 0..4u32 {
        commit_write(&svc, EntityId(i), 1_000 + i as i64);
    }
    store.crash(0x7EE7);
    svc.shutdown();
    store.revive();

    // With commit-record flushing disabled the acks were lies; whatever
    // survives must still be a prefix of the acked history, applied
    // exactly once.
    let svc = TxnService::new(
        schema(),
        &UniqueState::constant(ENTITIES, 0),
        wal_config(&store, false, false),
    );
    let report = svc.recovery_report().unwrap().clone();
    assert!(report.committed.len() <= 4);
    for i in 0..4u32 {
        let v = read_one(&svc, EntityId(i));
        assert!(
            v == 0 || v == 1_000 + i as i64,
            "entity {i} must hold either the initial or the committed value, got {v}"
        );
    }
    svc.shutdown();
}

#[test]
fn checkpoint_fence_gcs_dead_segments_across_restarts() {
    let store = MemStore::new();
    for round in 0..3 {
        let svc = TxnService::new(
            schema(),
            &UniqueState::constant(ENTITIES, 0),
            wal_config(&store, true, true),
        );
        commit_write(&svc, EntityId(1), round * 10 + 1);
        svc.shutdown();
    }
    // Each startup rotates to a fresh fenced segment and GCs everything
    // before it, so the backlog never grows with restart count.
    assert!(
        store.list().unwrap().len() <= 2,
        "segment backlog grew: {:?}",
        store.list().unwrap()
    );
    let svc = TxnService::new(
        schema(),
        &UniqueState::constant(ENTITIES, 0),
        wal_config(&store, true, true),
    );
    assert_eq!(read_one(&svc, EntityId(1)), 21, "last round's value wins");
    svc.shutdown();
}

#[test]
fn no_durability_means_no_recovery_report() {
    let svc = TxnService::new(
        schema(),
        &UniqueState::constant(ENTITIES, 0),
        ServerConfig::default(),
    );
    assert!(svc.recovery_report().is_none());
    svc.shutdown();
}
