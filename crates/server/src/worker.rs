//! The per-shard worker: single-threaded owner of one certifier.
//!
//! Each worker drains its shard's bounded request queue in arrival order
//! and executes calls against its own [`Certifier`] — the paper's CPC
//! protocol manager, the SSI certifier, or the 2PL baseline, selected by
//! `ServerConfig::backend` — so the phased state machine never sees
//! concurrent mutation. The worker never blocks on protocol outcomes —
//! a validation that must wait or a read of an in-flight version replies
//! [`ServerError::Busy`] and lets the session retry, because the
//! transaction being waited on is served by this same queue.
//!
//! Each wakeup drains up to [`DRAIN_MAX`] queued requests in one pass
//! (one blocking `recv`, then non-blocking `try_recv`s), so under load
//! the channel rendezvous cost is amortized across a batch instead of
//! paid per op; the bound keeps any single wakeup from starving
//! shutdown. A whole read/write burst can also arrive as one
//! [`Request::OpBatch`], which executes its ops back-to-back with a
//! single reply rendezvous.

use crate::client::{BatchOp, BatchReply};
use crate::durability::{CommitAck, WorkerWal};
use crate::metrics::ServerMetrics;
use crate::ServerError;
use crossbeam::channel::{Receiver, Sender};
use ks_core::Specification;
use ks_kernel::{EntityId, Value};
use ks_obs::{ObsKind, ObsSink, OpCode, SpanHop, NO_TXN};
use ks_predicate::Strategy;
use ks_protocol::manager::ProtocolStats;
use ks_protocol::{
    Certifier, CommitOutcome, ReEvalAction, ReadOutcome, Txn, TxnState, ValidationOutcome,
};
use std::sync::Arc;
use std::time::Instant;

/// A request plus its enqueue instant, so the worker can split round-trip
/// latency into queue-wait and execute portions.
pub(crate) struct Routed {
    pub(crate) enqueued: Instant,
    /// Distributed trace id this request rides under (`0` = unsampled):
    /// the worker closes the `Queue` span and brackets execution with
    /// `Exec`/`Certify` spans for it.
    pub(crate) trace: u64,
    pub(crate) request: Request,
}

/// One routed service call. Entity ids and specifications are already in
/// the target shard's local id space (sessions translate at the boundary).
pub(crate) enum Request {
    /// Define a new root child with its `(I_t, O_t)` specification,
    /// optionally ordered after/before sibling transactions of the same
    /// shard.
    Define {
        spec: Specification,
        after: Vec<Txn>,
        before: Vec<Txn>,
        reply: Sender<Result<Txn, ServerError>>,
    },
    /// Validate: acquire `R_v` locks and a version assignment.
    Validate {
        txn: Txn,
        strategy: Strategy,
        reply: Sender<Result<(), ServerError>>,
    },
    /// Read the assigned version of an entity.
    Read {
        txn: Txn,
        entity: EntityId,
        reply: Sender<Result<Value, ServerError>>,
    },
    /// Write a new version (may trigger re-eval of siblings).
    Write {
        txn: Txn,
        entity: EntityId,
        value: Value,
        reply: Sender<Result<(), ServerError>>,
    },
    /// A read/write burst executed back-to-back with one reply
    /// rendezvous. Each op carries its own verdict — including re-eval
    /// aborts triggered by an earlier op of the same burst. The outer
    /// `Result` is always `Ok` from the worker; the envelope exists so
    /// the session's rendezvous machinery can surface transport-level
    /// failures (backpressure, timeout) batch-wide.
    OpBatch {
        txn: Txn,
        ops: Vec<BatchOp>,
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<Vec<Result<BatchReply, ServerError>>, ServerError>>,
    },
    /// Commit (checks the output condition).
    Commit {
        txn: Txn,
        reply: Sender<Result<(), ServerError>>,
    },
    /// Explicit abort.
    Abort {
        txn: Txn,
        reply: Sender<Result<(), ServerError>>,
    },
    /// Snapshot the shard manager's protocol statistics.
    Stats { reply: Sender<ProtocolStats> },
    /// Drain no further requests and return the manager.
    Shutdown,
}

impl Request {
    /// The observability op code of this request.
    pub(crate) fn op(&self) -> OpCode {
        match self {
            Request::Define { .. } => OpCode::Define,
            Request::Validate { .. } => OpCode::Validate,
            Request::Read { .. } => OpCode::Read,
            Request::Write { .. } => OpCode::Write,
            Request::OpBatch { .. } => OpCode::Batch,
            Request::Commit { .. } => OpCode::Commit,
            Request::Abort { .. } => OpCode::Abort,
            Request::Stats { .. } | Request::Shutdown => OpCode::Stats,
        }
    }

    /// The shard-local transaction this request targets, for event
    /// stamping (`NO_TXN` for define/stats, which have none yet).
    pub(crate) fn txn_u32(&self) -> u32 {
        match self {
            Request::Validate { txn, .. }
            | Request::Read { txn, .. }
            | Request::Write { txn, .. }
            | Request::OpBatch { txn, .. }
            | Request::Commit { txn, .. }
            | Request::Abort { txn, .. } => txn.0 as u32,
            Request::Define { .. } | Request::Stats { .. } | Request::Shutdown => NO_TXN,
        }
    }
}

/// The shared `ProtocolError` → `ServerError` conversion (see
/// `crate::error`): certifier self-aborts surface as `ReEvalAborted`,
/// lock conflicts as `Busy`, everything else as `Rejected`.
fn reject(e: ks_protocol::ProtocolError) -> ServerError {
    ServerError::from(e)
}

/// Convert and count a protocol refusal: a certifier killing the caller
/// counts as an abort (like a re-eval victim), a retryable lock conflict
/// counts as neither, and everything else is a rejection.
fn reject_counted(metrics: &ServerMetrics, e: ks_protocol::ProtocolError) -> ServerError {
    let err = reject(e);
    match &err {
        ServerError::ReEvalAborted => ServerMetrics::add(&metrics.reeval_aborts),
        ServerError::Busy => {}
        _ => ServerMetrics::add(&metrics.rejected),
    }
    err
}

/// A transaction aborted underneath its session (re-eval, cascade, or a
/// certifier victim) is reported as such on its next call.
fn precheck(cert: &dyn Certifier, txn: Txn) -> Result<(), ServerError> {
    match cert.state_of(txn) {
        Ok(TxnState::Aborted) => Err(ServerError::ReEvalAborted),
        Ok(_) => Ok(()),
        Err(e) => Err(reject(e)),
    }
}

/// Execute one read against the certifier (shared by `Read` and
/// `OpBatch`).
fn exec_read(
    cert: &mut dyn Certifier,
    metrics: &ServerMetrics,
    txn: Txn,
    entity: EntityId,
) -> Result<Value, ServerError> {
    precheck(cert, txn).and_then(|()| match cert.read(txn, entity) {
        Ok(ReadOutcome::Value(v)) => Ok(v),
        Ok(ReadOutcome::Blocked(_)) => Err(ServerError::Busy),
        Err(e) => Err(reject_counted(metrics, e)),
    })
}

/// Execute one write against the certifier (shared by `Write` and
/// `OpBatch`), counting re-eval consequences. An applied write logs its
/// WAL record, followed by an `Abort` record for every victim it felled
/// (the log must witness the undo of anything it witnessed applied).
fn exec_write(
    cert: &mut dyn Certifier,
    metrics: &ServerMetrics,
    wal: &Option<WorkerWal>,
    sink: &Option<ObsSink>,
    txn: Txn,
    entity: EntityId,
    value: Value,
) -> Result<(), ServerError> {
    precheck(cert, txn).and_then(|()| match cert.write(txn, entity, value) {
        Ok(report) => {
            let mut aborted = Vec::new();
            for action in &report.reeval {
                match action {
                    ReEvalAction::Reassigned(_) => ServerMetrics::add(&metrics.re_assigns),
                    ReEvalAction::Aborted(t) | ReEvalAction::ReassignFailedAborted(t) => {
                        ServerMetrics::add(&metrics.reeval_aborts);
                        aborted.push(t.0 as u64);
                    }
                }
            }
            if let Some(w) = wal {
                w.log_write(txn.0 as u64, entity.0, value, sink);
                w.log_aborts(&aborted, sink);
            }
            Ok(())
        }
        Err(e) => Err(reject_counted(metrics, e)),
    })
}

/// Emit a span breadcrumb iff this request is being traced (`trace != 0`)
/// and a sink is attached.
fn emit_span(sink: &Option<ObsSink>, trace: u64, txn: u32, kind: ObsKind) {
    if trace != 0 {
        if let Some(s) = sink {
            s.emit(txn, kind);
        }
    }
}

/// Upper bound on requests drained per wakeup: big enough to amortize
/// the channel rendezvous under load, small enough that a saturated
/// queue cannot indefinitely delay the shutdown message behind it.
const DRAIN_MAX: usize = 32;

/// Drain requests until shutdown (message or all senders gone); returns
/// the certifier for post-run history verification.
///
/// Every dequeue records the request's queue wait; every reply records
/// its execute time. With a sink attached, the two are also emitted as
/// `Execute`/`Reply` events so a flight-recorder dump shows where each
/// request's time went.
pub(crate) fn run(
    mut cert: Box<dyn Certifier>,
    requests: Receiver<Routed>,
    metrics: Arc<ServerMetrics>,
    sink: Option<ObsSink>,
    wal: Option<WorkerWal>,
) -> Box<dyn Certifier> {
    let mut drained: Vec<Routed> = Vec::with_capacity(DRAIN_MAX);
    'serve: loop {
        match requests.recv() {
            Ok(first) => drained.push(first),
            Err(_) => break,
        }
        while drained.len() < DRAIN_MAX {
            match requests.try_recv() {
                Ok(r) => drained.push(r),
                Err(_) => break,
            }
        }
        metrics.drain_batch.record_n(drained.len() as u64);
        if let Some(s) = &sink {
            s.emit(
                NO_TXN,
                ObsKind::WorkerDrain {
                    n: drained.len() as u32,
                },
            );
        }
        for Routed {
            enqueued,
            trace,
            request,
        } in drained.drain(..)
        {
            let queue_wait = enqueued.elapsed();
            metrics.queue_wait.record(queue_wait);
            ServerMetrics::add(&metrics.requests);
            let (op, txn32) = (request.op(), request.txn_u32());
            if let Some(s) = &sink {
                s.emit(
                    txn32,
                    ObsKind::Execute {
                        op,
                        queue_ns: queue_wait.as_nanos() as u64,
                    },
                );
            }
            // The session opened the Queue span at enqueue; dequeue ends
            // it, and the worker's execution gets its own span.
            emit_span(
                &sink,
                trace,
                txn32,
                ObsKind::SpanEnd {
                    hop: SpanHop::Queue,
                    ok: true,
                    trace,
                },
            );
            emit_span(
                &sink,
                trace,
                txn32,
                ObsKind::SpanStart {
                    hop: SpanHop::Exec,
                    op,
                    trace,
                },
            );
            let exec_start = Instant::now();
            let ok = match request {
                Request::Define {
                    spec,
                    after,
                    before,
                    reply,
                } => {
                    let result = cert
                        .open(spec, &after, &before)
                        .map_err(|e| reject_counted(&metrics, e));
                    if let (Some(w), Ok(txn)) = (&wal, &result) {
                        w.log_begin(txn.0 as u64, &sink);
                    }
                    let ok = result.is_ok();
                    let _ = reply.send(result);
                    ok
                }
                Request::Validate {
                    txn,
                    strategy,
                    reply,
                } => {
                    // The certifier's validation-time decision (version
                    // assignment) gets its own span nested inside Exec.
                    emit_span(
                        &sink,
                        trace,
                        txn32,
                        ObsKind::SpanStart {
                            hop: SpanHop::Certify,
                            op: OpCode::Validate,
                            trace,
                        },
                    );
                    let result =
                        precheck(&*cert, txn).and_then(|()| match cert.validate(txn, strategy) {
                            Ok(ValidationOutcome::Validated) => Ok(()),
                            Ok(ValidationOutcome::Blocked(_))
                            | Ok(ValidationOutcome::MustWait(_)) => Err(ServerError::Busy),
                            Ok(ValidationOutcome::CannotSatisfy) => {
                                ServerMetrics::add(&metrics.rejected);
                                Err(ServerError::Rejected(
                                    "no version assignment satisfies the input predicate".into(),
                                ))
                            }
                            Err(e) => Err(reject_counted(&metrics, e)),
                        });
                    let ok = result.is_ok();
                    emit_span(
                        &sink,
                        trace,
                        txn32,
                        ObsKind::SpanEnd {
                            hop: SpanHop::Certify,
                            ok,
                            trace,
                        },
                    );
                    let _ = reply.send(result);
                    ok
                }
                Request::Read { txn, entity, reply } => {
                    let result = exec_read(&mut *cert, &metrics, txn, entity);
                    let ok = result.is_ok();
                    let _ = reply.send(result);
                    ok
                }
                Request::Write {
                    txn,
                    entity,
                    value,
                    reply,
                } => {
                    let result = exec_write(&mut *cert, &metrics, &wal, &sink, txn, entity, value);
                    let ok = result.is_ok();
                    let _ = reply.send(result);
                    ok
                }
                Request::OpBatch { txn, ops, reply } => {
                    metrics.op_batch.record_n(ops.len() as u64);
                    let results: Vec<Result<BatchReply, ServerError>> = ops
                        .iter()
                        .map(|op| match *op {
                            BatchOp::Read(entity) => {
                                exec_read(&mut *cert, &metrics, txn, entity).map(BatchReply::Value)
                            }
                            BatchOp::Write(entity, value) => {
                                exec_write(&mut *cert, &metrics, &wal, &sink, txn, entity, value)
                                    .map(|()| BatchReply::Done)
                            }
                        })
                        .collect();
                    let ok = results.iter().all(|r| r.is_ok());
                    let _ = reply.send(Ok(results));
                    ok
                }
                Request::Commit { txn, reply } => {
                    // The certifier's commit-time decision (output
                    // condition + commit gating) is a span of its own,
                    // closed before any WAL hop opens.
                    emit_span(
                        &sink,
                        trace,
                        txn32,
                        ObsKind::SpanStart {
                            hop: SpanHop::Certify,
                            op: OpCode::Commit,
                            trace,
                        },
                    );
                    let result = precheck(&*cert, txn).and_then(|()| match cert.commit(txn) {
                        Ok(CommitOutcome::Committed) => {
                            ServerMetrics::add(&metrics.committed);
                            Ok(())
                        }
                        Ok(CommitOutcome::PredecessorsPending(_))
                        | Ok(CommitOutcome::ChildrenPending(_)) => Err(ServerError::Busy),
                        Ok(CommitOutcome::OutputViolated) => {
                            // The transaction cannot terminate successfully;
                            // abort it so its versions don't dangle.
                            let cascaded = cert.abort(txn).unwrap_or_default();
                            if let Some(w) = &wal {
                                let mut victims = vec![txn.0 as u64];
                                victims.extend(cascaded.iter().map(|t| t.0 as u64));
                                w.log_aborts(&victims, &sink);
                            }
                            ServerMetrics::add(&metrics.rejected);
                            Err(ServerError::Rejected("output condition violated".into()))
                        }
                        Err(e) => {
                            // A certifier abort at commit (SSI FCW or a
                            // dangerous structure) must reach the log too.
                            let err = reject_counted(&metrics, e);
                            if let (Some(w), ServerError::ReEvalAborted) = (&wal, &err) {
                                w.log_aborts(&[txn.0 as u64], &sink);
                            }
                            Err(err)
                        }
                    });
                    let ok = result.is_ok();
                    emit_span(
                        &sink,
                        trace,
                        txn32,
                        ObsKind::SpanEnd {
                            hop: SpanHop::Certify,
                            ok,
                            trace,
                        },
                    );
                    // A successful commit acknowledges only once its WAL
                    // record is durable: inline, or deferred to the group
                    // flusher (which then owns the reply).
                    match (&wal, &result) {
                        (Some(w), Ok(())) => {
                            if let CommitAck::Ready { synced } =
                                w.log_commit(txn.0 as u64, trace, &sink, &reply)
                            {
                                let _ = reply.send(result);
                                if synced {
                                    metrics.telemetry.record_flush(1);
                                }
                            }
                        }
                        _ => {
                            let _ = reply.send(result);
                        }
                    }
                    ok
                }
                Request::Abort { txn, reply } => {
                    // Aborting an already-aborted transaction is a no-op ack,
                    // not an error: the session is acknowledging the doom.
                    let result = match cert.state_of(txn) {
                        Ok(TxnState::Aborted) => Ok(()),
                        Ok(_) => match cert.abort(txn) {
                            Ok(cascaded) => {
                                if let Some(w) = &wal {
                                    let mut victims = vec![txn.0 as u64];
                                    victims.extend(cascaded.iter().map(|t| t.0 as u64));
                                    w.log_aborts(&victims, &sink);
                                }
                                Ok(())
                            }
                            Err(e) => Err(reject(e)),
                        },
                        Err(e) => Err(reject(e)),
                    };
                    let ok = result.is_ok();
                    let _ = reply.send(result);
                    ok
                }
                Request::Stats { reply } => {
                    let _ = reply.send(cert.stats());
                    true
                }
                Request::Shutdown => {
                    // Graceful exit leaves the log durable whatever the
                    // sync mode (simulated crashes kill the store before
                    // shutdown, so this cannot mask a power cut).
                    if let Some(w) = &wal {
                        w.sync_quiet();
                    }
                    break 'serve;
                }
            };
            let exec = exec_start.elapsed();
            metrics.exec_time.record(exec);
            if let Some(s) = &sink {
                s.emit(
                    txn32,
                    ObsKind::Reply {
                        op,
                        ok,
                        exec_ns: exec.as_nanos() as u64,
                    },
                );
            }
            emit_span(
                &sink,
                trace,
                txn32,
                ObsKind::SpanEnd {
                    hop: SpanHop::Exec,
                    ok,
                    trace,
                },
            );
        }
    }
    cert
}
