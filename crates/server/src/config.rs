//! Service tuning knobs.
//!
//! [`ServerConfig`] keeps public fields (struct-literal construction still
//! works for internal code), but the supported way to build one is the
//! validating [`ServerConfig::builder`]: it rejects configurations that
//! would wedge the service at startup — zero shards, a zero-depth queue
//! nothing can ever enter, a session cap of zero, or a zero timeout that
//! turns every call into an instant `Timeout`.

use crate::durability::Durability;
use crate::error::ServerError;
use ks_obs::Recorder;
use ks_predicate::Strategy;
use ks_protocol::Backend;
use std::fmt;
use std::time::Duration;

/// Configuration for a [`TxnService`](crate::TxnService).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of entity shards, each served by one worker thread owning
    /// its own protocol manager. Clamped to `[1, |E|]` at startup.
    pub shards: usize,
    /// Bounded depth of each shard's request queue; a full queue sheds
    /// requests with [`ServerError::Backpressure`](crate::ServerError).
    pub queue_depth: usize,
    /// Maximum concurrently open sessions; further `session()` calls are
    /// shed with `Backpressure`.
    pub max_sessions: usize,
    /// How long a session waits for a reply before reporting `Timeout`.
    pub request_timeout: Duration,
    /// Version-assignment solver strategy used at validation (overridable
    /// per transaction via
    /// [`TxnBuilder::strategy`](crate::TxnBuilder::strategy)).
    pub strategy: Strategy,
    /// Flight recorder for structured decision tracing. When set, every
    /// shard manager and worker gets an [`ObsSink`](ks_obs::ObsSink) and
    /// the service records request lifecycle + protocol decision events
    /// into the recorder's rings (see `ks-obs`); `None` disables
    /// instrumentation entirely.
    pub recorder: Option<Recorder>,
    /// Crash durability. [`Durability::Wal`] makes the commit path
    /// log-then-flush through a write-ahead log and replays it at
    /// startup; the default [`Durability::None`] keeps the pre-WAL
    /// in-memory behaviour.
    pub durability: Durability,
    /// Fraction of requests the service *originates* distributed traces
    /// for (`0.0` = never, the default; `1.0` = every request). Only
    /// applies to requests that did not already arrive with a wire
    /// trace id — those are always honoured — and only when a
    /// `recorder` is attached. See `ks_obs::trace`.
    pub trace_sample: f64,
    /// Which certification backend every shard worker runs: the paper's
    /// CPC protocol (the default), SSI, or strict 2PL. Advertised to
    /// remote clients in the wire handshake; clients may pin an
    /// expectation per transaction ([`TxnBuilder::backend`]
    /// (crate::TxnBuilder::backend)), which fails closed with
    /// [`ServerError::BackendMismatch`](crate::ServerError) on disagreement.
    pub backend: Backend,
    /// SSI dangerous-structure detection (`true`, the default). Turning
    /// it off degrades [`Backend::Ssi`] to plain snapshot isolation,
    /// which admits write skew — a **test-only** knob that exists so the
    /// offline history checker can be proven to catch a broken detector
    /// (the `exp_certifier --teeth` gate). Ignored by other backends.
    pub ssi_detect: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            queue_depth: 128,
            max_sessions: 64,
            request_timeout: Duration::from_secs(10),
            strategy: Strategy::Backtracking,
            recorder: None,
            durability: Durability::None,
            trace_sample: 0.0,
            backend: Backend::Cpc,
            ssi_detect: true,
        }
    }
}

impl ServerConfig {
    /// Start a validating builder seeded with the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// A [`ServerConfig`] that failed validation; explains which knob is
/// unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid server config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> Self {
        ServerError::Rejected(e.to_string())
    }
}

/// Builder for [`ServerConfig`] whose [`build`](ServerConfigBuilder::build)
/// rejects degenerate settings instead of starting a service that can
/// never make progress.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Number of entity shards (must be ≥ 1; still clamped to `|E|` at
    /// service startup).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Per-shard request-queue depth (must be ≥ 1).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Admission-control session cap (must be ≥ 1).
    pub fn max_sessions(mut self, cap: usize) -> Self {
        self.config.max_sessions = cap;
        self
    }

    /// Reply timeout for every session call (must be non-zero).
    pub fn request_timeout(mut self, timeout: Duration) -> Self {
        self.config.request_timeout = timeout;
        self
    }

    /// Default version-assignment strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Attach a flight recorder.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.config.recorder = Some(recorder);
        self
    }

    /// Select crash durability (write-ahead logging or none).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.config.durability = durability;
        self
    }

    /// Trace-origination sampling rate (must be within `[0.0, 1.0]`).
    pub fn trace_sample(mut self, rate: f64) -> Self {
        self.config.trace_sample = rate;
        self
    }

    /// Select the certification backend (CPC / SSI / 2PL).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Toggle SSI dangerous-structure detection (test-only knob; see
    /// [`ServerConfig::ssi_detect`]).
    pub fn ssi_detect(mut self, detect: bool) -> Self {
        self.config.ssi_detect = detect;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        let c = &self.config;
        if c.shards == 0 {
            return Err(ConfigError("shards must be >= 1".into()));
        }
        if c.queue_depth == 0 {
            return Err(ConfigError(
                "queue_depth must be >= 1 (a zero-depth queue admits nothing)".into(),
            ));
        }
        if c.max_sessions == 0 {
            return Err(ConfigError(
                "max_sessions must be >= 1 (a zero cap sheds every session)".into(),
            ));
        }
        if c.request_timeout.is_zero() {
            return Err(ConfigError(
                "request_timeout must be non-zero (every call would time out)".into(),
            ));
        }
        if !(0.0..=1.0).contains(&c.trace_sample) {
            return Err(ConfigError("trace_sample must be within [0.0, 1.0]".into()));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let c = ServerConfig::builder().build().unwrap();
        assert_eq!(c.shards, 4);
        assert_eq!(c.queue_depth, 128);
        assert_eq!(c.backend, Backend::Cpc);
        assert!(c.ssi_detect);
    }

    #[test]
    fn builder_rejects_degenerate_knobs() {
        assert!(ServerConfig::builder().shards(0).build().is_err());
        assert!(ServerConfig::builder().queue_depth(0).build().is_err());
        assert!(ServerConfig::builder().max_sessions(0).build().is_err());
        assert!(ServerConfig::builder()
            .request_timeout(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServerConfig::builder().trace_sample(1.5).build().is_err());
        assert!(ServerConfig::builder().trace_sample(-0.1).build().is_err());
        assert!(ServerConfig::builder()
            .trace_sample(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn builder_sets_every_knob() {
        let c = ServerConfig::builder()
            .shards(2)
            .queue_depth(7)
            .max_sessions(3)
            .request_timeout(Duration::from_millis(250))
            .strategy(Strategy::GreedyLatest)
            .trace_sample(0.25)
            .backend(Backend::Ssi)
            .ssi_detect(false)
            .build()
            .unwrap();
        assert_eq!(c.shards, 2);
        assert_eq!(c.queue_depth, 7);
        assert_eq!(c.max_sessions, 3);
        assert_eq!(c.request_timeout, Duration::from_millis(250));
        assert_eq!(c.strategy, Strategy::GreedyLatest);
        assert_eq!(c.trace_sample, 0.25);
        assert_eq!(c.backend, Backend::Ssi);
        assert!(!c.ssi_detect);
        assert!(c.recorder.is_none());
        assert!(matches!(c.durability, Durability::None));
    }

    #[test]
    fn config_error_converts_to_server_error() {
        let e: ServerError = ConfigError("shards must be >= 1".into()).into();
        assert!(e.to_string().contains("shards"));
        assert!(!e.is_retryable());
    }
}
