//! Service tuning knobs.

use ks_obs::Recorder;
use ks_predicate::Strategy;
use std::time::Duration;

/// Configuration for a [`TxnService`](crate::TxnService).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of entity shards, each served by one worker thread owning
    /// its own protocol manager. Clamped to `[1, |E|]` at startup.
    pub shards: usize,
    /// Bounded depth of each shard's request queue; a full queue sheds
    /// requests with [`ServerError::Backpressure`](crate::ServerError).
    pub queue_depth: usize,
    /// Maximum concurrently open sessions; further `session()` calls are
    /// shed with `Backpressure`.
    pub max_sessions: usize,
    /// How long a session waits for a reply before reporting `Timeout`.
    pub request_timeout: Duration,
    /// Version-assignment solver strategy used at validation.
    pub strategy: Strategy,
    /// Flight recorder for structured decision tracing. When set, every
    /// shard manager and worker gets an [`ObsSink`](ks_obs::ObsSink) and
    /// the service records request lifecycle + protocol decision events
    /// into the recorder's rings (see `ks-obs`); `None` disables
    /// instrumentation entirely.
    pub recorder: Option<Recorder>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            queue_depth: 128,
            max_sessions: 64,
            request_timeout: Duration::from_secs(10),
            strategy: Strategy::Backtracking,
            recorder: None,
        }
    }
}
