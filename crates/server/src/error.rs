//! Typed errors surfaced to [`Session`](crate::Session) callers.

use std::fmt;

/// Why a service call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The protocol manager refused the call (bad handle, wrong phase,
    /// unsatisfiable input, violated output condition, domain violation…).
    /// The transaction, if any, is no longer usable.
    Rejected(String),
    /// The transaction was aborted underneath the session by the re-eval
    /// procedure (a sibling's write superseded a version this transaction
    /// had read) or by an abort cascade.
    ReEvalAborted,
    /// The service shed the request: the admission limit was reached or
    /// the target shard's queue was full. Safe to retry after backoff.
    Backpressure,
    /// The resource is momentarily held (validation must wait for a
    /// sibling, or a read hit an uncommitted version). Safe to retry.
    Busy,
    /// The specification references entities owned by more than one shard;
    /// a transaction must live inside a single shard.
    CrossShard,
    /// No reply within the configured request timeout.
    Timeout,
    /// The service has shut down.
    Shutdown,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Rejected(why) => write!(f, "rejected: {why}"),
            ServerError::ReEvalAborted => f.write_str("aborted by re-eval"),
            ServerError::Backpressure => f.write_str("shed: backpressure"),
            ServerError::Busy => f.write_str("busy: retry"),
            ServerError::CrossShard => f.write_str("specification spans shards"),
            ServerError::Timeout => f.write_str("request timed out"),
            ServerError::Shutdown => f.write_str("service is shut down"),
        }
    }
}

impl std::error::Error for ServerError {}
