//! Typed errors surfaced to [`Client`](crate::Client) callers.
//!
//! Every variant carries a **stable wire code** ([`ServerError::code`])
//! so remote transports can round-trip errors losslessly: the `ks-net`
//! client reconstructs exactly the error the server raised via
//! [`ServerError::from_code`]. Retryable outcomes are classified once,
//! in [`ServerError::is_retryable`], and both the in-process drivers and
//! the remote client's backoff loop consult that single predicate.

use ks_protocol::ProtocolError;
use std::fmt;

/// Why a service call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The protocol manager refused the call (bad handle, wrong phase,
    /// unsatisfiable input, violated output condition, domain violation…).
    /// The transaction, if any, is no longer usable.
    Rejected(String),
    /// The transaction was aborted underneath the session by the re-eval
    /// procedure (a sibling's write superseded a version this transaction
    /// had read) or by an abort cascade.
    ReEvalAborted,
    /// The service shed the request: the admission limit was reached or
    /// the target shard's queue was full. Safe to retry after backoff.
    Backpressure,
    /// The resource is momentarily held (validation must wait for a
    /// sibling, or a read hit an uncommitted version). Safe to retry.
    Busy,
    /// The specification references entities owned by more than one shard;
    /// a transaction must live inside a single shard.
    CrossShard,
    /// No reply within the configured request timeout (server side) or
    /// the per-request deadline expired (remote client side).
    Timeout,
    /// The service has shut down.
    Shutdown,
    /// Transport failure between a remote client and the server: the
    /// connection dropped, a frame was malformed, or the peer spoke an
    /// incompatible protocol version. Never produced in-process.
    Wire(String),
    /// The client pinned a certification backend expectation
    /// ([`TxnBuilder::backend`](crate::TxnBuilder::backend)) that does
    /// not match the backend this service runs. The detail names both
    /// sides.
    BackendMismatch(String),
}

impl ServerError {
    /// Is this a transient outcome a caller may retry (with backoff)?
    ///
    /// `Busy` (a sibling holds the resource), `Backpressure` (admission
    /// or queue shedding) and `Timeout` are transient by design — the
    /// paper's protocol replies "wait" rather than blocking, and the
    /// serving layer sheds rather than queueing unboundedly. Everything
    /// else is a terminal verdict about the call or the transaction.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServerError::Busy | ServerError::Backpressure | ServerError::Timeout
        )
    }

    /// The stable wire code of this error (see `docs/wire.md`).
    ///
    /// Codes are part of the `ks-net` protocol contract: they never
    /// change meaning, and new variants get new codes.
    pub fn code(&self) -> u16 {
        match self {
            ServerError::Rejected(_) => 1,
            ServerError::ReEvalAborted => 2,
            ServerError::Backpressure => 3,
            ServerError::Busy => 4,
            ServerError::CrossShard => 5,
            ServerError::Timeout => 6,
            ServerError::Shutdown => 7,
            ServerError::Wire(_) => 8,
            ServerError::BackendMismatch(_) => 9,
        }
    }

    /// Reconstruct an error from its wire code and detail string; `None`
    /// for unknown codes (a newer peer). Inverse of [`ServerError::code`]
    /// paired with [`ServerError::detail`].
    pub fn from_code(code: u16, detail: &str) -> Option<ServerError> {
        Some(match code {
            1 => ServerError::Rejected(detail.to_string()),
            2 => ServerError::ReEvalAborted,
            3 => ServerError::Backpressure,
            4 => ServerError::Busy,
            5 => ServerError::CrossShard,
            6 => ServerError::Timeout,
            7 => ServerError::Shutdown,
            8 => ServerError::Wire(detail.to_string()),
            9 => ServerError::BackendMismatch(detail.to_string()),
            _ => return None,
        })
    }

    /// The detail payload that travels with [`ServerError::code`] (empty
    /// for variants whose meaning is fully carried by the code).
    pub fn detail(&self) -> &str {
        match self {
            ServerError::Rejected(why)
            | ServerError::Wire(why)
            | ServerError::BackendMismatch(why) => why,
            _ => "",
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Rejected(why) => write!(f, "rejected: {why}"),
            ServerError::ReEvalAborted => f.write_str("aborted by re-eval"),
            ServerError::Backpressure => f.write_str("shed: backpressure"),
            ServerError::Busy => f.write_str("busy: retry"),
            ServerError::CrossShard => f.write_str("specification spans shards"),
            ServerError::Timeout => f.write_str("request timed out"),
            ServerError::Shutdown => f.write_str("service is shut down"),
            ServerError::Wire(why) => write!(f, "wire: {why}"),
            ServerError::BackendMismatch(why) => write!(f, "backend mismatch: {why}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// The one `ProtocolError` → `ServerError` conversion, shared by the
/// shard workers and the wire layer. Two protocol outcomes keep their
/// meaning across the boundary — a certifier killing the calling
/// transaction mid-call surfaces as [`ServerError::ReEvalAborted`]
/// (same client contract as a CPC re-eval abort, so retry loops and
/// abort telemetry treat all backends alike), and a lock conflict
/// surfaces as the retryable [`ServerError::Busy`]. Every other manager
/// refusal is a `Rejected` carrying the protocol's own diagnostic.
impl From<ProtocolError> for ServerError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::CertifierAborted { .. } => ServerError::ReEvalAborted,
            ProtocolError::WouldBlock(_) => ServerError::Busy,
            other => ServerError::Rejected(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<ServerError> {
        vec![
            ServerError::Rejected("output condition violated".into()),
            ServerError::ReEvalAborted,
            ServerError::Backpressure,
            ServerError::Busy,
            ServerError::CrossShard,
            ServerError::Timeout,
            ServerError::Shutdown,
            ServerError::Wire("connection reset".into()),
            ServerError::BackendMismatch("client pinned ssi, server runs cpc".into()),
        ]
    }

    #[test]
    fn codes_round_trip_every_variant() {
        for e in all() {
            assert_eq!(
                ServerError::from_code(e.code(), e.detail()),
                Some(e.clone()),
                "{e:?}"
            );
        }
    }

    #[test]
    fn codes_are_distinct_and_unknown_codes_fail_closed() {
        let mut codes: Vec<u16> = all().iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all().len());
        assert_eq!(ServerError::from_code(0, ""), None);
        assert_eq!(ServerError::from_code(999, "x"), None);
    }

    #[test]
    fn retryable_is_exactly_the_transient_set() {
        for e in all() {
            let transient = matches!(
                e,
                ServerError::Busy | ServerError::Backpressure | ServerError::Timeout
            );
            assert_eq!(e.is_retryable(), transient, "{e:?}");
        }
    }

    #[test]
    fn protocol_errors_become_rejections() {
        let e: ServerError = ProtocolError::UnknownTxn.into();
        match e {
            ServerError::Rejected(why) => assert!(why.contains("unknown")),
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn certifier_outcomes_keep_their_meaning() {
        let e: ServerError = ProtocolError::CertifierAborted {
            reason: "deadlock victim",
        }
        .into();
        assert_eq!(e, ServerError::ReEvalAborted);
        let e: ServerError = ProtocolError::WouldBlock(ks_kernel::EntityId(3)).into();
        assert_eq!(e, ServerError::Busy);
        assert!(e.is_retryable());
    }
}
