//! The transport-generic client surface: [`Client`] and [`TxnBuilder`].
//!
//! The paper's protocol is specified at the *interface*: a transaction is
//! its `(I_t, O_t)` specification plus its place in the sibling partial
//! order, and the correctness guarantee is stated over what clients can
//! observe — not over how calls reach the manager. This module makes that
//! interface a Rust trait, so workloads, tests and benchmarks are generic
//! over transport: the in-process [`Session`](crate::Session) and the
//! `ks-net` `RemoteSession` implement the same [`Client`] contract, and a
//! driver written against `C: Client` runs unchanged over a function call
//! or a TCP connection.
//!
//! [`TxnBuilder`] replaces the old positional `define`/`define_ordered`
//! signatures: the specification, the `after`/`before` ordering edges
//! (the paper's cooperation chains, both directions), and an optional
//! per-transaction version-assignment strategy are named, composable and
//! transport-independent.

use crate::ServerError;
use ks_core::Specification;
use ks_kernel::{EntityId, Value};
use ks_predicate::Strategy;
use ks_protocol::Backend;
use std::fmt;

/// A transaction request under construction: specification, sibling
/// ordering, and solver strategy. Generic over the transport's handle
/// type so ordering edges reference transactions *of the same client*.
#[derive(Debug, Clone)]
pub struct TxnBuilder<H> {
    spec: Specification,
    after: Vec<H>,
    before: Vec<H>,
    strategy: Option<Strategy>,
    backend: Option<Backend>,
    pipeline_depth: usize,
}

impl<H: Copy> TxnBuilder<H> {
    /// Start from the transaction's `(I_t, O_t)` specification.
    pub fn new(spec: Specification) -> Self {
        TxnBuilder {
            spec,
            after: Vec::new(),
            before: Vec::new(),
            strategy: None,
            backend: None,
            pipeline_depth: 1,
        }
    }

    /// Order this transaction **after** `pred` in the sibling partial
    /// order: commit is gated until `pred` has committed.
    pub fn after(mut self, pred: H) -> Self {
        self.after.push(pred);
        self
    }

    /// Order this transaction **before** `succ` in the sibling partial
    /// order (the other direction of a cooperation chain).
    pub fn before(mut self, succ: H) -> Self {
        self.before.push(succ);
        self
    }

    /// Override the service's default version-assignment strategy for
    /// this transaction's validation.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// The specification.
    pub fn spec(&self) -> &Specification {
        &self.spec
    }

    /// Predecessors in the sibling partial order.
    pub fn after_handles(&self) -> &[H] {
        &self.after
    }

    /// Successors in the sibling partial order.
    pub fn before_handles(&self) -> &[H] {
        &self.before
    }

    /// The per-transaction strategy override, if any.
    pub fn strategy_override(&self) -> Option<Strategy> {
        self.strategy
    }

    /// Pin the certification backend this transaction expects the
    /// service to run. A workload written for one backend's semantics
    /// (e.g. a bench measuring SSI abort rates) fails closed with
    /// [`ServerError::BackendMismatch`] instead of silently measuring
    /// the wrong certifier. On the wire this travels as the Open
    /// frame's backend byte (`0` = unpinned; see `docs/wire.md`).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The pinned backend expectation, if any.
    pub fn backend_expectation(&self) -> Option<Backend> {
        self.backend
    }

    /// Hint how many request frames a transport may keep in flight on the
    /// connection while serving this transaction's [`run_batch`]
    /// (`Client::run_batch`) bursts. `1` (the default) is strict
    /// request/reply lock-step; in-process transports ignore the hint.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// The pipelining hint (always ≥ 1).
    pub fn pipeline_depth_hint(&self) -> usize {
        self.pipeline_depth
    }

    /// Decompose into `(spec, after, before, strategy, backend)` — used
    /// by transport implementations.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Specification,
        Vec<H>,
        Vec<H>,
        Option<Strategy>,
        Option<Backend>,
    ) {
        (
            self.spec,
            self.after,
            self.before,
            self.strategy,
            self.backend,
        )
    }
}

/// One data-plane operation inside a [`Client::run_batch`] burst. Only
/// reads and writes batch: lifecycle requests (`open`/`validate`/
/// `commit`/`abort`) change what later ops in the same burst would mean,
/// so they stay individual calls with individual outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Read an entity through the transaction's assigned version.
    Read(EntityId),
    /// Write a new version of an entity.
    Write(EntityId, Value),
}

/// The per-op success payload of a [`Client::run_batch`] burst, mirroring
/// the return types of [`Client::read`] and [`Client::write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReply {
    /// A [`BatchOp::Read`] result.
    Value(Value),
    /// A [`BatchOp::Write`] acknowledgement.
    Done,
}

/// The portable fallback behind [`Client::run_batch`]: one call per op,
/// in order. Transport overrides that hit an edge they cannot batch
/// (e.g. a cross-shard op) delegate here so semantics stay identical.
pub fn per_op_batch<C: Client + ?Sized>(
    client: &C,
    txn: C::Handle,
    ops: &[BatchOp],
) -> Result<Vec<Result<BatchReply, ServerError>>, ServerError> {
    Ok(ops
        .iter()
        .map(|op| match *op {
            BatchOp::Read(entity) => client.read(txn, entity).map(BatchReply::Value),
            BatchOp::Write(entity, value) => {
                client.write(txn, entity, value).map(|()| BatchReply::Done)
            }
        })
        .collect())
}

/// The client-visible contract of the KS transaction service.
///
/// Implementations promise the paper's interface semantics regardless of
/// transport:
///
/// * [`open`](Client::open) admits a transaction whose specification and
///   ordering edges live on one shard;
/// * [`validate`](Client::validate) acquires `R_v` locks and a version
///   assignment (or replies a retryable [`ServerError::Busy`]);
/// * [`read`](Client::read) observes the *assigned* version — not own
///   writes: the paper's execution model, not read-your-writes;
/// * [`write`](Client::write) publishes a version visible to siblings,
///   possibly triggering re-eval of their assignments;
/// * [`commit`](Client::commit) checks the output condition and the
///   sibling order; [`abort`](Client::abort) is an idempotent
///   acknowledgement.
///
/// Transient outcomes are classified by
/// [`ServerError::is_retryable`]; drivers retry those (with backoff for
/// remote transports) and treat everything else as a verdict.
pub trait Client {
    /// Opaque per-transport transaction handle.
    type Handle: Copy + fmt::Debug + PartialEq;

    /// Open (define) a transaction from a [`TxnBuilder`].
    fn open(&self, txn: TxnBuilder<Self::Handle>) -> Result<Self::Handle, ServerError>;

    /// Validate: acquire `R_v` locks plus a version assignment for the
    /// input predicate. [`ServerError::Busy`] means a sibling must finish
    /// first — retry.
    fn validate(&self, txn: Self::Handle) -> Result<(), ServerError>;

    /// Read an entity through the transaction's assigned version.
    fn read(&self, txn: Self::Handle, entity: EntityId) -> Result<Value, ServerError>;

    /// Write a new version of an entity, visible to siblings.
    fn write(&self, txn: Self::Handle, entity: EntityId, value: Value) -> Result<(), ServerError>;

    /// Commit; the service checks the output condition and sibling order.
    fn commit(&self, txn: Self::Handle) -> Result<(), ServerError>;

    /// Abort (idempotent: acknowledging a re-eval abort is not an error).
    fn abort(&self, txn: Self::Handle) -> Result<(), ServerError>;

    /// Run a burst of read/write ops against one transaction, returning a
    /// result per op in submission order.
    ///
    /// Semantically identical to calling [`read`](Client::read)/
    /// [`write`](Client::write) one by one — and that is the default
    /// implementation — but transports may amortize: the in-process
    /// session makes one worker rendezvous for the whole burst, the
    /// networked session packs the burst into `Batch` wire frames and
    /// pipelines them up to the transaction's
    /// [`pipeline_depth`](TxnBuilder::pipeline_depth).
    ///
    /// The outer `Err` is a transport/batch-level failure (nothing can be
    /// said about individual ops); per-op verdicts — including re-eval
    /// aborts triggered by an *earlier op in the same burst* — arrive in
    /// the inner results.
    fn run_batch(
        &self,
        txn: Self::Handle,
        ops: &[BatchOp],
    ) -> Result<Vec<Result<BatchReply, ServerError>>, ServerError> {
        per_op_batch(self, txn, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_predicate::Cnf;

    #[test]
    fn builder_accumulates_ordering_strategy_and_backend() {
        let b: TxnBuilder<u64> = TxnBuilder::new(Specification::new(Cnf::truth(), Cnf::truth()))
            .after(1)
            .after(2)
            .before(9)
            .strategy(Strategy::GreedyLatest)
            .backend(Backend::Ssi);
        assert_eq!(b.after_handles(), &[1, 2]);
        assert_eq!(b.before_handles(), &[9]);
        assert_eq!(b.strategy_override(), Some(Strategy::GreedyLatest));
        assert_eq!(b.backend_expectation(), Some(Backend::Ssi));
        let (spec, after, before, strategy, backend) = b.into_parts();
        assert!(spec.input.is_truth());
        assert_eq!((after, before), (vec![1, 2], vec![9]));
        assert_eq!(strategy, Some(Strategy::GreedyLatest));
        assert_eq!(backend, Some(Backend::Ssi));
    }

    #[test]
    fn builder_defaults_to_no_backend_pin() {
        let b: TxnBuilder<u64> = TxnBuilder::new(Specification::new(Cnf::truth(), Cnf::truth()));
        assert_eq!(b.backend_expectation(), None);
    }

    #[test]
    fn pipeline_depth_defaults_to_one_and_clamps_zero() {
        let b: TxnBuilder<u64> = TxnBuilder::new(Specification::new(Cnf::truth(), Cnf::truth()));
        assert_eq!(b.pipeline_depth_hint(), 1);
        assert_eq!(b.pipeline_depth(0).pipeline_depth_hint(), 1);
        let b: TxnBuilder<u64> = TxnBuilder::new(Specification::new(Cnf::truth(), Cnf::truth()));
        assert_eq!(b.pipeline_depth(8).pipeline_depth_hint(), 8);
    }
}
