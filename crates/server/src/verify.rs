//! Post-run correctness verification: drain the shard managers through
//! [`ks_protocol::extract`] and check every shard's execution against the
//! formal model with [`ks_core::check`].
//!
//! This is the service's ground truth: whatever interleaving the workers
//! served, the committed transactions of each shard must form a correct
//! execution in the paper's sense (parent-based version function, input
//! and output conditions, partial order).
//!
//! When a check fails **and** the run carried a flight recorder,
//! [`verify_with_dump`] turns the failure into a [`ViolationDump`]: the
//! full JSONL event stream plus, for each offending transaction, its
//! causally-stitched timeline and the protocol decision that produced the
//! bad state — the difference between "shard 0 failed" and "txn 2's input
//! condition fails because version 1 of entity 0 was force-assigned".

use ks_obs::{event_to_json, stitch, to_jsonl, Recorder, TxnTimeline};
use ks_protocol::{extract, ProtocolManager, TxnState};

/// Outcome of verifying a set of shard managers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Shards checked.
    pub shards: usize,
    /// Committed transactions across all shards.
    pub committed: usize,
    /// Human-readable descriptions of every violation found (empty ⇔ the
    /// run was correct).
    pub violations: Vec<String>,
    /// The offending transactions, when attributable: `(shard, node
    /// index)` pairs matching the `txn` stamp of flight-recorder events.
    pub offenders: Vec<(usize, u32)>,
}

impl VerifyReport {
    /// Did every shard's execution check out?
    pub fn is_correct(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify the managers returned by
/// [`TxnService::shutdown`](crate::TxnService::shutdown).
pub fn verify_managers(managers: &[ProtocolManager]) -> VerifyReport {
    let mut report = VerifyReport {
        shards: managers.len(),
        ..VerifyReport::default()
    };
    for (shard, pm) in managers.iter().enumerate() {
        match extract::model_execution(pm, pm.root()) {
            Ok((txn, parent, exec)) => {
                report.committed += txn.children().len();
                let check = ks_core::check::check(pm.schema(), &txn, &parent, &exec);
                if check.is_correct_parent_based() {
                    continue;
                }
                // `inputs_ok[i]` indexes the committed children in slot
                // order — the same order extraction used — so a false
                // entry names a protocol node directly.
                let committed: Vec<u32> = pm
                    .children_of(pm.root())
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|&c| pm.state_of(c).ok() == Some(TxnState::Committed))
                    .map(|c| c.0 as u32)
                    .collect();
                let mut named = false;
                for (i, ok) in check.inputs_ok.iter().enumerate() {
                    if *ok {
                        continue;
                    }
                    let node = committed.get(i).copied().unwrap_or(u32::MAX);
                    report.violations.push(format!(
                        "shard {shard}: txn {node}: input condition fails on its \
                         assigned version state"
                    ));
                    report.offenders.push((shard, node));
                    named = true;
                }
                if !named {
                    report
                        .violations
                        .push(format!("shard {shard}: model check failed: {check:?}"));
                }
            }
            Err(e) => report
                .violations
                .push(format!("shard {shard}: extraction failed: {e}")),
        }
    }
    report
}

/// A flight-recorder dump produced when verification fails.
#[derive(Debug, Clone)]
pub struct ViolationDump {
    /// The full drained event stream, JSONL-encoded (see `ks-obs::json`).
    pub jsonl: String,
    /// Every transaction's stitched timeline (causal edges mirrored).
    pub timelines: Vec<TxnTimeline>,
    /// Human summary: each violation, the offender's timeline, and the
    /// causal decision event that produced the bad state.
    pub summary: String,
}

/// Verify, and on failure drain `recorder` into a [`ViolationDump`] whose
/// summary names, per offender, the transaction, the entity, and the
/// protocol decision event the failure traces back to.
pub fn verify_with_dump(
    managers: &[ProtocolManager],
    recorder: &Recorder,
) -> (VerifyReport, Option<ViolationDump>) {
    let report = verify_managers(managers);
    if report.is_correct() {
        return (report, None);
    }
    let events = recorder.drain();
    let timelines = stitch(&events);
    let mut summary = String::new();
    for violation in &report.violations {
        summary.push_str(violation);
        summary.push('\n');
    }
    if recorder.dropped() > 0 {
        summary.push_str(&format!(
            "(flight recorder overwrote {} events; timelines may be partial)\n",
            recorder.dropped()
        ));
    }
    for &(shard, node) in &report.offenders {
        let Some(tl) = timelines
            .iter()
            .find(|t| t.shard == shard as u32 && t.txn == node)
        else {
            summary.push_str(&format!(
                "shard {shard} txn {node}: no flight-recorder events retained\n"
            ));
            continue;
        };
        summary.push_str(&format!("--- {}\n", tl.summary()));
        match tl.causal_decision() {
            Some(cause) => {
                summary.push_str(&format!("    caused by: {}\n", event_to_json(cause)));
            }
            None => summary.push_str("    no decision event retained\n"),
        }
        for ev in &tl.events {
            summary.push_str(&format!("    {}\n", event_to_json(ev)));
        }
    }
    let dump = ViolationDump {
        jsonl: to_jsonl(&events),
        timelines,
        summary,
    };
    (report, Some(dump))
}
