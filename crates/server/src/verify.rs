//! Post-run correctness verification: every shard certifier re-checks
//! its own history offline against its backend's correctness criterion.
//!
//! This is the service's ground truth: whatever interleaving the workers
//! served, the committed transactions of each shard must satisfy what
//! the backend promised. The CPC backend extracts a model execution
//! ([`ks_protocol::extract`]) and checks the paper's parent-based
//! criterion with `ks_core::check`; the SSI and 2PL backends promise
//! *serializability*, so their recorded histories go through the
//! Biswas–Enea-style conflict-graph check (`ks_protocol::history`) —
//! polynomial and exact because the version order is known. Both paths
//! run behind [`Certifier::verify_history`]; this module only aggregates
//! per-shard verdicts into a service-level [`VerifyReport`].
//!
//! When a check fails **and** the run carried a flight recorder,
//! [`verify_certifiers_with_dump`] turns the failure into a
//! [`ViolationDump`]: the full JSONL event stream plus, for each
//! offending transaction, its causally-stitched timeline and the
//! protocol decision that produced the bad state — the difference
//! between "shard 0 failed" and "txn 2's input condition fails because
//! version 1 of entity 0 was force-assigned".

use ks_obs::to_jsonl;
use ks_obs::{event_to_json, stitch, Recorder, TxnTimeline};
use ks_protocol::Certifier;

/// Outcome of verifying a set of shard certifiers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Shards checked.
    pub shards: usize,
    /// Committed transactions across all shards.
    pub committed: usize,
    /// Human-readable descriptions of every violation found (empty ⇔ the
    /// run was correct).
    pub violations: Vec<String>,
    /// The offending transactions, when attributable: `(shard, node
    /// index)` pairs matching the `txn` stamp of flight-recorder events.
    pub offenders: Vec<(usize, u32)>,
}

impl VerifyReport {
    /// Did every shard's execution check out?
    pub fn is_correct(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify the certifiers returned by
/// [`TxnService::shutdown`](crate::TxnService::shutdown): each shard is
/// checked by its backend's own offline oracle, and the verdicts are
/// aggregated with shard-prefixed messages.
pub fn verify_certifiers(certifiers: &[Box<dyn Certifier>]) -> VerifyReport {
    let mut report = VerifyReport {
        shards: certifiers.len(),
        ..VerifyReport::default()
    };
    for (shard, cert) in certifiers.iter().enumerate() {
        let verdict = cert.verify_history();
        report.committed += verdict.committed;
        for violation in verdict.violations {
            report
                .violations
                .push(format!("shard {shard}: {violation}"));
        }
        for node in verdict.offenders {
            report.offenders.push((shard, node));
        }
    }
    report
}

/// Deprecated alias of [`verify_certifiers`], kept for one release.
#[deprecated(since = "0.3.0", note = "use `verify_certifiers`")]
pub fn verify_managers(certifiers: &[Box<dyn Certifier>]) -> VerifyReport {
    verify_certifiers(certifiers)
}

/// A flight-recorder dump produced when verification fails.
#[derive(Debug, Clone)]
pub struct ViolationDump {
    /// The full drained event stream, JSONL-encoded (see `ks-obs::json`).
    pub jsonl: String,
    /// Every transaction's stitched timeline (causal edges mirrored).
    pub timelines: Vec<TxnTimeline>,
    /// Human summary: each violation, the offender's timeline, and the
    /// causal decision event that produced the bad state.
    pub summary: String,
}

/// Verify, and on failure drain `recorder` into a [`ViolationDump`] whose
/// summary names, per offender, the transaction, the entity, and the
/// protocol decision event the failure traces back to.
pub fn verify_certifiers_with_dump(
    certifiers: &[Box<dyn Certifier>],
    recorder: &Recorder,
) -> (VerifyReport, Option<ViolationDump>) {
    let report = verify_certifiers(certifiers);
    if report.is_correct() {
        return (report, None);
    }
    let events = recorder.drain();
    let timelines = stitch(&events);
    let mut summary = String::new();
    for violation in &report.violations {
        summary.push_str(violation);
        summary.push('\n');
    }
    if recorder.dropped() > 0 {
        summary.push_str(&format!(
            "(flight recorder overwrote {} events; timelines may be partial)\n",
            recorder.dropped()
        ));
    }
    for &(shard, node) in &report.offenders {
        let Some(tl) = timelines
            .iter()
            .find(|t| t.shard == shard as u32 && t.txn == node)
        else {
            summary.push_str(&format!(
                "shard {shard} txn {node}: no flight-recorder events retained\n"
            ));
            continue;
        };
        summary.push_str(&format!("--- {}\n", tl.summary()));
        match tl.causal_decision() {
            Some(cause) => {
                summary.push_str(&format!("    caused by: {}\n", event_to_json(cause)));
            }
            None => summary.push_str("    no decision event retained\n"),
        }
        for ev in &tl.events {
            summary.push_str(&format!("    {}\n", event_to_json(ev)));
        }
    }
    let dump = ViolationDump {
        jsonl: to_jsonl(&events),
        timelines,
        summary,
    };
    (report, Some(dump))
}

/// Deprecated alias of [`verify_certifiers_with_dump`], kept for one
/// release.
#[deprecated(since = "0.3.0", note = "use `verify_certifiers_with_dump`")]
pub fn verify_with_dump(
    certifiers: &[Box<dyn Certifier>],
    recorder: &Recorder,
) -> (VerifyReport, Option<ViolationDump>) {
    verify_certifiers_with_dump(certifiers, recorder)
}
