//! Post-run correctness verification: drain the shard managers through
//! [`ks_protocol::extract`] and check every shard's execution against the
//! formal model with [`ks_core::check`].
//!
//! This is the service's ground truth: whatever interleaving the workers
//! served, the committed transactions of each shard must form a correct
//! execution in the paper's sense (parent-based version function, input
//! and output conditions, partial order).

use ks_protocol::{extract, ProtocolManager};

/// Outcome of verifying a set of shard managers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Shards checked.
    pub shards: usize,
    /// Committed transactions across all shards.
    pub committed: usize,
    /// Human-readable descriptions of every violation found (empty ⇔ the
    /// run was correct).
    pub violations: Vec<String>,
}

impl VerifyReport {
    /// Did every shard's execution check out?
    pub fn is_correct(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify the managers returned by
/// [`TxnService::shutdown`](crate::TxnService::shutdown).
pub fn verify_managers(managers: &[ProtocolManager]) -> VerifyReport {
    let mut report = VerifyReport {
        shards: managers.len(),
        ..VerifyReport::default()
    };
    for (shard, pm) in managers.iter().enumerate() {
        match extract::model_execution(pm, pm.root()) {
            Ok((txn, parent, exec)) => {
                report.committed += txn.children().len();
                let check = ks_core::check::check(pm.schema(), &txn, &parent, &exec);
                if !check.is_correct_parent_based() {
                    report
                        .violations
                        .push(format!("shard {shard}: model check failed: {check:?}"));
                }
            }
            Err(e) => report
                .violations
                .push(format!("shard {shard}: extraction failed: {e}")),
        }
    }
    report
}
