//! Bounded jittered exponential backoff, shared by every retry loop in
//! the stack.
//!
//! The schedule is the one the networked client has always used: attempt
//! `n` (1-based) waits `min(cap, base·2^(n−1))`, jittered by a uniform
//! draw from `[delay/2, delay]` so synchronized clients decorrelate
//! instead of stampeding in lock-step. This module makes that policy a
//! named, reusable thing — the `ks-net` retry envelope, the in-process
//! retry-on-[`Busy`](crate::ServerError::Busy) loops in drivers and
//! tests, and the bench harness all draw from the same curve instead of
//! burning a core in `yield_now` spins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The raw schedule: `min(cap, base·2^(attempt−1))`, jittered into
/// `[delay/2, delay]`. `attempt` is 1-based; a zero `base` is clamped to
/// 1µs so the exponential has somewhere to start, and `cap` never cuts
/// below `base`.
pub fn jittered_delay(rng: &mut StdRng, base: Duration, cap: Duration, attempt: u32) -> Duration {
    let base = base.max(Duration::from_micros(1));
    let exp = base.saturating_mul(1u32 << (attempt.saturating_sub(1)).min(20));
    let delay = exp.min(cap.max(base));
    let ns = delay.as_nanos() as u64;
    Duration::from_nanos(rng.random_range(ns / 2..=ns))
}

/// A retry loop's backoff state: attempt counter plus jitter RNG.
///
/// ```
/// use ks_server::backoff::Backoff;
/// use std::time::Duration;
///
/// let mut backoff = Backoff::new(Duration::from_micros(5), Duration::from_micros(50), 7);
/// for _ in 0..3 {
///     // ... attempt the operation; on a retryable error:
///     let d = backoff.next_delay();
///     assert!(d <= Duration::from_micros(50));
/// }
/// backoff.reset(); // operation succeeded; next failure starts cold
/// ```
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// A fresh schedule. `seed` keys the jitter — give concurrent loops
    /// distinct seeds so they decorrelate.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The delay for the next attempt (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        self.attempt = self.attempt.saturating_add(1);
        jittered_delay(&mut self.rng, self.base, self.cap, self.attempt)
    }

    /// Sleep for [`next_delay`](Backoff::next_delay). The convenience
    /// form for retry-on-`Busy` loops that used to `yield_now`.
    pub fn snooze(&mut self) {
        std::thread::sleep(self.next_delay());
    }

    /// Forget accumulated attempts (call after a success so the next
    /// failure starts from `base` again).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_bounded_and_grows_toward_cap() {
        let base = Duration::from_micros(10);
        let cap = Duration::from_micros(80);
        let mut rng = StdRng::seed_from_u64(42);
        for attempt in 1..=12 {
            let ceiling = base.saturating_mul(1u32 << (attempt - 1).min(20)).min(cap);
            let d = jittered_delay(&mut rng, base, cap, attempt);
            assert!(d <= ceiling, "attempt {attempt}: {d:?} > {ceiling:?}");
            assert!(
                d >= ceiling / 2,
                "attempt {attempt}: {d:?} < {:?}",
                ceiling / 2
            );
        }
    }

    #[test]
    fn zero_base_is_clamped_not_divided_by_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = jittered_delay(&mut rng, Duration::ZERO, Duration::ZERO, 1);
        assert!(d <= Duration::from_micros(1));
    }

    #[test]
    fn reset_restarts_the_exponential() {
        let mut b = Backoff::new(Duration::from_micros(4), Duration::from_millis(1), 9);
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert!(b.next_delay() <= Duration::from_micros(4));
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = Backoff::new(Duration::from_millis(1), Duration::from_secs(1), 1);
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_secs(1), 2);
        let draws_a: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let draws_b: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(draws_a, draws_b);
    }
}
