//! Blocking client handles: request/reply rendezvous with the shard
//! workers.
//!
//! A [`Session`] is cheap, `Send`, and owned by one client thread. Every
//! call routes to the owning shard's queue (`try_send`, shedding with
//! [`ServerError::Backpressure`] when full), then blocks on a one-shot
//! reply channel up to the configured timeout. Sessions speak **global**
//! entity ids; translation to shard-local ids happens here, at the
//! boundary.

use crate::service::Shared;
use crate::worker::{Request, Routed};
use crate::ServerError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use ks_core::Specification;
use ks_kernel::{EntityId, Value};
use ks_obs::ObsKind;
use ks_protocol::Txn;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// A transaction opened through a [`Session`]: the owning shard plus the
/// shard-local protocol handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnHandle {
    pub(crate) shard: usize,
    pub(crate) txn: Txn,
}

impl TxnHandle {
    /// The shard serving this transaction.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// One client's blocking handle onto the service.
pub struct Session {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("shards", &self.shared.map.shards())
            .finish()
    }
}

impl Session {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        Session { shared }
    }

    /// Define a transaction from its `(I_t, O_t)` specification. The spec
    /// (global ids) picks the home shard; specs spanning shards are
    /// rejected with [`ServerError::CrossShard`].
    pub fn define(&self, spec: &Specification) -> Result<TxnHandle, ServerError> {
        self.define_ordered(spec, &[])
    }

    /// Like [`Session::define`], but ordered **after** the given sibling
    /// transactions in the root's partial order (the paper's cooperation
    /// chains). Predecessors must live on the spec's home shard; commit
    /// replies [`ServerError::Busy`] until they have committed.
    pub fn define_ordered(
        &self,
        spec: &Specification,
        after: &[TxnHandle],
    ) -> Result<TxnHandle, ServerError> {
        let shard = self.shared.map.home_shard(spec)?;
        if after.iter().any(|h| h.shard != shard) {
            return Err(ServerError::CrossShard);
        }
        let local = self.shared.map.localize_spec(shard, spec);
        let after: Vec<Txn> = after.iter().map(|h| h.txn).collect();
        let txn = self.call(shard, |reply| Request::Define {
            spec: local,
            after,
            reply,
        })?;
        Ok(TxnHandle { shard, txn })
    }

    /// Validate: `R_v` locks plus a version assignment for the input
    /// predicate. [`ServerError::Busy`] means a sibling must finish
    /// first — retry.
    pub fn validate(&self, handle: TxnHandle) -> Result<(), ServerError> {
        let strategy = self.shared.config.strategy;
        self.call(handle.shard, |reply| Request::Validate {
            txn: handle.txn,
            strategy,
            reply,
        })
    }

    /// Read entity `entity` (global id) through the transaction's
    /// assigned version.
    pub fn read(&self, handle: TxnHandle, entity: EntityId) -> Result<Value, ServerError> {
        let entity = self.localize(handle, entity)?;
        self.call(handle.shard, |reply| Request::Read {
            txn: handle.txn,
            entity,
            reply,
        })
    }

    /// Write `value` to entity `entity` (global id), creating a new
    /// version visible to siblings.
    pub fn write(
        &self,
        handle: TxnHandle,
        entity: EntityId,
        value: Value,
    ) -> Result<(), ServerError> {
        let entity = self.localize(handle, entity)?;
        self.call(handle.shard, |reply| Request::Write {
            txn: handle.txn,
            entity,
            value,
            reply,
        })
    }

    /// Commit; the worker checks the output condition and sibling order.
    pub fn commit(&self, handle: TxnHandle) -> Result<(), ServerError> {
        self.call(handle.shard, |reply| Request::Commit {
            txn: handle.txn,
            reply,
        })
    }

    /// Abort (idempotent: acknowledging a re-eval abort is not an error).
    pub fn abort(&self, handle: TxnHandle) -> Result<(), ServerError> {
        self.call(handle.shard, |reply| Request::Abort {
            txn: handle.txn,
            reply,
        })
    }

    fn localize(&self, handle: TxnHandle, entity: EntityId) -> Result<EntityId, ServerError> {
        if self.shared.map.shard_of(entity) != handle.shard {
            return Err(ServerError::CrossShard);
        }
        Ok(self.shared.map.to_local(entity))
    }

    /// Route one request and rendezvous on its reply channel.
    fn call<T>(
        &self,
        shard: usize,
        request: impl FnOnce(Sender<Result<T, ServerError>>) -> Request,
    ) -> Result<T, ServerError> {
        let (tx, rx): (_, Receiver<Result<T, ServerError>>) = bounded(1);
        let request = request(tx);
        if let Some(obs) = &self.shared.obs {
            obs.emit_for(
                shard as u32,
                request.txn_u32(),
                ObsKind::Enqueue { op: request.op() },
            );
        }
        let start = Instant::now();
        let routed = Routed {
            enqueued: start,
            request,
        };
        match self.shared.senders[shard].try_send(routed) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                crate::metrics::ServerMetrics::add(&self.shared.metrics.backpressure);
                return Err(ServerError::Backpressure);
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServerError::Shutdown),
        }
        match rx.recv_timeout(self.shared.config.request_timeout) {
            Ok(result) => {
                self.shared.metrics.record_latency(shard, start.elapsed());
                result
            }
            Err(RecvTimeoutError::Timeout) => {
                crate::metrics::ServerMetrics::add(&self.shared.metrics.timeouts);
                Err(ServerError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServerError::Shutdown),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.shared
            .metrics
            .sessions_in_flight
            .fetch_sub(1, Ordering::Relaxed);
    }
}
