//! Blocking in-process client handles: request/reply rendezvous with the
//! shard workers.
//!
//! A [`Session`] is cheap, `Send`, and owned by one client thread. It is
//! the in-process implementation of the transport-generic
//! [`Client`](crate::Client) contract: every call routes to the owning
//! shard's queue (`try_send`, shedding with
//! [`ServerError::Backpressure`] when full), then blocks on a one-shot
//! reply channel up to the configured timeout. Sessions speak **global**
//! entity ids; translation to shard-local ids happens here, at the
//! boundary.
//!
//! Transient outcomes ([`ServerError::Busy`],
//! [`ServerError::Backpressure`], [`ServerError::Timeout`]) are
//! classified by [`ServerError::is_retryable`]; callers retry them with
//! the shared bounded jittered [`Backoff`](crate::backoff::Backoff) —
//! the same schedule remote callers use on the wire.

use crate::client::{BatchOp, BatchReply, Client, TxnBuilder};
use crate::service::Shared;
use crate::worker::{Request, Routed};
use crate::ServerError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use ks_kernel::{EntityId, Value};
use ks_obs::{derive_trace_id, trace_sampled, ObsKind, SpanHop};
use ks_predicate::Strategy;
use ks_protocol::Txn;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A transaction opened through a [`Session`]: the owning shard plus the
/// shard-local protocol handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnHandle {
    pub(crate) shard: usize,
    pub(crate) txn: Txn,
}

impl TxnHandle {
    /// The shard serving this transaction.
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// One client's blocking handle onto the service.
pub struct Session {
    shared: Arc<Shared>,
    /// Per-transaction strategy overrides declared at
    /// [`TxnBuilder::strategy`], consumed at validation and dropped on
    /// terminal outcomes.
    strategies: Mutex<HashMap<TxnHandle, Strategy>>,
    /// Wire-propagated trace id for the *next* call (`0` = none), set by
    /// a transport adapter via [`Session::set_trace`] and consumed per
    /// call.
    wire_trace: AtomicU64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("shards", &self.shared.map.shards())
            .finish()
    }
}

impl Session {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        Session {
            shared,
            strategies: Mutex::new(HashMap::new()),
            wire_trace: AtomicU64::new(0),
        }
    }

    /// Associate the next call on this session with a wire-propagated
    /// distributed trace id (`0` clears). Transport adapters — the
    /// `ks-net` connection handler — call this before dispatching a
    /// decoded request, so the server-side `Queue`/`Exec`/`Certify`/WAL
    /// spans join the trace the remote client originated. The id is
    /// consumed by exactly one call; a session that originates its own
    /// traces instead uses the service's `trace_sample` rate.
    pub fn set_trace(&self, trace: u64) {
        self.wire_trace.store(trace, Ordering::Relaxed);
    }

    /// Drop a transaction's strategy override once its outcome is
    /// terminal (anything but a retryable error keeps the handle dead or
    /// done either way).
    fn forget_if_terminal<T>(&self, handle: TxnHandle, result: &Result<T, ServerError>) {
        let transient = matches!(result, Err(e) if e.is_retryable());
        if !transient {
            self.strategies.lock().remove(&handle);
        }
    }

    fn localize(&self, handle: TxnHandle, entity: EntityId) -> Result<EntityId, ServerError> {
        if self.shared.map.shard_of(entity) != handle.shard {
            return Err(ServerError::CrossShard);
        }
        Ok(self.shared.map.to_local(entity))
    }

    /// Route one request and rendezvous on its reply channel.
    ///
    /// Tracing: a wire-propagated id (see [`Session::set_trace`]) is
    /// always honoured; otherwise, with a recorder attached and
    /// `trace_sample > 0`, the session *originates* a trace for a
    /// sampled subset of calls — those additionally get the client-side
    /// `Request` span. Either way the traced call opens the `Queue` span
    /// here; the shard worker closes it at dequeue.
    fn call<T>(
        &self,
        shard: usize,
        request: impl FnOnce(Sender<Result<T, ServerError>>) -> Request,
    ) -> Result<T, ServerError> {
        let (tx, rx): (_, Receiver<Result<T, ServerError>>) = bounded(1);
        let request = request(tx);
        let (op, txn32) = (request.op(), request.txn_u32());
        let wire = self.wire_trace.swap(0, Ordering::Relaxed);
        let (trace, originated) = match (&self.shared.obs, wire) {
            (Some(_), w) if w != 0 => (w, false),
            (Some(obs), _) if self.shared.config.trace_sample > 0.0 && obs.is_enabled() => {
                let seq = self.shared.trace_seq.fetch_add(1, Ordering::Relaxed);
                let t = derive_trace_id(seq);
                if trace_sampled(t, self.shared.config.trace_sample) {
                    (t, true)
                } else {
                    (0, false)
                }
            }
            _ => (0, false),
        };
        let span = |kind: ObsKind| {
            if let Some(obs) = &self.shared.obs {
                obs.emit_for(shard as u32, txn32, kind);
            }
        };
        if let Some(obs) = &self.shared.obs {
            obs.emit_for(shard as u32, txn32, ObsKind::Enqueue { op });
        }
        if trace != 0 {
            if originated {
                span(ObsKind::SpanStart {
                    hop: SpanHop::Request,
                    op,
                    trace,
                });
            }
            span(ObsKind::SpanStart {
                hop: SpanHop::Queue,
                op,
                trace,
            });
        }
        let depth = self.shared.senders[shard].len() as u64;
        let start = Instant::now();
        let routed = Routed {
            enqueued: start,
            trace,
            request,
        };
        // A shed or dead-service call still closes the spans it opened,
        // so sampled failures don't dangle in the trace export.
        let close_unrouted = |ok: bool| {
            if trace != 0 {
                span(ObsKind::SpanEnd {
                    hop: SpanHop::Queue,
                    ok,
                    trace,
                });
                if originated {
                    span(ObsKind::SpanEnd {
                        hop: SpanHop::Request,
                        ok,
                        trace,
                    });
                }
            }
        };
        match self.shared.senders[shard].try_send(routed) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                crate::metrics::ServerMetrics::add(&self.shared.metrics.backpressure);
                close_unrouted(false);
                return Err(ServerError::Backpressure);
            }
            Err(TrySendError::Disconnected(_)) => {
                close_unrouted(false);
                return Err(ServerError::Shutdown);
            }
        }
        let result = match rx.recv_timeout(self.shared.config.request_timeout) {
            Ok(result) => {
                let elapsed = start.elapsed();
                self.shared.metrics.record_latency(shard, elapsed);
                self.shared.metrics.telemetry.record_request(
                    elapsed.as_nanos() as u64,
                    op == ks_obs::OpCode::Commit && result.is_ok(),
                    matches!(
                        result,
                        Err(ServerError::ReEvalAborted) | Err(ServerError::Rejected(_))
                    ),
                    depth,
                );
                result
            }
            Err(RecvTimeoutError::Timeout) => {
                crate::metrics::ServerMetrics::add(&self.shared.metrics.timeouts);
                self.shared.metrics.telemetry.record_request(
                    start.elapsed().as_nanos() as u64,
                    false,
                    false,
                    depth,
                );
                Err(ServerError::Timeout)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServerError::Shutdown),
        };
        if trace != 0 && originated {
            span(ObsKind::SpanEnd {
                hop: SpanHop::Request,
                ok: result.is_ok(),
                trace,
            });
        }
        result
    }
}

impl Client for Session {
    type Handle = TxnHandle;

    /// Open a transaction. The spec (global ids) picks the home shard;
    /// specs spanning shards — and ordering edges to transactions of
    /// other shards — are rejected with [`ServerError::CrossShard`]. A
    /// pinned backend expectation that disagrees with the service's
    /// configured backend fails closed with
    /// [`ServerError::BackendMismatch`].
    fn open(&self, txn: TxnBuilder<TxnHandle>) -> Result<TxnHandle, ServerError> {
        let (spec, after, before, strategy, backend) = txn.into_parts();
        if let Some(expected) = backend {
            let running = self.shared.config.backend;
            if expected != running {
                return Err(ServerError::BackendMismatch(format!(
                    "client pinned {expected}, server runs {running}"
                )));
            }
        }
        let shard = self.shared.map.home_shard(&spec)?;
        if after.iter().chain(&before).any(|h| h.shard != shard) {
            return Err(ServerError::CrossShard);
        }
        let local = self.shared.map.localize_spec(shard, &spec);
        let after: Vec<Txn> = after.iter().map(|h| h.txn).collect();
        let before: Vec<Txn> = before.iter().map(|h| h.txn).collect();
        let txn = self.call(shard, |reply| Request::Define {
            spec: local,
            after,
            before,
            reply,
        })?;
        let handle = TxnHandle { shard, txn };
        if let Some(s) = strategy {
            self.strategies.lock().insert(handle, s);
        }
        Ok(handle)
    }

    fn validate(&self, handle: TxnHandle) -> Result<(), ServerError> {
        let strategy = self
            .strategies
            .lock()
            .get(&handle)
            .copied()
            .unwrap_or(self.shared.config.strategy);
        self.call(handle.shard, |reply| Request::Validate {
            txn: handle.txn,
            strategy,
            reply,
        })
    }

    fn read(&self, handle: TxnHandle, entity: EntityId) -> Result<Value, ServerError> {
        let entity = self.localize(handle, entity)?;
        self.call(handle.shard, |reply| Request::Read {
            txn: handle.txn,
            entity,
            reply,
        })
    }

    fn write(&self, handle: TxnHandle, entity: EntityId, value: Value) -> Result<(), ServerError> {
        let entity = self.localize(handle, entity)?;
        self.call(handle.shard, |reply| Request::Write {
            txn: handle.txn,
            entity,
            value,
            reply,
        })
    }

    fn commit(&self, handle: TxnHandle) -> Result<(), ServerError> {
        let result = self.call(handle.shard, |reply| Request::Commit {
            txn: handle.txn,
            reply,
        });
        self.forget_if_terminal(handle, &result);
        result
    }

    fn abort(&self, handle: TxnHandle) -> Result<(), ServerError> {
        let result = self.call(handle.shard, |reply| Request::Abort {
            txn: handle.txn,
            reply,
        });
        self.forget_if_terminal(handle, &result);
        result
    }

    /// One worker rendezvous for the whole burst instead of one per op:
    /// entities are localized up front, then the ops travel as a single
    /// [`Request::OpBatch`]. A burst touching an entity outside the
    /// transaction's shard falls back to the per-op path, which reports
    /// [`ServerError::CrossShard`] on exactly the offending ops.
    fn run_batch(
        &self,
        handle: TxnHandle,
        ops: &[BatchOp],
    ) -> Result<Vec<Result<BatchReply, ServerError>>, ServerError> {
        let mut local = Vec::with_capacity(ops.len());
        for op in ops {
            let localized = match *op {
                BatchOp::Read(e) => self.localize(handle, e).map(BatchOp::Read),
                BatchOp::Write(e, v) => self.localize(handle, e).map(|le| BatchOp::Write(le, v)),
            };
            match localized {
                Ok(op) => local.push(op),
                Err(_) => return crate::client::per_op_batch(self, handle, ops),
            }
        }
        self.call(handle.shard, |reply| Request::OpBatch {
            txn: handle.txn,
            ops: local,
            reply,
        })
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.shared
            .metrics
            .sessions_in_flight
            .fetch_sub(1, Ordering::Relaxed);
    }
}
