//! Live service counters and latency distributions.
//!
//! All counters are lock-free atomics updated on the request path. Latency
//! distributions are fixed power-of-two-bucket histograms (64 buckets,
//! bucket `i` covering `[2^i, 2^(i+1))` ns) so quantiles come from a
//! single pass with no allocation and bounded (≤ 2×) relative error.
//! Round-trip latency is kept **per shard** (one histogram each), and the
//! worker splits every request into its queue-wait and execute portions,
//! so a slow shard or a queueing collapse is visible directly instead of
//! being averaged away in one global distribution.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Lock-free histogram of request latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a raw count observation (same log₂ bucketing, the unit is
    /// just "items" instead of nanoseconds) — used for batch-size
    /// distributions, where [`quantile`] then answers "how big is the
    /// p99 batch".
    pub fn record_n(&self, n: u64) {
        let n = n.max(1);
        let bucket = (63 - n.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the bucket counts.
    pub fn counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Quantile `q ∈ [0, 1]` of a bucket snapshot, as the upper edge of the
/// bucket holding the q-th observation. `None` when empty. Only the last
/// bucket (63), whose upper edge `2^64` is unrepresentable, saturates to
/// `u64::MAX` ns.
pub fn quantile(counts: &[u64; BUCKETS], q: f64) -> Option<Duration> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            let upper_ns = if i + 1 >= BUCKETS {
                u64::MAX
            } else {
                1u64 << (i + 1)
            };
            return Some(Duration::from_nanos(upper_ns));
        }
    }
    None
}

fn quantiles_of(counts: &[u64; BUCKETS]) -> (Option<Duration>, Option<Duration>) {
    (quantile(counts, 0.50), quantile(counts, 0.99))
}

/// Shared mutable counters; one instance per service, updated by sessions
/// and workers.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Currently open sessions.
    pub sessions_in_flight: AtomicUsize,
    /// Sessions ever admitted.
    pub sessions_admitted: AtomicU64,
    /// `session()` calls shed by admission control.
    pub sessions_shed: AtomicU64,
    /// Requests that received a reply (any outcome).
    pub requests: AtomicU64,
    /// Requests shed because a shard queue was full.
    pub backpressure: AtomicU64,
    /// Requests that timed out waiting for a reply.
    pub timeouts: AtomicU64,
    /// Transactions committed through the service.
    pub committed: AtomicU64,
    /// Calls rejected by the protocol manager.
    pub rejected: AtomicU64,
    /// Versions re-assigned by the Figure 4 re-eval procedure.
    pub re_assigns: AtomicU64,
    /// Transactions aborted by re-eval.
    pub reeval_aborts: AtomicU64,
    /// Time requests spent queued (enqueue → worker dequeue).
    pub queue_wait: LatencyHistogram,
    /// Time the worker spent executing (dequeue → reply sent).
    pub exec_time: LatencyHistogram,
    /// Ops-per-`run_batch` distribution (count-valued, see
    /// [`LatencyHistogram::record_n`]).
    pub op_batch: LatencyHistogram,
    /// Requests-drained-per-worker-wakeup distribution (count-valued).
    pub drain_batch: LatencyHistogram,
    /// Windowed time-series telemetry (1 s latency-histogram windows,
    /// throughput/abort-rate/queue-depth/flush series) feeding
    /// incremental [`TelemetryDelta`](ks_obs::TelemetryDelta) exports
    /// and SLO checks — unlike the counters above, it can answer "what
    /// was p99 *over the last N seconds*", not just since startup.
    pub telemetry: ks_obs::TelemetrySeries,
    /// Request round-trip latencies (measured at the session), per shard.
    shard_latency: Vec<LatencyHistogram>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new(1)
    }
}

impl ServerMetrics {
    /// Metrics for a service of `shards` shards (one round-trip histogram
    /// each; at least one).
    pub fn new(shards: usize) -> Self {
        ServerMetrics {
            sessions_in_flight: AtomicUsize::new(0),
            sessions_admitted: AtomicU64::new(0),
            sessions_shed: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            backpressure: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            re_assigns: AtomicU64::new(0),
            reeval_aborts: AtomicU64::new(0),
            queue_wait: LatencyHistogram::default(),
            exec_time: LatencyHistogram::default(),
            op_batch: LatencyHistogram::default(),
            drain_batch: LatencyHistogram::default(),
            telemetry: ks_obs::TelemetrySeries::default(),
            shard_latency: (0..shards.max(1))
                .map(|_| LatencyHistogram::default())
                .collect(),
        }
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one round-trip latency against its shard's histogram
    /// (out-of-range shards land in the last one).
    pub fn record_latency(&self, shard: usize, latency: Duration) {
        let i = shard.min(self.shard_latency.len() - 1);
        self.shard_latency[i].record(latency);
    }

    /// The per-shard round-trip histograms.
    pub fn shard_latency(&self) -> &[LatencyHistogram] {
        &self.shard_latency
    }

    /// Materialize a consistent-enough view for reporting.
    pub fn snapshot(&self, queue_depths: Vec<usize>) -> MetricsSnapshot {
        // Aggregate counts across shards for the headline quantiles.
        let mut total = [0u64; BUCKETS];
        let mut shard_p50 = Vec::with_capacity(self.shard_latency.len());
        let mut shard_p99 = Vec::with_capacity(self.shard_latency.len());
        for h in &self.shard_latency {
            let counts = h.counts();
            for (t, c) in total.iter_mut().zip(&counts) {
                *t += c;
            }
            let (p50, p99) = quantiles_of(&counts);
            shard_p50.push(p50);
            shard_p99.push(p99);
        }
        let (p50, p99) = quantiles_of(&total);
        let (queue_wait_p50, queue_wait_p99) = quantiles_of(&self.queue_wait.counts());
        let (exec_p50, exec_p99) = quantiles_of(&self.exec_time.counts());
        MetricsSnapshot {
            sessions_in_flight: self.sessions_in_flight.load(Ordering::Relaxed),
            sessions_admitted: self.sessions_admitted.load(Ordering::Relaxed),
            sessions_shed: self.sessions_shed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            backpressure: self.backpressure.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            re_assigns: self.re_assigns.load(Ordering::Relaxed),
            reeval_aborts: self.reeval_aborts.load(Ordering::Relaxed),
            p50,
            p99,
            shard_p50,
            shard_p99,
            queue_wait_p50,
            queue_wait_p99,
            exec_p50,
            exec_p99,
            queue_depths,
        }
    }
}

/// A point-in-time copy of [`ServerMetrics`] plus derived quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Currently open sessions.
    pub sessions_in_flight: usize,
    /// Sessions ever admitted.
    pub sessions_admitted: u64,
    /// `session()` calls shed by admission control.
    pub sessions_shed: u64,
    /// Requests that received a reply.
    pub requests: u64,
    /// Requests shed on full queues.
    pub backpressure: u64,
    /// Reply timeouts.
    pub timeouts: u64,
    /// Commits.
    pub committed: u64,
    /// Protocol rejections.
    pub rejected: u64,
    /// Re-eval re-assignments.
    pub re_assigns: u64,
    /// Re-eval aborts.
    pub reeval_aborts: u64,
    /// Median request latency across all shards, if any completed.
    pub p50: Option<Duration>,
    /// 99th-percentile request latency across all shards.
    pub p99: Option<Duration>,
    /// Median round-trip latency per shard.
    pub shard_p50: Vec<Option<Duration>>,
    /// 99th-percentile round-trip latency per shard.
    pub shard_p99: Vec<Option<Duration>>,
    /// Median queue wait (enqueue → dequeue).
    pub queue_wait_p50: Option<Duration>,
    /// 99th-percentile queue wait.
    pub queue_wait_p99: Option<Duration>,
    /// Median execute time (dequeue → reply).
    pub exec_p50: Option<Duration>,
    /// 99th-percentile execute time.
    pub exec_p99: Option<Duration>,
    /// Per-shard request-queue depths at snapshot time.
    pub queue_depths: Vec<usize>,
}

/// Render an optional duration compactly (`-` when absent), stable for
/// column alignment: `640ns`, `8.2us`, `1.0ms`, `2.5s`.
pub fn fmt_duration(d: Option<Duration>) -> String {
    match d {
        None => "-".to_string(),
        Some(d) => {
            let ns = d.as_nanos();
            if ns >= 1_000_000_000 {
                format!("{:.1}s", d.as_secs_f64())
            } else if ns >= 1_000_000 {
                format!("{:.1}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}us", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
    }
}

impl MetricsSnapshot {
    /// Column headings matching [`MetricsSnapshot`]'s `Display` row —
    /// the one table format `exp_server_load`, `bench_server`, and
    /// `ks-top` all print.
    pub fn header() -> &'static str {
        "sess      req   commit   reject     bp    tmo reasgn reevab       p50       p99      qwait      exec  queues"
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let queues = self
            .queue_depths
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("/");
        write!(
            f,
            "{:>4} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>6} {:>9} {:>9} {:>10} {:>9}  {}",
            self.sessions_in_flight,
            self.requests,
            self.committed,
            self.rejected,
            self.backpressure,
            self.timeouts,
            self.re_assigns,
            self.reeval_aborts,
            fmt_duration(self.p50),
            fmt_duration(self.p99),
            fmt_duration(self.queue_wait_p99),
            fmt_duration(self.exec_p99),
            queues
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_micros(100)); // ~bucket 16
        let counts = h.counts();
        assert_eq!(counts[6], 99);
        let p50 = quantile(&counts, 0.50).unwrap();
        assert_eq!(p50, Duration::from_nanos(128));
        let p99 = quantile(&counts, 0.99).unwrap();
        assert_eq!(p99, Duration::from_nanos(128));
        let p999 = quantile(&counts, 0.999).unwrap();
        assert!(p999 > Duration::from_micros(64));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(quantile(&h.counts(), 0.5), None);
    }

    #[test]
    fn record_n_buckets_by_count() {
        let h = LatencyHistogram::default();
        h.record_n(0); // clamped to 1 → bucket 0
        h.record_n(1); // bucket 0
        h.record_n(6); // bucket 2: [4, 8)
        h.record_n(32); // bucket 5: [32, 64)
        let counts = h.counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[5], 1);
        // "p99 batch size" reads off the same quantile machinery.
        assert_eq!(quantile(&counts, 1.0), Some(Duration::from_nanos(64)));
    }

    /// Regression: bucket 62's upper edge is `2^63` ns, which is
    /// representable — an off-by-one in the saturation guard used to
    /// report it as `u64::MAX`. Only bucket 63 may saturate.
    #[test]
    fn bucket_62_reports_its_upper_edge_not_saturation() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(1u64 << 62));
        let counts = h.counts();
        assert_eq!(counts[62], 1);
        assert_eq!(
            quantile(&counts, 1.0),
            Some(Duration::from_nanos(1u64 << 63))
        );
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(u64::MAX));
        let counts = h.counts();
        assert_eq!(counts[63], 1);
        assert_eq!(quantile(&counts, 1.0), Some(Duration::from_nanos(u64::MAX)));
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = ServerMetrics::new(2);
        ServerMetrics::add(&m.requests);
        ServerMetrics::add(&m.committed);
        m.record_latency(0, Duration::from_micros(3));
        let snap = m.snapshot(vec![1, 2]);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.committed, 1);
        assert_eq!(snap.queue_depths, vec![1, 2]);
        assert!(snap.p50.is_some());
        assert!(snap.shard_p50[0].is_some());
        assert_eq!(snap.shard_p50[1], None);
    }

    #[test]
    fn per_shard_quantiles_separate_slow_shards() {
        let m = ServerMetrics::new(2);
        for _ in 0..100 {
            m.record_latency(0, Duration::from_nanos(100));
            m.record_latency(1, Duration::from_millis(10));
        }
        let snap = m.snapshot(vec![0, 0]);
        assert!(snap.shard_p50[0].unwrap() < Duration::from_micros(1));
        assert!(snap.shard_p50[1].unwrap() >= Duration::from_millis(8));
        // The aggregate sees both populations.
        assert!(snap.p99.unwrap() >= Duration::from_millis(8));
    }

    #[test]
    fn display_row_matches_header_column_count() {
        let m = ServerMetrics::new(2);
        m.record_latency(0, Duration::from_micros(5));
        let snap = m.snapshot(vec![3, 4]);
        let header_cols = MetricsSnapshot::header().split_whitespace().count();
        let row_cols = snap.to_string().split_whitespace().count();
        assert_eq!(
            header_cols,
            row_cols,
            "{}\n{snap}",
            MetricsSnapshot::header()
        );
    }

    /// N writer threads hammer counters and per-shard histograms while a
    /// reader snapshots concurrently: counters must be monotone across
    /// snapshots, and the final histogram mass must equal the number of
    /// recordings.
    #[test]
    fn threaded_recording_is_monotone_and_conserves_mass() {
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 5_000;
        let m = ServerMetrics::new(WRITERS);
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let m = &m;
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        ServerMetrics::add(&m.requests);
                        if i % 2 == 0 {
                            ServerMetrics::add(&m.committed);
                        }
                        m.record_latency(w, Duration::from_nanos(100 + i));
                        m.queue_wait.record(Duration::from_nanos(50));
                        m.exec_time.record(Duration::from_nanos(200));
                    }
                });
            }
            scope.spawn(|| {
                let mut last_requests = 0;
                let mut last_committed = 0;
                for _ in 0..200 {
                    let snap = m.snapshot(Vec::new());
                    assert!(snap.requests >= last_requests, "requests went backwards");
                    assert!(snap.committed >= last_committed, "commits went backwards");
                    assert!(snap.committed <= snap.requests);
                    last_requests = snap.requests;
                    last_committed = snap.committed;
                }
            });
        });
        let expected = (WRITERS as u64) * PER_WRITER;
        let snap = m.snapshot(Vec::new());
        assert_eq!(snap.requests, expected);
        let mass: u64 = m
            .shard_latency()
            .iter()
            .map(|h| h.counts().iter().sum::<u64>())
            .sum();
        assert_eq!(mass, expected, "histogram observations lost or duplicated");
        let queue_mass: u64 = m.queue_wait.counts().iter().sum();
        assert_eq!(queue_mass, expected);
    }
}
