//! Live service counters and latency distribution.
//!
//! All counters are lock-free atomics updated on the request path; the
//! latency distribution is a fixed power-of-two-bucket histogram (64
//! buckets, bucket `i` covering `[2^i, 2^(i+1))` ns) so p50/p99 come from
//! a single pass with no allocation and bounded (≤ 2×) relative error.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Lock-free histogram of request latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().max(1) as u64;
        let bucket = (63 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the bucket counts.
    pub fn counts(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Quantile `q ∈ [0, 1]` of a bucket snapshot, as the upper edge of the
/// bucket holding the q-th observation. `None` when empty.
pub fn quantile(counts: &[u64; BUCKETS], q: f64) -> Option<Duration> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            let upper_ns = if i + 1 >= 63 {
                u64::MAX
            } else {
                1u64 << (i + 1)
            };
            return Some(Duration::from_nanos(upper_ns));
        }
    }
    None
}

/// Shared mutable counters; one instance per service, updated by sessions
/// and workers.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Currently open sessions.
    pub sessions_in_flight: AtomicUsize,
    /// Sessions ever admitted.
    pub sessions_admitted: AtomicU64,
    /// `session()` calls shed by admission control.
    pub sessions_shed: AtomicU64,
    /// Requests that received a reply (any outcome).
    pub requests: AtomicU64,
    /// Requests shed because a shard queue was full.
    pub backpressure: AtomicU64,
    /// Requests that timed out waiting for a reply.
    pub timeouts: AtomicU64,
    /// Transactions committed through the service.
    pub committed: AtomicU64,
    /// Calls rejected by the protocol manager.
    pub rejected: AtomicU64,
    /// Versions re-assigned by the Figure 4 re-eval procedure.
    pub re_assigns: AtomicU64,
    /// Transactions aborted by re-eval.
    pub reeval_aborts: AtomicU64,
    /// Request round-trip latencies (measured at the session).
    pub latency: LatencyHistogram,
}

impl ServerMetrics {
    #[inline]
    pub(crate) fn add(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Materialize a consistent-enough view for reporting.
    pub fn snapshot(&self, queue_depths: Vec<usize>) -> MetricsSnapshot {
        let counts = self.latency.counts();
        MetricsSnapshot {
            sessions_in_flight: self.sessions_in_flight.load(Ordering::Relaxed),
            sessions_admitted: self.sessions_admitted.load(Ordering::Relaxed),
            sessions_shed: self.sessions_shed.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            backpressure: self.backpressure.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            re_assigns: self.re_assigns.load(Ordering::Relaxed),
            reeval_aborts: self.reeval_aborts.load(Ordering::Relaxed),
            p50: quantile(&counts, 0.50),
            p99: quantile(&counts, 0.99),
            queue_depths,
        }
    }
}

/// A point-in-time copy of [`ServerMetrics`] plus derived quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Currently open sessions.
    pub sessions_in_flight: usize,
    /// Sessions ever admitted.
    pub sessions_admitted: u64,
    /// `session()` calls shed by admission control.
    pub sessions_shed: u64,
    /// Requests that received a reply.
    pub requests: u64,
    /// Requests shed on full queues.
    pub backpressure: u64,
    /// Reply timeouts.
    pub timeouts: u64,
    /// Commits.
    pub committed: u64,
    /// Protocol rejections.
    pub rejected: u64,
    /// Re-eval re-assignments.
    pub re_assigns: u64,
    /// Re-eval aborts.
    pub reeval_aborts: u64,
    /// Median request latency, if any requests completed.
    pub p50: Option<Duration>,
    /// 99th-percentile request latency.
    pub p99: Option<Duration>,
    /// Per-shard request-queue depths at snapshot time.
    pub queue_depths: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_micros(100)); // ~bucket 16
        let counts = h.counts();
        assert_eq!(counts[6], 99);
        let p50 = quantile(&counts, 0.50).unwrap();
        assert_eq!(p50, Duration::from_nanos(128));
        let p99 = quantile(&counts, 0.99).unwrap();
        assert_eq!(p99, Duration::from_nanos(128));
        let p999 = quantile(&counts, 0.999).unwrap();
        assert!(p999 > Duration::from_micros(64));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(quantile(&h.counts(), 0.5), None);
    }

    #[test]
    fn snapshot_copies_counters() {
        let m = ServerMetrics::default();
        ServerMetrics::add(&m.requests);
        ServerMetrics::add(&m.committed);
        m.latency.record(Duration::from_micros(3));
        let snap = m.snapshot(vec![1, 2]);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.committed, 1);
        assert_eq!(snap.queue_depths, vec![1, 2]);
        assert!(snap.p50.is_some());
    }
}
