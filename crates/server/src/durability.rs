//! The durability layer: WAL wiring, group commit, recovery report.
//!
//! [`Durability`] is the `ServerConfig` knob. With `Durability::Wal`,
//! the service opens a [`ks_wal::Wal`] over the configured store at
//! startup, replays it ([`RecoveryReport`]), writes a synced
//! [`Checkpoint`](ks_wal::WalRecord::Checkpoint) fence, and hands every
//! shard worker a [`WorkerWal`] so the commit path logs-then-flushes
//! before acknowledging.
//!
//! **Logging discipline** (what makes recovery exact):
//!
//! * every `Define` logs `Begin`, every applied write logs `Write`, in
//!   worker order — so a transaction's records always precede its
//!   `Commit` record, and one sync at commit durably covers all of them
//!   (prefix durability);
//! * a commit acknowledges only after its `Commit` record is synced —
//!   inline (`sync_on_commit` without group commit), or by the group
//!   flusher, which batches every ticket that arrives within
//!   `group_window` of the first behind a single fsync;
//! * aborts log `Abort` for the target *and every cascaded victim*.
//!   When a victim's `Commit` record was already logged (the protocol
//!   can cascade-undo a committed sibling — commit is only relative to
//!   the parent), the `Abort` is synced before the worker replies, so a
//!   crash can never resurrect an undone commit whose undo was already
//!   acknowledged.
//!
//! WAL I/O errors panic the worker: a server that cannot make commits
//! durable must not keep acknowledging them (the in-memory and dst
//! stores are infallible; only real disks can trip this).

use crate::ServerError;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use ks_obs::{ObsKind, ObsSink, OpCode, SpanHop, TelemetrySeries, NO_TXN};
use ks_wal::{SegmentStore, Wal, WalRecord};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds a fresh handle onto the log's storage. A factory (not a
/// store) so `ServerConfig` stays `Clone` and a restarted service can
/// reopen the same media (the dst harness passes a closure cloning its
/// shared [`MemStore`](ks_wal::MemStore)).
pub type StoreFactory = Arc<dyn Fn() -> Box<dyn SegmentStore> + Send + Sync>;

/// Should commits survive a crash?
#[derive(Clone, Default)]
pub enum Durability {
    /// In-memory only (the pre-WAL behaviour): fastest, nothing
    /// survives process death.
    #[default]
    None,
    /// Write-ahead logging: log-then-flush before acknowledging a
    /// commit, recover on startup.
    Wal(WalOptions),
}

impl fmt::Debug for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Durability::None => f.write_str("Durability::None"),
            Durability::Wal(opts) => f.debug_tuple("Durability::Wal").field(opts).finish(),
        }
    }
}

/// WAL tuning (see module docs for the protocol each knob selects).
#[derive(Clone)]
pub struct WalOptions {
    /// Storage factory (file dir, shared memory, dst sim store…).
    pub store: StoreFactory,
    /// Batch concurrent commit fsyncs behind one barrier via the group
    /// flusher thread.
    pub group_commit: bool,
    /// How long the flusher waits after the first ticket for stragglers
    /// before issuing the shared fsync.
    pub group_window: Duration,
    /// Sync the commit record before acknowledging. Turning this off
    /// (dst "commit-flush" teeth) still logs everything but lets an
    /// acknowledged commit die with the page cache — the durability
    /// oracle must catch that.
    pub sync_on_commit: bool,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: usize,
}

impl WalOptions {
    /// Defaults over a store factory: group commit on, 2 ms window,
    /// sync-on-commit on, 1 MiB segments.
    pub fn new(store: StoreFactory) -> WalOptions {
        WalOptions {
            store,
            group_commit: true,
            group_window: Duration::from_millis(2),
            sync_on_commit: true,
            segment_bytes: 1 << 20,
        }
    }
}

impl fmt::Debug for WalOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WalOptions")
            .field("store", &"<factory>")
            .field("group_commit", &self.group_commit)
            .field("group_window", &self.group_window)
            .field("sync_on_commit", &self.sync_on_commit)
            .field("segment_bytes", &self.segment_bytes)
            .finish()
    }
}

/// What recovery found at startup (see
/// [`TxnService::recovery_report`](crate::TxnService::recovery_report)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Did the log hold a checkpoint (i.e. a prior incarnation ran)?
    pub recovered: bool,
    /// Clean records scanned.
    pub records: usize,
    /// Finally-committed transactions replayed, ascending `(shard, txn)`.
    pub committed: Vec<(u32, u64)>,
    /// Per-shard replay counters (shards with no recovered activity are
    /// absent).
    pub replay: Vec<ks_wal::ShardReplay>,
    /// The recovered per-shard states the service started from (`None`
    /// on fresh media — the configured initial state was used).
    pub states: Option<Vec<Vec<i64>>>,
    /// Why the log's tail was discarded, when it was torn by a crash.
    pub torn: Option<String>,
}

/// The log plus the committed-logged set, behind one mutex: appends
/// from every shard worker serialize here, which is what makes "one
/// sync covers every record appended before it" hold globally.
pub(crate) struct WalShared {
    inner: Mutex<WalInner>,
    sync_on_commit: bool,
}

struct WalInner {
    wal: Wal<Box<dyn SegmentStore>>,
    /// Transactions whose `Commit` record has been logged this
    /// incarnation — an `Abort` targeting one of these is an undo of a
    /// commit and must be synced before it is acknowledged.
    committed_logged: BTreeSet<(u32, u64)>,
}

impl WalShared {
    pub(crate) fn new(wal: Wal<Box<dyn SegmentStore>>, sync_on_commit: bool) -> WalShared {
        WalShared {
            inner: Mutex::new(WalInner {
                wal,
                committed_logged: BTreeSet::new(),
            }),
            sync_on_commit,
        }
    }

    /// Current appender counters (flush queue depth, sync count…).
    pub(crate) fn stats(&self) -> ks_wal::WalStats {
        self.inner.lock().wal.stats()
    }
}

/// A deferred commit acknowledgement parked with the group flusher.
pub(crate) struct Ticket {
    pub(crate) reply: Sender<Result<(), ServerError>>,
    /// Distributed trace riding this commit (`0` = unsampled); the
    /// flusher emits the `WalEnqueue`/`WalBarrier`/`WalFsync` span
    /// boundaries for it.
    pub(crate) trace: u64,
}

/// How a logged commit gets acknowledged.
pub(crate) enum CommitAck {
    /// The flusher owns the reply; the worker must not send one.
    Deferred,
    /// Durable (or durability waived); the worker replies now. `synced`
    /// reports whether an inline fsync ran, so the caller can count it
    /// as a flush group of one.
    Ready { synced: bool },
}

/// Per-worker handle: the shared log plus this worker's shard id and
/// (in group mode) the flusher's ticket queue.
pub(crate) struct WorkerWal {
    pub(crate) shared: Arc<WalShared>,
    pub(crate) group: Option<Sender<Ticket>>,
    pub(crate) shard: u32,
}

impl WorkerWal {
    fn append(&self, inner: &mut WalInner, record: &WalRecord, txn32: u32, sink: &Option<ObsSink>) {
        let before = inner.wal.stats().bytes;
        inner.wal.append(record).expect("wal append failed");
        if let Some(s) = sink {
            s.emit(
                txn32,
                ObsKind::WalAppend {
                    bytes: (inner.wal.stats().bytes - before) as u32,
                },
            );
        }
    }

    fn sync(&self, inner: &mut WalInner, sink: &Option<ObsSink>) {
        let start = Instant::now();
        let records = inner.wal.sync().expect("wal fsync failed");
        if let Some(s) = sink {
            s.emit(
                NO_TXN,
                ObsKind::WalFsync {
                    records: records as u32,
                    sync_ns: start.elapsed().as_nanos() as u64,
                },
            );
        }
    }

    /// Log `Begin` for a freshly defined transaction.
    pub(crate) fn log_begin(&self, txn: u64, sink: &Option<ObsSink>) {
        let mut inner = self.shared.inner.lock();
        self.append(
            &mut inner,
            &WalRecord::Begin {
                shard: self.shard,
                txn,
            },
            txn as u32,
            sink,
        );
    }

    /// Log an applied write.
    pub(crate) fn log_write(&self, txn: u64, entity: u32, value: i64, sink: &Option<ObsSink>) {
        let mut inner = self.shared.inner.lock();
        self.append(
            &mut inner,
            &WalRecord::Write {
                shard: self.shard,
                txn,
                entity,
                value,
            },
            txn as u32,
            sink,
        );
    }

    /// Log `Abort` for each victim (the explicit target and any cascade
    /// victims). Syncs before returning iff some victim's commit record
    /// was already logged — the undo of a durable commit must itself be
    /// durable before it is acknowledged.
    pub(crate) fn log_aborts(&self, txns: &[u64], sink: &Option<ObsSink>) {
        if txns.is_empty() {
            return;
        }
        let mut inner = self.shared.inner.lock();
        let mut undoes_commit = false;
        for &txn in txns {
            undoes_commit |= inner.committed_logged.remove(&(self.shard, txn));
            self.append(
                &mut inner,
                &WalRecord::Abort {
                    shard: self.shard,
                    txn,
                },
                txn as u32,
                sink,
            );
        }
        if undoes_commit && self.shared.sync_on_commit {
            self.sync(&mut inner, sink);
        }
    }

    /// Log `Commit` and arrange durability before acknowledgement:
    /// inline sync, a flusher ticket ([`CommitAck::Deferred`]), or — with
    /// `sync_on_commit` off — nothing.
    pub(crate) fn log_commit(
        &self,
        txn: u64,
        trace: u64,
        sink: &Option<ObsSink>,
        reply: &Sender<Result<(), ServerError>>,
    ) -> CommitAck {
        let mut inner = self.shared.inner.lock();
        self.append(
            &mut inner,
            &WalRecord::Commit {
                shard: self.shard,
                txn,
            },
            txn as u32,
            sink,
        );
        inner.committed_logged.insert((self.shard, txn));
        if !self.shared.sync_on_commit {
            return CommitAck::Ready { synced: false };
        }
        match &self.group {
            Some(group) => {
                // The flusher replies once the shared fsync covers this
                // record; drop the lock first so it can sync promptly.
                drop(inner);
                // The time from here to the flusher picking the ticket
                // up is the WalEnqueue hop of the trace.
                if trace != 0 {
                    if let Some(s) = sink {
                        s.emit(
                            txn as u32,
                            ObsKind::SpanStart {
                                hop: SpanHop::WalEnqueue,
                                op: OpCode::Commit,
                                trace,
                            },
                        );
                    }
                }
                group
                    .send(Ticket {
                        reply: reply.clone(),
                        trace,
                    })
                    .unwrap_or_else(|_| panic!("group flusher exited while workers live"));
                CommitAck::Deferred
            }
            None => {
                // Inline sync: the whole durability wait is one WalFsync
                // hop on the worker thread.
                if trace != 0 {
                    if let Some(s) = sink {
                        s.emit(
                            txn as u32,
                            ObsKind::SpanStart {
                                hop: SpanHop::WalFsync,
                                op: OpCode::Commit,
                                trace,
                            },
                        );
                    }
                }
                self.sync(&mut inner, sink);
                if trace != 0 {
                    if let Some(s) = sink {
                        s.emit(
                            txn as u32,
                            ObsKind::SpanEnd {
                                hop: SpanHop::WalFsync,
                                ok: true,
                                trace,
                            },
                        );
                    }
                }
                CommitAck::Ready { synced: true }
            }
        }
    }

    /// Final barrier at graceful shutdown: whatever the mode (including
    /// teeth runs with `sync_on_commit` off), a clean exit leaves the
    /// log durable. Crash simulation kills the store *before* shutdown,
    /// so this cannot retroactively save a simulated power cut.
    pub(crate) fn sync_quiet(&self) {
        let _ = self.shared.inner.lock().wal.sync();
    }
}

/// The group-commit flusher: collect every ticket within `window` of
/// the first, issue one fsync, acknowledge them all. Exits when all
/// workers (the only `Ticket` senders) are gone.
///
/// For traced tickets the flusher closes the worker's `WalEnqueue` span
/// at pickup, brackets the straggler wait as `WalBarrier`, and the
/// shared fsync as `WalFsync` — so a slow group commit shows up in the
/// trace tree attributed to the right phase. Every group's size also
/// feeds the windowed telemetry series.
pub(crate) fn flusher_loop(
    shared: Arc<WalShared>,
    tickets: Receiver<Ticket>,
    window: Duration,
    sink: Option<ObsSink>,
    telemetry: TelemetrySeries,
) {
    let emit = |trace: u64, kind: ObsKind| {
        if trace != 0 {
            if let Some(s) = &sink {
                s.emit(NO_TXN, kind);
            }
        }
    };
    let pickup = |t: &Ticket| {
        emit(
            t.trace,
            ObsKind::SpanEnd {
                hop: SpanHop::WalEnqueue,
                ok: true,
                trace: t.trace,
            },
        );
        emit(
            t.trace,
            ObsKind::SpanStart {
                hop: SpanHop::WalBarrier,
                op: OpCode::Commit,
                trace: t.trace,
            },
        );
    };
    while let Ok(first) = tickets.recv() {
        pickup(&first);
        let mut batch = vec![first];
        let deadline = Instant::now() + window;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match tickets.recv_timeout(deadline - now) {
                Ok(t) => {
                    pickup(&t);
                    batch.push(t);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        for t in &batch {
            emit(
                t.trace,
                ObsKind::SpanEnd {
                    hop: SpanHop::WalBarrier,
                    ok: true,
                    trace: t.trace,
                },
            );
            emit(
                t.trace,
                ObsKind::SpanStart {
                    hop: SpanHop::WalFsync,
                    op: OpCode::Commit,
                    trace: t.trace,
                },
            );
        }
        let start = Instant::now();
        let records = shared.inner.lock().wal.sync().expect("wal fsync failed");
        if let Some(s) = &sink {
            s.emit(
                NO_TXN,
                ObsKind::GroupCommit {
                    n: batch.len() as u32,
                },
            );
            s.emit(
                NO_TXN,
                ObsKind::WalFsync {
                    records: records as u32,
                    sync_ns: start.elapsed().as_nanos() as u64,
                },
            );
        }
        for t in &batch {
            emit(
                t.trace,
                ObsKind::SpanEnd {
                    hop: SpanHop::WalFsync,
                    ok: true,
                    trace: t.trace,
                },
            );
        }
        telemetry.record_flush(batch.len() as u64);
        for t in batch {
            let _ = t.reply.send(Ok(()));
        }
    }
}
