//! Entity sharding: the partition of the schema across worker threads.
//!
//! Shard `s` owns every entity whose global index is `≡ s (mod S)`; inside
//! a shard, entities are renumbered densely (`local = global / S`). Each
//! shard worker runs a [`ProtocolManager`](ks_protocol::ProtocolManager)
//! over its **sub-schema** only, so the phased state machine stays
//! single-writer per shard while sessions speak global [`EntityId`]s.

use crate::ServerError;
use ks_core::Specification;
use ks_kernel::{EntityId, Schema, SchemaBuilder, UniqueState};
use ks_predicate::{Atom, Clause, Cnf, Operand};

/// The static entity → shard partition for one service instance.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    subs: Vec<Schema>,
}

impl ShardMap {
    /// Partition `schema` across `shards` workers (clamped to `[1, |E|]`).
    pub fn new(schema: &Schema, shards: usize) -> Self {
        let shards = shards.clamp(1, schema.len().max(1));
        let mut builders: Vec<SchemaBuilder> = (0..shards).map(|_| SchemaBuilder::new()).collect();
        for e in schema.entity_ids() {
            builders[e.index() % shards].entity(schema.name(e), schema.domain(e).clone());
        }
        let subs = builders
            .into_iter()
            .map(|b| b.build().expect("global names are unique"))
            .collect();
        ShardMap { shards, subs }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning global entity `e`.
    pub fn shard_of(&self, e: EntityId) -> usize {
        e.index() % self.shards
    }

    /// Global id → the owning shard's dense local id.
    pub fn to_local(&self, e: EntityId) -> EntityId {
        EntityId((e.index() / self.shards) as u32)
    }

    /// A shard's dense local id → global id.
    pub fn to_global(&self, shard: usize, local: EntityId) -> EntityId {
        EntityId((local.index() * self.shards + shard) as u32)
    }

    /// The sub-schema shard `shard` serves.
    pub fn sub_schema(&self, shard: usize) -> &Schema {
        &self.subs[shard]
    }

    /// Project the global initial state onto a shard's entities.
    pub fn sub_initial(&self, shard: usize, global: &UniqueState) -> UniqueState {
        let values = (0..self.subs[shard].len())
            .map(|i| global.get(self.to_global(shard, EntityId(i as u32))))
            .collect();
        UniqueState::new(&self.subs[shard], values).expect("projection preserves domains")
    }

    /// The single shard a specification's entities live on, or
    /// [`ServerError::CrossShard`]. Entity-free (trivial) specifications
    /// land on shard 0.
    pub fn home_shard(&self, spec: &Specification) -> Result<usize, ServerError> {
        let mut home: Option<usize> = None;
        for e in spec
            .input
            .entities()
            .into_iter()
            .chain(spec.output.entities())
        {
            let s = self.shard_of(e);
            match home {
                None => home = Some(s),
                Some(h) if h != s => return Err(ServerError::CrossShard),
                Some(_) => {}
            }
        }
        Ok(home.unwrap_or(0))
    }

    /// Rewrite a global-id specification into `shard`'s local ids.
    pub fn localize_spec(&self, shard: usize, spec: &Specification) -> Specification {
        Specification::new(
            self.localize_cnf(shard, &spec.input),
            self.localize_cnf(shard, &spec.output),
        )
    }

    fn localize_cnf(&self, shard: usize, cnf: &Cnf) -> Cnf {
        let localize = |op: Operand| match op {
            Operand::Entity(e) => {
                debug_assert_eq!(self.shard_of(e), shard);
                Operand::Entity(self.to_local(e))
            }
            c @ Operand::Const(_) => c,
        };
        Cnf::new(
            cnf.clauses()
                .iter()
                .map(|clause| {
                    Clause::new(
                        clause
                            .atoms()
                            .iter()
                            .map(|a| Atom {
                                lhs: localize(a.lhs),
                                op: a.op,
                                rhs: localize(a.rhs),
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_kernel::Domain;
    use ks_predicate::parse_cnf;

    fn schema6() -> Schema {
        Schema::uniform(
            ["a", "b", "c", "d", "e", "f"],
            Domain::Range { min: 0, max: 9 },
        )
    }

    #[test]
    fn round_trips_ids_and_partitions_evenly() {
        let map = ShardMap::new(&schema6(), 4);
        assert_eq!(map.shards(), 4);
        for e in schema6().entity_ids() {
            let s = map.shard_of(e);
            assert_eq!(map.to_global(s, map.to_local(e)), e);
        }
        // 6 entities over 4 shards: sizes 2,2,1,1.
        let sizes: Vec<usize> = (0..4).map(|s| map.sub_schema(s).len()).collect();
        assert_eq!(sizes, vec![2, 2, 1, 1]);
        // Shard 0 owns a (global 0) and e (global 4), densely renumbered.
        assert_eq!(map.sub_schema(0).name(EntityId(0)), "a");
        assert_eq!(map.sub_schema(0).name(EntityId(1)), "e");
    }

    #[test]
    fn clamps_shard_count() {
        assert_eq!(ShardMap::new(&schema6(), 0).shards(), 1);
        assert_eq!(ShardMap::new(&schema6(), 99).shards(), 6);
    }

    #[test]
    fn sub_initial_projects() {
        let schema = schema6();
        let map = ShardMap::new(&schema, 2);
        let global = UniqueState::new(&schema, vec![1, 2, 3, 4, 5, 6]).unwrap();
        let s0 = map.sub_initial(0, &global);
        let s1 = map.sub_initial(1, &global);
        assert_eq!(s0.values(), &[1, 3, 5]);
        assert_eq!(s1.values(), &[2, 4, 6]);
    }

    #[test]
    fn home_shard_detects_spanning_specs() {
        let schema = schema6();
        let map = ShardMap::new(&schema, 2);
        // a (0) and c (2) are both shard 0.
        let same = Specification::new(
            parse_cnf(&schema, "a = 1").unwrap(),
            parse_cnf(&schema, "c > 0").unwrap(),
        );
        assert_eq!(map.home_shard(&same), Ok(0));
        // a (shard 0) with b (shard 1) spans.
        let spanning =
            Specification::new(parse_cnf(&schema, "a = 1 & b = 2").unwrap(), Cnf::truth());
        assert_eq!(map.home_shard(&spanning), Err(ServerError::CrossShard));
        assert_eq!(map.home_shard(&Specification::trivial()), Ok(0));
    }

    #[test]
    fn localize_rewrites_entities() {
        let schema = schema6();
        let map = ShardMap::new(&schema, 2);
        // c is global 2 → shard 0 local 1; e is global 4 → shard 0 local 2.
        let spec = Specification::new(
            parse_cnf(&schema, "(c = 3 | e < 9)").unwrap(),
            parse_cnf(&schema, "a >= 0").unwrap(),
        );
        let local = map.localize_spec(0, &spec);
        let sub = map.sub_schema(0);
        assert_eq!(local.input.display_with(sub), "(c = 3 | e < 9)");
        assert_eq!(local.output.display_with(sub), "(a >= 0)");
        let entities = local.input.entities();
        assert!(entities.contains(&EntityId(1)) && entities.contains(&EntityId(2)));
    }
}
