//! # ks-server
//!
//! A thread-safe, multi-session transaction **service** over the
//! [`ks_protocol`] manager — the serving layer a production deployment of
//! the paper's protocol would run.
//!
//! The Section 5 protocol is a sequential state machine: every decision
//! (validation, re-eval, commit gating) assumes it sees one call at a
//! time. This crate scales it out without giving that up:
//!
//! - **Sharding** ([`routing`]): entities are partitioned round-robin
//!   across `S` shards; each shard's worker thread owns a private
//!   [`Certifier`](ks_protocol::Certifier) backend — the paper's CPC
//!   [`ProtocolManager`](ks_protocol::ProtocolManager), an SSI
//!   certifier, or a strict-2PL baseline, selected per
//!   [`ServerConfig::backend`] — over the shard's sub-schema. The
//!   certifier stays single-writer; shards are independent correctness
//!   domains (a transaction lives entirely inside one shard).
//! - **Workers** ([`worker`]): bounded crossbeam queues feed each shard;
//!   workers never block on protocol outcomes — contended calls reply
//!   [`ServerError::Busy`] and the session retries, which is what keeps
//!   one stalled transaction from wedging its whole shard.
//! - **Clients** ([`client`]): the transport-generic [`Client`] trait and
//!   [`TxnBuilder`] (spec, after/before ordering, strategy) — the
//!   client-visible contract both the in-process [`Session`] and the
//!   `ks-net` remote session implement, so workloads are generic over
//!   transport.
//! - **Sessions** ([`session`]): blocking in-process client handles with
//!   a one-shot reply rendezvous per call, request timeouts, and typed
//!   errors ([`ServerError::Rejected`], [`ServerError::ReEvalAborted`],
//!   [`ServerError::Backpressure`]…) carrying stable wire codes and a
//!   single [`ServerError::is_retryable`] classification.
//! - **Admission control** ([`service`]): a session cap plus full-queue
//!   shedding degrade gracefully under overload.
//! - **Metrics** ([`metrics`]): lock-free counters and a fixed-bucket
//!   latency histogram (p50/p99) snapshotted on demand.
//! - **Verification** ([`verify`]): after shutdown, every shard
//!   certifier re-checks its own history offline — the CPC backend
//!   against the paper's parent-based criterion ([`ks_core::check`]),
//!   SSI/2PL against conflict-graph serializability — so the service
//!   inherits each backend's correctness guarantee, and the tests assert
//!   it under real thread interleavings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod client;
pub mod config;
pub mod durability;
pub mod error;
pub mod metrics;
pub mod routing;
pub mod service;
pub mod session;
pub mod verify;

pub(crate) mod worker;

pub use backoff::Backoff;
pub use client::{per_op_batch, BatchOp, BatchReply, Client, TxnBuilder};
pub use config::{ConfigError, ServerConfig, ServerConfigBuilder};
pub use durability::{Durability, RecoveryReport, StoreFactory, WalOptions};
pub use error::ServerError;
pub use ks_protocol::{Backend, Certifier};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ServerMetrics};
pub use routing::ShardMap;
pub use service::TxnService;
pub use session::{Session, TxnHandle};
pub use verify::{verify_certifiers, verify_certifiers_with_dump, VerifyReport, ViolationDump};
#[allow(deprecated)]
pub use verify::{verify_managers, verify_with_dump};

#[cfg(test)]
mod tests {
    use super::*;
    use ks_core::Specification;
    use ks_kernel::{Domain, EntityId, Schema, UniqueState};
    use ks_predicate::{parse_cnf, Atom, Clause, CmpOp, Cnf};

    fn schema(n: usize) -> Schema {
        Schema::uniform(
            (0..n).map(|i| format!("d{i}")),
            Domain::Range {
                min: i64::MIN / 2,
                max: i64::MAX / 2,
            },
        )
    }

    /// Tautological input over `entities` (puts them in `N_t`), no output
    /// constraint — the serving analogue of the sim adapter's specs.
    fn tautology_spec(entities: &[EntityId]) -> Specification {
        Specification::new(
            Cnf::new(
                entities
                    .iter()
                    .map(|&e| Clause::unit(Atom::cmp_const(e, CmpOp::Ge, i64::MIN / 2)))
                    .collect(),
            ),
            Cnf::truth(),
        )
    }

    fn service(n_entities: usize, shards: usize) -> TxnService {
        let schema = schema(n_entities);
        let initial = UniqueState::constant(n_entities, 0);
        let config = ServerConfig::builder().shards(shards).build().unwrap();
        TxnService::new(schema, &initial, config)
    }

    /// The full lifecycle, written against the transport-generic
    /// [`Client`] contract — `ks-net` runs the same shape over TCP.
    fn full_lifecycle_over<C: Client>(client: &C) {
        // Entities 1 and 5 share shard 1 under S=4.
        let spec = tautology_spec(&[EntityId(1), EntityId(5)]);
        let txn = client.open(TxnBuilder::new(spec)).unwrap();
        client.validate(txn).unwrap();
        assert_eq!(client.read(txn, EntityId(1)).unwrap(), 0);
        client.write(txn, EntityId(5), 42).unwrap();
        // Reads consume the version assigned at validation, not own
        // writes — the paper's execution model, not read-your-writes.
        assert_eq!(client.read(txn, EntityId(5)).unwrap(), 0);
        client.commit(txn).unwrap();
    }

    #[test]
    fn single_session_full_lifecycle() {
        let svc = service(8, 4);
        let session = svc.session().unwrap();
        full_lifecycle_over(&session);
        let snap = svc.metrics();
        assert_eq!(snap.committed, 1);
        assert!(snap.p50.is_some());
        drop(session);
        let managers = svc.shutdown();
        let report = verify_certifiers(&managers);
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed, 1);
        assert_eq!(report.shards, 4);
    }

    #[test]
    fn run_batch_matches_per_op_semantics() {
        let svc = service(8, 4);
        let session = svc.session().unwrap();
        let spec = tautology_spec(&[EntityId(1), EntityId(5)]);
        let txn = session.open(TxnBuilder::new(spec)).unwrap();
        session.validate(txn).unwrap();
        let results = session
            .run_batch(
                txn,
                &[
                    BatchOp::Write(EntityId(5), 42),
                    BatchOp::Read(EntityId(1)),
                    // Reads observe the assigned version, not own writes.
                    BatchOp::Read(EntityId(5)),
                ],
            )
            .unwrap();
        assert_eq!(
            results,
            vec![
                Ok(BatchReply::Done),
                Ok(BatchReply::Value(0)),
                Ok(BatchReply::Value(0)),
            ]
        );
        session.commit(txn).unwrap();
        // A burst touching a foreign shard falls back to per-op verdicts:
        // the in-shard op still executes, the cross-shard op gets its own
        // error instead of failing the whole batch.
        let txn2 = session
            .open(TxnBuilder::new(tautology_spec(&[EntityId(1)])))
            .unwrap();
        session.validate(txn2).unwrap();
        let results = session
            .run_batch(
                txn2,
                &[BatchOp::Read(EntityId(1)), BatchOp::Read(EntityId(0))],
            )
            .unwrap();
        assert_eq!(results[0], Ok(BatchReply::Value(0)));
        assert_eq!(results[1], Err(ServerError::CrossShard));
        session.abort(txn2).unwrap();
        drop(session);
        assert!(verify_certifiers(&svc.shutdown()).is_correct());
    }

    #[test]
    fn ssi_backend_serves_the_full_lifecycle() {
        let schema = schema(8);
        let initial = UniqueState::constant(8, 0);
        let config = ServerConfig::builder()
            .shards(4)
            .backend(Backend::Ssi)
            .build()
            .unwrap();
        let svc = TxnService::new(schema, &initial, config);
        assert_eq!(svc.backend(), Backend::Ssi);
        let session = svc.session().unwrap();
        full_lifecycle_over(&session);
        drop(session);
        let report = verify_certifiers(&svc.shutdown());
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed, 1);
    }

    #[test]
    fn two_pl_backend_serves_the_full_lifecycle() {
        let schema = schema(8);
        let initial = UniqueState::constant(8, 0);
        let config = ServerConfig::builder()
            .shards(4)
            .backend(Backend::TwoPl)
            .build()
            .unwrap();
        let svc = TxnService::new(schema, &initial, config);
        let session = svc.session().unwrap();
        full_lifecycle_over(&session);
        drop(session);
        let report = verify_certifiers(&svc.shutdown());
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed, 1);
    }

    #[test]
    fn backend_pin_mismatch_fails_closed() {
        let svc = service(8, 4); // default backend: CPC
        let session = svc.session().unwrap();
        let spec = tautology_spec(&[EntityId(1)]);
        match session
            .open(TxnBuilder::new(spec.clone()).backend(Backend::Ssi))
            .unwrap_err()
        {
            ServerError::BackendMismatch(why) => {
                assert!(why.contains("ssi") && why.contains("cpc"), "{why}");
            }
            other => panic!("expected BackendMismatch, got {other:?}"),
        }
        // Pinning the backend the service actually runs is accepted.
        let txn = session
            .open(TxnBuilder::new(spec).backend(Backend::Cpc))
            .unwrap();
        session.validate(txn).unwrap();
        session.commit(txn).unwrap();
        drop(session);
        assert!(verify_certifiers(&svc.shutdown()).is_correct());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_verify_aliases_still_delegate() {
        let svc = service(8, 4);
        let session = svc.session().unwrap();
        full_lifecycle_over(&session);
        drop(session);
        let report = verify_managers(&svc.shutdown());
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed, 1);
    }

    #[test]
    fn cross_shard_specs_are_rejected() {
        let svc = service(8, 4);
        let session = svc.session().unwrap();
        // Entities 0 and 1 live on different shards.
        let spec = tautology_spec(&[EntityId(0), EntityId(1)]);
        assert_eq!(
            session.open(TxnBuilder::new(spec)).unwrap_err(),
            ServerError::CrossShard
        );
        // Accessing an entity outside the home shard is rejected too.
        let txn = session
            .open(TxnBuilder::new(tautology_spec(&[EntityId(0)])))
            .unwrap();
        session.validate(txn).unwrap();
        assert_eq!(
            session.read(txn, EntityId(1)).unwrap_err(),
            ServerError::CrossShard
        );
        // As is an ordering edge onto a transaction of another shard.
        let other = session
            .open(TxnBuilder::new(tautology_spec(&[EntityId(1)])))
            .unwrap();
        assert_eq!(
            session
                .open(TxnBuilder::new(tautology_spec(&[EntityId(0)])).after(other))
                .unwrap_err(),
            ServerError::CrossShard
        );
    }

    #[test]
    fn admission_control_sheds_excess_sessions() {
        let schema = schema(4);
        let initial = UniqueState::constant(4, 0);
        let config = ServerConfig::builder()
            .shards(2)
            .max_sessions(2)
            .build()
            .unwrap();
        let svc = TxnService::new(schema, &initial, config);
        let s1 = svc.session().unwrap();
        let _s2 = svc.session().unwrap();
        assert_eq!(svc.session().unwrap_err(), ServerError::Backpressure);
        drop(s1);
        // Freed capacity readmits.
        let _s3 = svc.session().unwrap();
        assert_eq!(svc.metrics().sessions_shed, 1);
    }

    #[test]
    fn output_violation_is_rejected_and_aborted() {
        let schema = Schema::uniform(["x", "y"], Domain::Range { min: 0, max: 99 });
        let initial = UniqueState::new(&schema, vec![5, 5]).unwrap();
        let svc = TxnService::new(schema.clone(), &initial, ServerConfig::default());
        let session = svc.session().unwrap();
        // x and y are co-located only when shards=1… but the default
        // config clamps to |E|=2 shards; use entity x (shard 0) alone.
        let spec = Specification::new(
            parse_cnf(&schema, "x = 5").unwrap(),
            parse_cnf(&schema, "x = 7").unwrap(),
        );
        let txn = session.open(TxnBuilder::new(spec)).unwrap();
        session.validate(txn).unwrap();
        session.write(txn, EntityId(0), 6).unwrap(); // ≠ 7: output fails
        match session.commit(txn).unwrap_err() {
            ServerError::Rejected(why) => assert!(why.contains("output"), "{why}"),
            other => panic!("expected Rejected, got {other:?}"),
        }
        drop(session);
        let report = verify_certifiers(&svc.shutdown());
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed, 0, "aborted txn is outside the execution");
    }

    #[test]
    fn reeval_abort_is_reported_to_the_victim() {
        // One shard; t1 validates onto t2's in-flight version of x (via a
        // per-transaction GreedyLatest override — the service default
        // stays Backtracking) and reads it; t2 then writes x again,
        // superseding the version t1 consumed ⇒ re-eval aborts t1.
        let schema = Schema::uniform(["x"], Domain::Range { min: 0, max: 99 });
        let initial = UniqueState::new(&schema, vec![5]).unwrap();
        let config = ServerConfig::builder().shards(1).build().unwrap();
        let svc = TxnService::new(schema.clone(), &initial, config);
        let s1 = svc.session().unwrap();
        let s2 = svc.session().unwrap();
        let x = EntityId(0);
        let spec = tautology_spec(&[x]);
        let greedy = |spec: &Specification| {
            TxnBuilder::new(spec.clone()).strategy(ks_predicate::Strategy::GreedyLatest)
        };
        let t2 = s2.open(greedy(&spec)).unwrap();
        s2.validate(t2).unwrap();
        s2.write(t2, x, 9).unwrap();
        let t1 = s1.open(greedy(&spec)).unwrap();
        s1.validate(t1).unwrap(); // assigned t2's in-flight version
        assert_eq!(s1.read(t1, x).unwrap(), 9);
        s2.write(t2, x, 11).unwrap(); // supersedes what t1 already read
        s2.commit(t2).unwrap();
        // t1 discovers its doom on the next call.
        let doomed = s1.write(t1, x, 7);
        assert_eq!(doomed.unwrap_err(), ServerError::ReEvalAborted);
        s1.abort(t1).unwrap(); // acknowledging is idempotent
        assert!(svc.metrics().reeval_aborts >= 1);
        drop((s1, s2));
        let report = verify_certifiers(&svc.shutdown());
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed, 1);
    }

    #[test]
    fn cooperation_chain_gates_commit_order() {
        let schema = Schema::uniform(["x"], Domain::Range { min: 0, max: 99 });
        let initial = UniqueState::new(&schema, vec![5]).unwrap();
        let svc = TxnService::new(schema, &initial, ServerConfig::default());
        let session = svc.session().unwrap();
        let x = EntityId(0);
        let spec = tautology_spec(&[x]);
        let first = session.open(TxnBuilder::new(spec.clone())).unwrap();
        let second = session
            .open(TxnBuilder::new(spec.clone()).after(first))
            .unwrap();
        session.validate(first).unwrap();
        session.validate(second).unwrap();
        session.write(second, x, 8).unwrap();
        // The successor cannot commit before its predecessor, and the
        // outcome is classified retryable.
        let gated = session.commit(second).unwrap_err();
        assert_eq!(gated, ServerError::Busy);
        assert!(gated.is_retryable());
        session.commit(first).unwrap();
        session.commit(second).unwrap();
        drop(session);
        let report = verify_certifiers(&svc.shutdown());
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed, 2);
    }

    #[test]
    fn before_edge_gates_the_existing_sibling() {
        // `before` is the dual declaration: opening `late` *before*
        // `early` makes `early` wait on `late`'s commit.
        let schema = Schema::uniform(["x"], Domain::Range { min: 0, max: 99 });
        let initial = UniqueState::new(&schema, vec![5]).unwrap();
        let svc = TxnService::new(schema, &initial, ServerConfig::default());
        let session = svc.session().unwrap();
        let spec = tautology_spec(&[EntityId(0)]);
        let early = session.open(TxnBuilder::new(spec.clone())).unwrap();
        let late = session
            .open(TxnBuilder::new(spec.clone()).before(early))
            .unwrap();
        session.validate(early).unwrap();
        session.validate(late).unwrap();
        assert_eq!(session.commit(early).unwrap_err(), ServerError::Busy);
        session.commit(late).unwrap();
        session.commit(early).unwrap();
        drop(session);
        let report = verify_certifiers(&svc.shutdown());
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed, 2);
    }

    #[test]
    fn parallel_sessions_across_shards_all_commit() {
        let n = 16;
        let shards = 4;
        let svc = service(n, shards);
        std::thread::scope(|scope| {
            for client in 0..8usize {
                let svc = &svc;
                scope.spawn(move || {
                    let session = svc.session().unwrap();
                    let shard = client % shards;
                    // Entities of this client's home shard: shard, shard+S, …
                    let entities: Vec<EntityId> = (0..n / shards)
                        .map(|i| EntityId((i * shards + shard) as u32))
                        .collect();
                    let mut backoff = Backoff::new(
                        std::time::Duration::from_micros(5),
                        std::time::Duration::from_micros(500),
                        client as u64,
                    );
                    for round in 0..5 {
                        let spec = tautology_spec(&entities);
                        let txn = session.open(TxnBuilder::new(spec)).unwrap();
                        loop {
                            match session.validate(txn) {
                                Ok(()) => break,
                                Err(e) if e.is_retryable() => backoff.snooze(),
                                Err(e) => panic!("validate: {e}"),
                            }
                        }
                        backoff.reset();
                        let mut ok = true;
                        for (i, &e) in entities.iter().enumerate() {
                            let value = (client * 1000 + round * 10 + i) as i64;
                            match session.write(txn, e, value) {
                                Ok(()) => {}
                                Err(ServerError::ReEvalAborted) => {
                                    session.abort(txn).unwrap();
                                    ok = false;
                                    break;
                                }
                                Err(e) => panic!("write: {e}"),
                            }
                        }
                        if ok {
                            match session.commit(txn) {
                                Ok(()) | Err(ServerError::ReEvalAborted) => {}
                                Err(e) => panic!("commit: {e}"),
                            }
                        }
                    }
                });
            }
        });
        let snap = svc.metrics();
        assert!(snap.committed > 0);
        let stats = svc.protocol_stats().unwrap();
        assert_eq!(stats.len(), shards);
        let report = verify_certifiers(&svc.shutdown());
        assert!(report.is_correct(), "{report:?}");
        assert_eq!(report.committed as u64, snap.committed);
    }

    #[test]
    fn sampled_sessions_emit_stitchable_traces() {
        // trace_sample = 1.0: every in-process call originates a trace;
        // the drained rings must stitch into one well-formed tree per
        // call, rooted at the client Request span, with the worker's
        // Queue/Exec (and Certify, for validate/commit) hops inside.
        let recorder = ks_obs::Recorder::new(1 << 12);
        let schema = schema(8);
        let initial = UniqueState::constant(8, 0);
        let config = ServerConfig::builder()
            .shards(4)
            .recorder(recorder.clone())
            .trace_sample(1.0)
            .build()
            .unwrap();
        let svc = TxnService::new(schema, &initial, config);
        let session = svc.session().unwrap();
        full_lifecycle_over(&session);
        drop(session);
        assert!(verify_certifiers(&svc.shutdown()).is_correct());

        let events = recorder.drain();
        let trees = ks_obs::stitch_traces(&events);
        // open + validate + read + write + read + commit = 6 calls.
        assert_eq!(trees.len(), 6, "one trace per session call");
        for tree in &trees {
            assert!(tree.is_well_formed(), "{}", tree.render());
            assert_eq!(tree.root().unwrap().hop, ks_obs::SpanHop::Request);
            let hops = tree.hops();
            assert!(hops.contains(&ks_obs::SpanHop::Queue), "{hops:?}");
            assert!(hops.contains(&ks_obs::SpanHop::Exec), "{hops:?}");
            // Self-times attribute the root duration exactly (shared
            // clock: every emitter is on this recorder).
            let self_sum: u64 = tree.hop_latencies().iter().map(|h| h.self_ns).sum();
            assert_eq!(self_sum, tree.total_ns());
        }
        // The certifier decision is visible on validate and commit, with
        // its outcome.
        let certified: Vec<_> = trees
            .iter()
            .filter_map(|t| t.spans.iter().find(|s| s.hop == ks_obs::SpanHop::Certify))
            .collect();
        assert_eq!(certified.len(), 2, "validate + commit decisions");
        assert!(certified.iter().all(|s| s.ok == Some(true)));
    }

    #[test]
    fn telemetry_deltas_expose_slo_breaches_incrementally() {
        // The windowed series must let a poller detect an SLO breach
        // from deltas alone — no access to the live histograms.
        let svc = service(8, 4);
        let session = svc.session().unwrap();
        full_lifecycle_over(&session);
        // Cross the 1 s window boundary so the traffic's window closes
        // and the next pull exports it.
        std::thread::sleep(std::time::Duration::from_millis(1100));
        let d0 = svc.telemetry(0);
        let total_requests: u64 = d0.windows.iter().map(|w| w.requests).sum();
        assert_eq!(total_requests, 6, "all six lifecycle calls exported");
        assert_eq!(d0.windows.iter().map(|w| w.committed).sum::<u64>(), 1);
        // An impossible SLO budget breaches on the exported windows —
        // the check consumes nothing but the delta.
        let slo = ks_obs::SloSpec::parse("p50<=0ns@1s").unwrap();
        assert!(!slo.check(&d0.windows).is_empty(), "{:?}", d0.windows);
        // A generous budget does not.
        let slack = ks_obs::SloSpec::parse("p99<=60s@1s").unwrap();
        assert!(slack.check(&d0.windows).is_empty());
        // Pulling from the returned cursor never rewinds: nothing before
        // `next_seq` reappears.
        let d1 = svc.telemetry(d0.next_seq);
        assert!(d1.windows.iter().all(|w| w.seq >= d0.next_seq));
        drop(session);
        svc.shutdown();
    }

    #[test]
    fn shutdown_disconnect_is_reported() {
        let svc = service(4, 2);
        let session = svc.session().unwrap();
        let managers = svc.shutdown();
        assert_eq!(managers.len(), 2);
        let spec = tautology_spec(&[EntityId(0)]);
        assert_eq!(
            session.open(TxnBuilder::new(spec)).unwrap_err(),
            ServerError::Shutdown
        );
    }
}
