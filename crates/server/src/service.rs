//! The front end: shard workers, admission control, lifecycle.

use crate::config::ServerConfig;
use crate::durability::{self, Durability, RecoveryReport, WalShared, WorkerWal};
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::routing::ShardMap;
use crate::session::Session;
use crate::worker::{self, Request, Routed};
use crate::ServerError;
use crossbeam::channel::{bounded, unbounded, Sender};
use ks_core::Specification;
use ks_kernel::{Schema, UniqueState};
use ks_obs::{ObsKind, ObsSink, NO_TXN};
use ks_protocol::manager::ProtocolStats;
use ks_protocol::{Backend, Certifier, ProtocolManager, SsiCertifier, TplCertifier};
use ks_wal::{Wal, WalConfig, WalRecord};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// State shared between the service front end and every session.
pub(crate) struct Shared {
    pub(crate) map: ShardMap,
    pub(crate) senders: Vec<Sender<Routed>>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) config: ServerConfig,
    /// Session-side sink (shard-stamped per call with `emit_for`); `None`
    /// when the service runs without a recorder.
    pub(crate) obs: Option<ObsSink>,
    /// Monotone seed for in-process trace origination (see
    /// `ServerConfig::trace_sample`): each sampled-candidate call draws
    /// a sequence number whose SplitMix64 hash is the trace id.
    pub(crate) trace_seq: std::sync::atomic::AtomicU64,
}

/// A concurrent multi-session transaction service over a pluggable
/// certification backend.
///
/// Entities are partitioned across shard worker threads (see
/// [`ShardMap`]); each worker owns a [`Certifier`] over its sub-schema —
/// the paper's CPC [`ProtocolManager`] by default, or the SSI / 2PL
/// backends via [`ServerConfig::backend`](crate::ServerConfig) — so
/// every certification decision is made single-threaded while
/// independent shards proceed in parallel. Sessions obtained from
/// [`TxnService::session`] are the only client surface.
pub struct TxnService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<Box<dyn Certifier>>>,
    flusher: Option<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
    wal: Option<Arc<WalShared>>,
}

impl TxnService {
    /// Start the service: build the shard partition and spawn one worker
    /// per shard, each with a protocol manager rooted at a trivial
    /// specification over the shard's slice of `initial`.
    ///
    /// With [`Durability::Wal`], startup first replays the log
    /// (recovered committed state replaces `initial`), then writes a
    /// synced checkpoint fence — so reused shard-local txn ids of this
    /// incarnation can never collide with dead epochs — and GCs the
    /// segments the checkpoint superseded.
    pub fn new(schema: Schema, initial: &UniqueState, config: ServerConfig) -> Self {
        let map = ShardMap::new(&schema, config.shards);
        let metrics = Arc::new(ServerMetrics::new(map.shards()));
        let obs = config.recorder.as_ref().map(|r| r.sink(u32::MAX));

        // Durability startup: recover, fence, arm the flusher.
        let mut recovery = None;
        let mut wal_shared: Option<Arc<WalShared>> = None;
        let mut flusher = None;
        let mut group_tx = None;
        if let Durability::Wal(opts) = &config.durability {
            let store = (opts.store)();
            let replayed = ks_wal::recover(&store).expect("wal recovery failed");
            let mut wal = Wal::open(
                store,
                WalConfig {
                    segment_bytes: opts.segment_bytes,
                },
            )
            .expect("wal open failed");
            // The startup states this incarnation will actually serve:
            // recovered committed state, or the configured initial.
            let states: Vec<Vec<i64>> = match &replayed.states {
                Some(states) => {
                    assert_eq!(
                        states.len(),
                        map.shards(),
                        "wal checkpoint shard count does not match this config"
                    );
                    states.clone()
                }
                None => (0..map.shards())
                    .map(|s| map.sub_initial(s, initial).values().to_vec())
                    .collect(),
            };
            // Checkpoint fence in a fresh segment, synced before any
            // request is served; older segments are then garbage.
            let fence = wal.rotate().expect("wal rotate failed");
            wal.append(&WalRecord::Checkpoint {
                shards: states.clone(),
            })
            .expect("wal checkpoint append failed");
            wal.sync().expect("wal checkpoint sync failed");
            wal.gc_before(fence).expect("wal segment gc failed");
            recovery = Some(RecoveryReport {
                recovered: replayed.states.is_some(),
                records: replayed.records,
                committed: replayed.committed.clone(),
                replay: replayed.replay.clone(),
                states: replayed.states.clone(),
                torn: replayed.torn.clone(),
            });
            let shared = Arc::new(WalShared::new(wal, opts.sync_on_commit));
            if opts.group_commit && opts.sync_on_commit {
                let (tx, rx) = unbounded();
                let (flush_shared, window, sink) =
                    (Arc::clone(&shared), opts.group_window, obs.clone());
                let telemetry = metrics.telemetry.clone();
                flusher = Some(std::thread::spawn(move || {
                    durability::flusher_loop(flush_shared, rx, window, sink, telemetry)
                }));
                group_tx = Some(tx);
            }
            wal_shared = Some(shared);
        }
        let recovered_states = recovery.as_ref().and_then(|r| r.states.clone());

        let mut senders = Vec::with_capacity(map.shards());
        let mut workers = Vec::with_capacity(map.shards());
        for shard in 0..map.shards() {
            let (tx, rx) = bounded(config.queue_depth.max(1));
            let sub_schema = map.sub_schema(shard).clone();
            let shard_initial = match &recovered_states {
                Some(states) => UniqueState::new(&sub_schema, states[shard].clone())
                    .expect("recovered wal state violates the schema domain"),
                None => map.sub_initial(shard, initial),
            };
            let mut cert: Box<dyn Certifier> = match config.backend {
                Backend::Cpc => Box::new(ProtocolManager::new(
                    sub_schema,
                    &shard_initial,
                    Specification::trivial(),
                )),
                Backend::Ssi => Box::new(SsiCertifier::new_with_detection(
                    sub_schema,
                    &shard_initial,
                    config.ssi_detect,
                )),
                Backend::TwoPl => Box::new(TplCertifier::new(sub_schema, &shard_initial)),
            };
            // One ring per shard, shared by the worker's request spans and
            // the certifier's protocol decisions (both run on this thread).
            let sink = config.recorder.as_ref().map(|r| r.sink(shard as u32));
            if let Some(s) = &sink {
                cert.attach_obs(s.clone());
                if let Some(report) = &recovery {
                    let counters = report.replay.iter().find(|r| r.shard == shard as u32);
                    s.emit(
                        NO_TXN,
                        ObsKind::RecoveryReplay {
                            writes: counters.map_or(0, |c| c.writes),
                            committed: counters.map_or(0, |c| c.committed),
                        },
                    );
                }
            }
            let wal = wal_shared.as_ref().map(|shared| WorkerWal {
                shared: Arc::clone(shared),
                group: group_tx.clone(),
                shard: shard as u32,
            });
            let metrics = Arc::clone(&metrics);
            workers.push(std::thread::spawn(move || {
                worker::run(cert, rx, metrics, sink, wal)
            }));
            senders.push(tx);
        }
        TxnService {
            shared: Arc::new(Shared {
                map,
                senders,
                metrics,
                config,
                obs,
                trace_seq: std::sync::atomic::AtomicU64::new(0),
            }),
            workers,
            flusher,
            recovery,
            wal: wal_shared,
        }
    }

    /// What WAL recovery found at startup; `None` when the service runs
    /// without durability.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Live WAL appender counters (records, bytes, fsyncs, flush queue
    /// depth); `None` when the service runs without durability.
    pub fn wal_stats(&self) -> Option<ks_wal::WalStats> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// Open a session, or shed it with [`ServerError::Backpressure`] when
    /// `max_sessions` are already open.
    pub fn session(&self) -> Result<Session, ServerError> {
        let metrics = &self.shared.metrics;
        let prior = metrics.sessions_in_flight.fetch_add(1, Ordering::Relaxed);
        if prior >= self.shared.config.max_sessions {
            metrics.sessions_in_flight.fetch_sub(1, Ordering::Relaxed);
            ServerMetrics::add(&metrics.sessions_shed);
            if let Some(obs) = &self.shared.obs {
                obs.emit(NO_TXN, ObsKind::SessionShed);
            }
            return Err(ServerError::Backpressure);
        }
        ServerMetrics::add(&metrics.sessions_admitted);
        if let Some(obs) = &self.shared.obs {
            obs.emit(NO_TXN, ObsKind::SessionAdmit);
        }
        Ok(Session::new(Arc::clone(&self.shared)))
    }

    /// The entity partition this service runs.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shared.map
    }

    /// Point-in-time counters, queue depths, and latency quantiles.
    pub fn metrics(&self) -> MetricsSnapshot {
        let depths = self.shared.senders.iter().map(|s| s.len()).collect();
        self.shared.metrics.snapshot(depths)
    }

    /// Incremental time-series telemetry: every closed window with
    /// sequence number `>= since`, plus the cursor to pass next time.
    /// Pulling the same cursor twice is idempotent; a remote poller
    /// reconstructs the full series — and checks SLOs — from deltas
    /// alone. Each pull leaves a `TelemetryDelta` breadcrumb in the
    /// flight recorder.
    pub fn telemetry(&self, since: u64) -> ks_obs::TelemetryDelta {
        let delta = self.shared.metrics.telemetry.delta(since);
        if let Some(obs) = &self.shared.obs {
            obs.emit(
                NO_TXN,
                ObsKind::TelemetryDelta {
                    seq: delta.next_seq.min(u32::MAX as u64) as u32,
                    windows: delta.windows.len() as u32,
                },
            );
        }
        delta
    }

    /// The live telemetry series itself (shared handle), for callers
    /// embedding the service in-process — `ks-top`'s live mode reads
    /// this directly.
    pub fn telemetry_series(&self) -> &ks_obs::TelemetrySeries {
        &self.shared.metrics.telemetry
    }

    /// Per-shard protocol statistics (re-evals, re-assigns, aborts…),
    /// gathered by round-tripping each worker.
    pub fn protocol_stats(&self) -> Result<Vec<ProtocolStats>, ServerError> {
        let mut receivers = Vec::with_capacity(self.shared.senders.len());
        for sender in &self.shared.senders {
            let (tx, rx) = bounded(1);
            sender
                .send(Routed {
                    enqueued: std::time::Instant::now(),
                    trace: 0,
                    request: Request::Stats { reply: tx },
                })
                .map_err(|_| ServerError::Shutdown)?;
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .map(|rx| {
                rx.recv_timeout(self.shared.config.request_timeout)
                    .map_err(|_| ServerError::Timeout)
            })
            .collect()
    }

    /// The certification backend every shard of this service runs.
    pub fn backend(&self) -> Backend {
        self.shared.config.backend
    }

    /// Stop accepting work, join every worker, and hand back the shard
    /// certifiers so callers can re-verify their histories offline
    /// (see [`crate::verify`]). Requests still queued behind the shutdown
    /// marker are dropped; their sessions observe `Shutdown`.
    pub fn shutdown(self) -> Vec<Box<dyn Certifier>> {
        for sender in &self.shared.senders {
            let _ = sender.send(Routed {
                enqueued: std::time::Instant::now(),
                trace: 0,
                request: Request::Shutdown,
            });
        }
        let certifiers: Vec<Box<dyn Certifier>> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        // Workers were the only ticket senders; with them gone the
        // group flusher drains its queue and exits.
        if let Some(flusher) = self.flusher {
            flusher.join().expect("group-commit flusher panicked");
        }
        certifiers
    }
}
