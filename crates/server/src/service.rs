//! The front end: shard workers, admission control, lifecycle.

use crate::config::ServerConfig;
use crate::metrics::{MetricsSnapshot, ServerMetrics};
use crate::routing::ShardMap;
use crate::session::Session;
use crate::worker::{self, Request, Routed};
use crate::ServerError;
use crossbeam::channel::{bounded, Sender};
use ks_core::Specification;
use ks_kernel::{Schema, UniqueState};
use ks_obs::{ObsKind, ObsSink, NO_TXN};
use ks_protocol::manager::ProtocolStats;
use ks_protocol::ProtocolManager;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// State shared between the service front end and every session.
pub(crate) struct Shared {
    pub(crate) map: ShardMap,
    pub(crate) senders: Vec<Sender<Routed>>,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) config: ServerConfig,
    /// Session-side sink (shard-stamped per call with `emit_for`); `None`
    /// when the service runs without a recorder.
    pub(crate) obs: Option<ObsSink>,
}

/// A concurrent multi-session transaction service over the KS protocol.
///
/// Entities are partitioned across shard worker threads (see
/// [`ShardMap`]); each worker owns a [`ProtocolManager`] over its
/// sub-schema, so every protocol decision is made single-threaded while
/// independent shards proceed in parallel. Sessions obtained from
/// [`TxnService::session`] are the only client surface.
pub struct TxnService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<ProtocolManager>>,
}

impl TxnService {
    /// Start the service: build the shard partition and spawn one worker
    /// per shard, each with a protocol manager rooted at a trivial
    /// specification over the shard's slice of `initial`.
    pub fn new(schema: Schema, initial: &UniqueState, config: ServerConfig) -> Self {
        let map = ShardMap::new(&schema, config.shards);
        let metrics = Arc::new(ServerMetrics::new(map.shards()));
        let obs = config.recorder.as_ref().map(|r| r.sink(u32::MAX));
        let mut senders = Vec::with_capacity(map.shards());
        let mut workers = Vec::with_capacity(map.shards());
        for shard in 0..map.shards() {
            let (tx, rx) = bounded(config.queue_depth.max(1));
            let mut pm = ProtocolManager::new(
                map.sub_schema(shard).clone(),
                &map.sub_initial(shard, initial),
                Specification::trivial(),
            );
            // One ring per shard, shared by the worker's request spans and
            // the manager's protocol decisions (both run on this thread).
            let sink = config.recorder.as_ref().map(|r| r.sink(shard as u32));
            if let Some(s) = &sink {
                pm.attach_obs(s.clone());
            }
            let metrics = Arc::clone(&metrics);
            workers.push(std::thread::spawn(move || {
                worker::run(pm, rx, metrics, sink)
            }));
            senders.push(tx);
        }
        TxnService {
            shared: Arc::new(Shared {
                map,
                senders,
                metrics,
                config,
                obs,
            }),
            workers,
        }
    }

    /// Open a session, or shed it with [`ServerError::Backpressure`] when
    /// `max_sessions` are already open.
    pub fn session(&self) -> Result<Session, ServerError> {
        let metrics = &self.shared.metrics;
        let prior = metrics.sessions_in_flight.fetch_add(1, Ordering::Relaxed);
        if prior >= self.shared.config.max_sessions {
            metrics.sessions_in_flight.fetch_sub(1, Ordering::Relaxed);
            ServerMetrics::add(&metrics.sessions_shed);
            if let Some(obs) = &self.shared.obs {
                obs.emit(NO_TXN, ObsKind::SessionShed);
            }
            return Err(ServerError::Backpressure);
        }
        ServerMetrics::add(&metrics.sessions_admitted);
        if let Some(obs) = &self.shared.obs {
            obs.emit(NO_TXN, ObsKind::SessionAdmit);
        }
        Ok(Session::new(Arc::clone(&self.shared)))
    }

    /// The entity partition this service runs.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shared.map
    }

    /// Point-in-time counters, queue depths, and latency quantiles.
    pub fn metrics(&self) -> MetricsSnapshot {
        let depths = self.shared.senders.iter().map(|s| s.len()).collect();
        self.shared.metrics.snapshot(depths)
    }

    /// Per-shard protocol statistics (re-evals, re-assigns, aborts…),
    /// gathered by round-tripping each worker.
    pub fn protocol_stats(&self) -> Result<Vec<ProtocolStats>, ServerError> {
        let mut receivers = Vec::with_capacity(self.shared.senders.len());
        for sender in &self.shared.senders {
            let (tx, rx) = bounded(1);
            sender
                .send(Routed {
                    enqueued: std::time::Instant::now(),
                    request: Request::Stats { reply: tx },
                })
                .map_err(|_| ServerError::Shutdown)?;
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .map(|rx| {
                rx.recv_timeout(self.shared.config.request_timeout)
                    .map_err(|_| ServerError::Timeout)
            })
            .collect()
    }

    /// Stop accepting work, join every worker, and hand back the shard
    /// managers so callers can extract model executions and verify them
    /// (see [`crate::verify`]). Requests still queued behind the shutdown
    /// marker are dropped; their sessions observe `Shutdown`.
    pub fn shutdown(self) -> Vec<ProtocolManager> {
        for sender in &self.shared.senders {
            let _ = sender.send(Routed {
                enqueued: std::time::Instant::now(),
                request: Request::Shutdown,
            });
        }
        self.workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect()
    }
}
