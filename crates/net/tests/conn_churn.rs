//! Connection-churn hygiene: the event-loop server must shed every
//! per-connection resource when a connection goes away. Waves of
//! short-lived connections open, handshake, and vanish; afterwards the
//! process file-descriptor count, the server's poller registrations,
//! and the ConnOpened/ConnClosed observability ledger must all return
//! to baseline — a leaked epoll registration, socket fd, or registry
//! entry shows up as a monotonically growing count long before 10k
//! connections would make it fatal. The same test then shuts the server
//! down and holds the OS thread count to its pre-start baseline, which
//! is what catches a server that spawns threads it never reaps (the
//! old thread-per-connection design leaked exited handler JoinHandles
//! until shutdown; a pooled design must not leak anything at all).

use ks_kernel::{Domain, Schema, UniqueState};
use ks_net::poll::fd_count;
use ks_net::wire::{self, Request, Response, HELLO_MAGIC};
use ks_net::{NetConfig, NetServer};
use ks_obs::{ObsKind, Recorder};
use ks_server::{ServerConfig, TxnService};
use std::io::{BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const WAVES: usize = 10;
const CONNS_PER_WAVE: usize = 100;

/// Current open-fd count of this process.
fn fds() -> usize {
    fd_count().expect("/proc/self/fd readable")
}

/// Current OS thread count of this process (the `Threads:` line of
/// `/proc/self/status`).
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line present")
}

/// Wait (bounded) until `probe` reports success; returns whether it did.
/// Resource release lags the client-side drop — the server has to
/// observe the EOF, sweep the session, and deregister — so every
/// baseline comparison polls instead of asserting instantly.
fn wait_for(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    loop {
        if probe() {
            return true;
        }
        if start.elapsed() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn churn_waves_leak_nothing_and_shutdown_restores_thread_baseline() {
    let threads_before_server = thread_count();

    let schema = Schema::uniform(
        (0..4).map(|i| format!("d{i}")),
        Domain::Range { min: 0, max: 100 },
    );
    let svc = TxnService::new(
        schema,
        &UniqueState::constant(4, 0),
        ServerConfig {
            max_sessions: CONNS_PER_WAVE + 8,
            ..ServerConfig::default()
        },
    );
    let recorder = Recorder::new(1 << 14);
    let server = NetServer::start(
        svc,
        "127.0.0.1:0",
        NetConfig {
            recorder: Some(recorder.clone()),
            poll_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Baseline after the server is up: listener, epoll fds, eventfds,
    // and the thread pool are all part of steady state, not leakage.
    let fd_baseline = fds();

    for wave in 0..WAVES {
        let socks: Vec<TcpStream> = (0..CONNS_PER_WAVE)
            .map(|i| {
                let s = TcpStream::connect(addr).expect("connect");
                s.set_nodelay(true).unwrap();
                let mut frame = Vec::new();
                wire::write_frame(
                    &mut frame,
                    &wire::encode_request(i as u64, 0, &Request::Hello { magic: HELLO_MAGIC }),
                )
                .unwrap();
                (&s).write_all(&frame).unwrap();
                s
            })
            .collect();
        // Every connection completes its handshake (so each one holds a
        // real session server-side, the heaviest per-connection state).
        for (i, sock) in socks.iter().enumerate() {
            let mut reader = BufReader::new(sock);
            let reply = wire::read_frame(&mut reader).unwrap().expect("HelloOk");
            match wire::decode_response(&reply) {
                Ok((corr, 0, Response::HelloOk { .. })) => assert_eq!(corr, i as u64),
                other => panic!("wave {wave} conn {i}: bad handshake reply: {other:?}"),
            }
        }
        drop(socks);
        // The wave must fully drain before the next starts: connections,
        // sessions, and poller registrations all back to zero.
        assert!(
            wait_for(Duration::from_secs(10), || server.connections() == 0
                && server.registrations() == 0),
            "wave {wave}: {} connections / {} registrations still alive",
            server.connections(),
            server.registrations()
        );
    }

    // File descriptors return to the post-start baseline: no leaked
    // sockets, no leaked epoll registrations holding fds alive.
    assert!(
        wait_for(Duration::from_secs(10), || fds() <= fd_baseline),
        "fd count {} never returned to baseline {} after {} churned connections",
        fds(),
        fd_baseline,
        WAVES * CONNS_PER_WAVE
    );

    // The observability ledger balances: every accepted connection
    // emitted exactly one ConnOpened and one ConnClosed.
    let events = recorder.drain();
    let opened = events
        .iter()
        .filter(|e| matches!(e.kind, ObsKind::ConnOpened { .. }))
        .count();
    let closed = events
        .iter()
        .filter(|e| matches!(e.kind, ObsKind::ConnClosed { .. }))
        .count();
    assert_eq!(opened, WAVES * CONNS_PER_WAVE, "ConnOpened count off");
    assert_eq!(closed, WAVES * CONNS_PER_WAVE, "ConnClosed count off");

    // Graceful shutdown reaps every thread the server ever started —
    // I/O pool, executor pool, and anything per-connection.
    drop(server.shutdown());
    assert!(
        wait_for(Duration::from_secs(10), || thread_count()
            <= threads_before_server),
        "thread count {} never returned to pre-server baseline {}",
        thread_count(),
        threads_before_server
    );
}
