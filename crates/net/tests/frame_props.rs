//! Property tests for incremental frame reassembly: a byte stream of
//! frames split at *any* boundary — every 2-chunk split exhaustively,
//! multi-chunk splits by property — reassembles through [`FrameReader`]
//! into exactly the frames a one-shot [`read_frame`] decode of the
//! unsplit stream produces. This is the invariant the ks-dst trickle
//! fault hammers end-to-end; here it is isolated to the reader itself.

use ks_net::wire::{read_frame, write_frame, FrameProgress, FrameReader};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read};

/// A reader that serves a byte stream in predetermined segments, going
/// quiet (one `WouldBlock`) at each segment boundary — a socket whose
/// peer's bytes straddle poll ticks.
struct TrickleReader {
    segments: VecDeque<Vec<u8>>,
    current: Vec<u8>,
    pos: usize,
}

impl TrickleReader {
    /// Split `stream` at the given sorted, in-range cut positions.
    fn new(stream: &[u8], cuts: &[usize]) -> Self {
        let mut segments = VecDeque::new();
        let mut start = 0;
        for &c in cuts {
            segments.push_back(stream[start..c].to_vec());
            start = c;
        }
        segments.push_back(stream[start..].to_vec());
        let current = segments.pop_front().unwrap();
        TrickleReader {
            segments,
            current,
            pos: 0,
        }
    }
}

impl Read for TrickleReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.current.len() {
            match self.segments.pop_front() {
                Some(next) => {
                    self.current = next;
                    self.pos = 0;
                    return Err(std::io::Error::new(
                        ErrorKind::WouldBlock,
                        "stream went quiet",
                    ));
                }
                None => return Ok(0),
            }
        }
        let n = out.len().min(self.current.len() - self.pos);
        out[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Concatenate `payloads` into one framed byte stream.
fn framed_stream(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for p in payloads {
        write_frame(&mut stream, p).unwrap();
    }
    stream
}

/// Drain a reader to EOF, collecting frames across `Pending` ticks.
fn drain(reader: &mut FrameReader<TrickleReader>) -> std::io::Result<Vec<Vec<u8>>> {
    let mut frames = Vec::new();
    loop {
        match reader.poll_frame()? {
            FrameProgress::Frame(f) => frames.push(f),
            FrameProgress::Pending => continue,
            FrameProgress::Eof => return Ok(frames),
        }
    }
}

/// The oracle: one-shot decode of the unsplit stream.
fn one_shot(stream: &[u8]) -> Vec<Vec<u8>> {
    let mut cursor = std::io::Cursor::new(stream);
    let mut frames = Vec::new();
    while let Some(f) = read_frame(&mut cursor).unwrap() {
        frames.push(f);
    }
    frames
}

/// Every 2-chunk split of a stream of mixed-size frames (empty, tiny,
/// larger-than-read-buffer) reassembles identically — including cuts
/// inside the 4-byte length prefix, the classic desync spot.
#[test]
fn every_two_chunk_split_reassembles() {
    let payloads = vec![
        Vec::new(),
        vec![0x42],
        (0u8..=255).collect::<Vec<u8>>(),
        vec![0xAB; 37],
    ];
    let stream = framed_stream(&payloads);
    let expected = one_shot(&stream);
    assert_eq!(expected, payloads);
    for cut in 0..=stream.len() {
        let cuts = if cut == 0 || cut == stream.len() {
            vec![]
        } else {
            vec![cut]
        };
        let mut reader = FrameReader::new(TrickleReader::new(&stream, &cuts));
        assert_eq!(
            drain(&mut reader).unwrap(),
            expected,
            "split at byte {cut} desynced the stream"
        );
    }
}

/// The degenerate limit: one byte per segment, a `Pending` tick between
/// every pair of bytes.
#[test]
fn byte_at_a_time_reassembles() {
    let payloads = vec![vec![1, 2, 3], Vec::new(), vec![9; 19]];
    let stream = framed_stream(&payloads);
    let cuts: Vec<usize> = (1..stream.len()).collect();
    let mut reader = FrameReader::new(TrickleReader::new(&stream, &cuts));
    assert_eq!(drain(&mut reader).unwrap(), payloads);
}

/// EOF at a frame boundary is clean; EOF anywhere inside a frame is a
/// hard `UnexpectedEof`, never a silent truncation.
#[test]
fn eof_inside_a_frame_is_an_error() {
    let payloads = vec![vec![7; 10]];
    let stream = framed_stream(&payloads);
    for cut in 1..stream.len() {
        let mut reader = FrameReader::new(TrickleReader::new(&stream[..cut], &[]));
        let err = drain(&mut reader).expect_err("truncated stream must error");
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof, "cut at {cut}");
    }
}

proptest! {
    /// Arbitrary frame sequences split at arbitrary multi-chunk
    /// boundaries reassemble to the one-shot decode of the same bytes.
    #[test]
    fn multi_chunk_splits_reassemble(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..64), 0..6),
        raw_cuts in prop::collection::vec(any::<u32>(), 0..12),
    ) {
        let stream = framed_stream(&payloads);
        let mut cuts: Vec<usize> = raw_cuts
            .into_iter()
            .filter(|_| !stream.is_empty())
            .map(|c| 1 + c as usize % stream.len().max(1))
            .filter(|&c| c < stream.len())
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut reader = FrameReader::new(TrickleReader::new(&stream, &cuts));
        prop_assert_eq!(drain(&mut reader).unwrap(), one_shot(&stream));
    }
}
