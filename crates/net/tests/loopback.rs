//! Loopback integration: concurrent TCP connections drive real
//! transactions through a `NetServer`, and after the graceful drain every
//! shard manager still passes the paper's model checker — the wire must
//! not be able to smuggle an incorrect execution past the protocol.

use ks_core::Specification;
use ks_kernel::{Domain, EntityId, Schema, UniqueState};
use ks_net::{NetClientConfig, NetConfig, NetServer, RemoteSession};
use ks_obs::{ObsKind, Recorder};
use ks_predicate::{Atom, Clause, CmpOp, Cnf, Strategy};
use ks_server::{verify_managers, Client, ServerConfig, ServerError, TxnBuilder, TxnService};

const ENTITIES: usize = 16;
const CLIENTS: usize = 5;
const TXNS_PER_CLIENT: usize = 8;

fn tautology_spec(entities: &[EntityId]) -> Specification {
    Specification::new(
        Cnf::new(
            entities
                .iter()
                .map(|&e| Clause::unit(Atom::cmp_const(e, CmpOp::Ge, i64::MIN / 2)))
                .collect(),
        ),
        Cnf::truth(),
    )
}

fn start_server_with(shards: usize, config: NetConfig) -> NetServer {
    let schema = Schema::uniform(
        (0..ENTITIES).map(|i| format!("d{i}")),
        Domain::Range {
            min: i64::MIN / 2,
            max: i64::MAX / 2,
        },
    );
    let initial = UniqueState::constant(ENTITIES, 0);
    let svc = TxnService::new(
        schema,
        &initial,
        ServerConfig {
            shards,
            max_sessions: CLIENTS + 2,
            ..ServerConfig::default()
        },
    );
    NetServer::start(svc, "127.0.0.1:0", config).expect("bind loopback")
}

fn start_server(shards: usize, recorder: Option<Recorder>) -> NetServer {
    start_server_with(
        shards,
        NetConfig {
            recorder,
            ..NetConfig::default()
        },
    )
}

/// The workload body, written once against the trait: it cannot tell a
/// `Session` from a `RemoteSession`.
fn run_one_client<C: Client>(session: &C, client: usize, shards: usize) -> u64 {
    let home = client % shards;
    let per_shard = ENTITIES / shards;
    let mut committed = 0;
    for round in 0..TXNS_PER_CLIENT {
        let entities: Vec<EntityId> = (0..2.min(per_shard))
            .map(|i| EntityId(((i + round) % per_shard * shards + home) as u32))
            .collect();
        let mut sorted = entities.clone();
        sorted.sort_unstable_by_key(|e| e.0);
        sorted.dedup();
        let txn = match session.open(TxnBuilder::new(tautology_spec(&sorted))) {
            Ok(t) => t,
            Err(e) if e.is_retryable() => continue,
            Err(e) => panic!("open: {e}"),
        };
        let step = || -> Result<(), ServerError> {
            session.validate(txn)?;
            for (i, &e) in sorted.iter().enumerate() {
                if i % 2 == 0 {
                    session.write(txn, e, (client * 100 + round) as i64)?;
                } else {
                    session.read(txn, e)?;
                }
            }
            session.commit(txn)
        };
        match step() {
            Ok(()) => committed += 1,
            Err(_) => {
                let _ = session.abort(txn);
            }
        }
    }
    committed
}

/// ≥ 4 concurrent connections, real transactions, graceful shutdown,
/// model check clean.
#[test]
fn concurrent_connections_commit_and_verify_clean() {
    let recorder = Recorder::new(1 << 14);
    let server = start_server(2, Some(recorder.clone()));
    let addr = server.local_addr();
    assert!(CLIENTS >= 4, "the test must exercise ≥4 connections");
    let committed: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let session =
                        RemoteSession::connect(addr, NetClientConfig::default()).expect("connect");
                    assert_eq!(session.shards(), 2, "HelloOk reports the shard count");
                    let n = run_one_client(&session, client, session.shards());
                    session.close().expect("goodbye");
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert!(committed > 0, "the workload must make progress");
    let report = verify_managers(&server.shutdown());
    assert!(report.is_correct(), "{:?}", report.violations);
    assert_eq!(report.committed as u64, committed, "wire loses no commits");
    // Connection lifecycle is observable: one opened/closed pair per
    // client connection.
    let events = recorder.drain();
    let opened = events
        .iter()
        .filter(|e| matches!(e.kind, ObsKind::ConnOpened { .. }))
        .count();
    let closed = events
        .iter()
        .filter(|e| matches!(e.kind, ObsKind::ConnClosed { .. }))
        .count();
    assert_eq!(opened, CLIENTS);
    assert_eq!(closed, CLIENTS);
}

/// Sibling ordering and strategy overrides survive the wire: a `before`
/// edge opened remotely gates the earlier sibling's commit exactly as it
/// does in-process.
#[test]
fn ordering_edges_and_strategy_cross_the_wire() {
    let server = start_server(1, None);
    let addr = server.local_addr();
    let session = RemoteSession::connect(addr, NetClientConfig::default()).expect("connect");
    let e = EntityId(0);
    let early = session
        .open(TxnBuilder::new(tautology_spec(&[e])).strategy(Strategy::GreedyLatest))
        .expect("open early");
    let late = session
        .open(TxnBuilder::new(tautology_spec(&[e])).before(early))
        .expect("open late, ordered before early");
    // `early` may not commit while its predecessor `late` is still live.
    session.validate(early).expect("validate early");
    session.write(early, e, 1).expect("write early");
    match session.commit(early) {
        Err(ServerError::Busy) => {}
        other => panic!("commit before the predecessor finished: {other:?}"),
    }
    session.validate(late).expect("validate late");
    session.commit(late).expect("commit late");
    session.commit(early).expect("commit early after late");
    session.close().expect("goodbye");
    let report = verify_managers(&server.shutdown());
    assert!(report.is_correct(), "{:?}", report.violations);
    assert_eq!(report.committed, 2);
}

/// A dropped connection (no Shutdown frame, no aborts) must not wedge the
/// server: its open transactions are aborted by the connection reaper and
/// other clients proceed.
#[test]
fn dropped_connection_releases_its_transactions() {
    let server = start_server(1, None);
    let addr = server.local_addr();
    let e = EntityId(0);
    {
        // This client validates (acquiring R_v locks) and vanishes.
        let session = RemoteSession::connect(addr, NetClientConfig::default()).expect("connect");
        let txn = session.open(TxnBuilder::new(tautology_spec(&[e]))).unwrap();
        session.validate(txn).unwrap();
        session.write(txn, e, 42).unwrap();
        // Drop without close(): simulates a client crash.
    }
    // Rendezvous with the reaper instead of retrying the whole workload:
    // the server aborts the dead connection's transactions *before* its
    // session drops out of `sessions_in_flight`, so once the survivor
    // observes itself as the only session, the crashed client's locks
    // are provably released and a single attempt must succeed.
    let session = RemoteSession::connect(addr, NetClientConfig::default()).expect("connect");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while session.metrics().expect("metrics").sessions_in_flight > 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "server never reaped the dead connection"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let txn = session.open(TxnBuilder::new(tautology_spec(&[e]))).unwrap();
    session.validate(txn).expect("validate after reap");
    session.write(txn, e, 7).expect("write after reap");
    session
        .commit(txn)
        .expect("survivor must commit after the crash is reaped");
    session.close().expect("goodbye");
    let report = verify_managers(&server.shutdown());
    assert!(report.is_correct(), "{:?}", report.violations);
}

/// A frame that straddles the server's read-timeout poll interval —
/// trickled in chunks split inside the length prefix *and* inside the
/// payload, with pauses several poll ticks long — must be reassembled,
/// not desynchronized: the reader retains partial-frame progress across
/// its stop-flag checks instead of restarting the frame from scratch.
#[test]
fn slow_frames_straddling_the_poll_interval_stay_in_sync() {
    use ks_net::wire::{self, Request, Response, HELLO_MAGIC};
    use std::io::Write as _;
    use std::time::Duration;

    let poll = Duration::from_millis(10);
    let server = start_server_with(
        1,
        NetConfig {
            poll_interval: poll,
            ..NetConfig::default()
        },
    );
    let addr = server.local_addr();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    // Handshake, whole frames.
    wire::write_frame(
        &mut stream,
        &wire::encode_request(0, 0, &Request::Hello { magic: HELLO_MAGIC }),
    )
    .unwrap();
    let hello_ok = wire::read_frame(&mut reader).unwrap().expect("HelloOk");
    assert!(matches!(
        wire::decode_response(&hello_ok),
        Ok((0, 0, Response::HelloOk { .. }))
    ));
    // Trickle an Open frame: 2 bytes of the length prefix, then a sliver
    // spanning the prefix/payload boundary, then the rest — each chunk
    // separated by several poll ticks (derived from the configured
    // interval, so the pause stays meaningful if the interval changes).
    let payload = wire::encode_request(
        1,
        0,
        &Request::Open {
            spec: tautology_spec(&[EntityId(0)]),
            after: vec![],
            before: vec![],
            strategy: None,
            backend: None,
        },
    );
    let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&payload);
    for chunk in [&framed[..2], &framed[2..7], &framed[7..]] {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(poll * 4);
    }
    let reply = wire::read_frame(&mut reader).unwrap().expect("reply");
    match wire::decode_response(&reply) {
        Ok((1, 0, Response::Opened { txn })) => assert_eq!(txn, 0),
        other => panic!("stream desynchronized: {other:?}"),
    }
    // The stream is still in sync: ordinary frames keep round-tripping,
    // each reply echoing its request's correlation id.
    for (corr, req) in [
        (2, Request::Validate { txn: 0 }),
        (3, Request::Commit { txn: 0 }),
    ] {
        wire::write_frame(&mut stream, &wire::encode_request(corr, 0, &req)).unwrap();
        let reply = wire::read_frame(&mut reader).unwrap().expect("reply");
        match wire::decode_response(&reply) {
            Ok((c, 0, Response::Done)) => assert_eq!(c, corr, "{req:?} reply corr"),
            other => panic!("{req:?} after the trickled frame: {other:?}"),
        }
    }
    wire::write_frame(&mut stream, &wire::encode_request(4, 0, &Request::Shutdown)).unwrap();
    let bye = wire::read_frame(&mut reader).unwrap().expect("Bye");
    assert!(matches!(
        wire::decode_response(&bye),
        Ok((4, 0, Response::Bye))
    ));
    let report = verify_managers(&server.shutdown());
    assert!(report.is_correct(), "{:?}", report.violations);
    assert_eq!(report.committed, 1);
}

/// Metrics cross the wire: the remote snapshot sees the same commits the
/// client made.
#[test]
fn remote_metrics_reflect_the_work() {
    let server = start_server(1, None);
    let addr = server.local_addr();
    let session = RemoteSession::connect(addr, NetClientConfig::default()).expect("connect");
    let e = EntityId(0);
    let txn = session.open(TxnBuilder::new(tautology_spec(&[e]))).unwrap();
    session.validate(txn).unwrap();
    session.write(txn, e, 9).unwrap();
    session.commit(txn).unwrap();
    let m = session.metrics().expect("metrics over the wire");
    assert_eq!(m.committed, 1);
    assert!(
        m.requests >= 4,
        "define+validate+write+commit: {}",
        m.requests
    );
    assert_eq!(m.sessions_in_flight, 1);
    session.close().expect("goodbye");
    drop(verify_managers(&server.shutdown()));
}
