//! Demultiplexer correctness under forced reply reordering: a mock
//! transport buffers every response and releases them in *reverse*
//! arrival order, so a pipelining client only gets correct results if
//! its correlation-id demux routes each reply to the caller that sent
//! the matching request — never by arrival position.

use ks_kernel::EntityId;
use ks_net::wire::{self, Request, Response};
use ks_net::{NetClientConfig, RemoteSession, Transport, TransportRx};
use ks_obs::{ObsKind, Recorder};
use ks_server::{BatchOp, BatchReply, Client, ServerError};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Shared state of the in-memory mock connection.
struct MockState {
    /// Bytes the client may read (released response frames).
    rx_buf: VecDeque<u8>,
    /// Request bytes accumulated until a whole frame is present.
    partial: Vec<u8>,
    /// Complete response frames held back for reordered release.
    held: Vec<Vec<u8>>,
    /// Release trigger: once this many responses are held, they are
    /// flushed to `rx_buf` in reverse arrival order.
    release_after: usize,
    opened: u64,
}

struct Shared {
    state: Mutex<MockState>,
    cv: Condvar,
}

impl Shared {
    /// Frame a response, echoing `corr`, and either hold it for the next
    /// reversed release or (for the handshake) deliver it immediately.
    fn respond(state: &mut MockState, cv: &Condvar, corr: u64, resp: &Response, immediate: bool) {
        let payload = wire::encode_response(corr, 0, resp);
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        if immediate {
            state.rx_buf.extend(frame);
            cv.notify_all();
            return;
        }
        state.held.push(frame);
        if state.held.len() >= state.release_after {
            // The adversarial step: everything held goes out newest-first.
            while let Some(frame) = state.held.pop() {
                state.rx_buf.extend(frame);
            }
            cv.notify_all();
        }
    }
}

/// The mock server logic: scripted, state-light responses whose values
/// encode which request they answer, so misrouting is detectable.
fn answer(state: &mut MockState, cv: &Condvar, payload: &[u8]) {
    let (corr, _trace, req) = wire::decode_request(payload).expect("client sends valid frames");
    match req {
        Request::Hello { .. } => Shared::respond(
            state,
            cv,
            corr,
            &Response::HelloOk {
                shards: 1,
                backend: ks_server::Backend::Cpc,
            },
            true,
        ),
        Request::Open { .. } => {
            // Released immediately: the client opens serially, so holding
            // the reply would only stall the burst we want to reorder.
            let txn = state.opened;
            state.opened += 1;
            Shared::respond(state, cv, corr, &Response::Opened { txn }, true)
        }
        Request::Read { txn, entity } => {
            let value = i64::from(entity.0) * 1000 + txn as i64;
            Shared::respond(state, cv, corr, &Response::Value { value }, false)
        }
        Request::Batch { ops } => {
            let results = ops
                .iter()
                .map(|&(txn, op)| match op {
                    BatchOp::Read(e) => Ok(BatchReply::Value(i64::from(e.0) * 1000 + txn as i64)),
                    BatchOp::Write(..) => Ok(BatchReply::Done),
                })
                .collect();
            Shared::respond(state, cv, corr, &Response::Batch { results }, false)
        }
        Request::Shutdown => Shared::respond(state, cv, corr, &Response::Bye, true),
        other => {
            let _ = other;
            Shared::respond(state, cv, corr, &Response::Done, false)
        }
    }
}

struct MockTx(Arc<Shared>);

impl Write for MockTx {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut state = self.0.state.lock().unwrap();
        state.partial.extend_from_slice(buf);
        // Process every complete request frame accumulated so far.
        loop {
            if state.partial.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(state.partial[..4].try_into().unwrap()) as usize;
            if state.partial.len() < 4 + len {
                break;
            }
            let payload: Vec<u8> = state.partial.drain(..4 + len).skip(4).collect();
            answer(&mut state, &self.0.cv, &payload);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct MockRx {
    shared: Arc<Shared>,
    deadline: Option<Duration>,
}

impl Read for MockRx {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let timeout = self.deadline.unwrap_or(Duration::from_secs(30));
        let mut state = self.shared.state.lock().unwrap();
        while state.rx_buf.is_empty() {
            let (s, result) = self.shared.cv.wait_timeout(state, timeout).unwrap();
            state = s;
            if result.timed_out() && state.rx_buf.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "mock read deadline",
                ));
            }
        }
        let n = buf.len().min(state.rx_buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = state.rx_buf.pop_front().unwrap();
        }
        Ok(n)
    }
}

impl TransportRx for MockRx {
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> std::io::Result<()> {
        self.deadline = deadline;
        Ok(())
    }
}

/// An in-memory [`Transport`] whose "server" answers inline but releases
/// replies in reverse order once `release_after` are held.
struct ReorderingTransport(Arc<Shared>);

impl ReorderingTransport {
    fn new(release_after: usize) -> Self {
        ReorderingTransport(Arc::new(Shared {
            state: Mutex::new(MockState {
                rx_buf: VecDeque::new(),
                partial: Vec::new(),
                held: Vec::new(),
                release_after: release_after.max(1),
                opened: 0,
            }),
            cv: Condvar::new(),
        }))
    }
}

impl Transport for ReorderingTransport {
    type Rx = MockRx;
    type Tx = MockTx;

    fn split(self) -> (MockRx, MockTx) {
        (
            MockRx {
                shared: Arc::clone(&self.0),
                deadline: None,
            },
            MockTx(Arc::clone(&self.0)),
        )
    }
}

/// How many `Batch` frames the client sends for `ops_len` ops at a given
/// pipeline depth (mirrors `RemoteSession::run_batch`'s chunking).
fn chunks_for(ops_len: usize, depth: usize) -> usize {
    let frames = depth.min(ops_len);
    let chunk = ops_len.div_ceil(frames);
    ops_len.div_ceil(chunk)
}

fn config(recorder: Option<Recorder>) -> NetClientConfig {
    NetClientConfig {
        request_deadline: Duration::from_secs(10),
        recorder,
        ..NetClientConfig::default()
    }
}

proptest! {
    /// N concurrent callers each read a distinct entity through one
    /// session; all N replies are released in reverse order. Every
    /// caller must still receive the value derived from *its own*
    /// request — a demux keyed on anything but the correlation id hands
    /// at least one caller someone else's reply.
    #[test]
    fn out_of_order_replies_demultiplex_to_their_callers(n in 2usize..6, offset in 0u32..1000) {
        let session =
            RemoteSession::over(ReorderingTransport::new(n), config(None)).expect("handshake");
        let results: Vec<(u32, Result<i64, ServerError>)> = std::thread::scope(|scope| {
            let session = &session;
            let handles: Vec<_> = (0..n as u32)
                .map(|i| {
                    let entity = EntityId(offset + i);
                    scope.spawn(move || {
                        (entity.0, session.read(ks_net::RemoteTxn(7), entity))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (entity, result) in results {
            let value = result.expect("read survives reordering");
            prop_assert_eq!(value, i64::from(entity) * 1000 + 7, "entity {} got someone else's reply", entity);
        }
        prop_assert!(!session.is_poisoned());
    }

    /// A pipelined batch burst: ops are chunked into several `Batch`
    /// frames in flight at once, the mock releases the frame replies in
    /// reverse, and the concatenated per-op results must still line up
    /// with op order exactly.
    #[test]
    fn pipelined_batch_results_stay_in_op_order(ops_len in 2usize..12, depth in 2usize..5) {
        let recorder = Recorder::new(1024);
        let frames = chunks_for(ops_len, depth);
        let session = RemoteSession::over(
            ReorderingTransport::new(frames),
            config(Some(recorder.clone())),
        )
        .expect("handshake");
        let spec = ks_core::Specification::new(
            ks_predicate::Cnf::truth(),
            ks_predicate::Cnf::truth(),
        );
        let txn = session
            .open(ks_server::TxnBuilder::new(spec).pipeline_depth(depth))
            .expect("open");
        let ops: Vec<BatchOp> = (0..ops_len as u32).map(|i| BatchOp::Read(EntityId(i))).collect();
        let results = session.run_batch(txn, &ops).expect("batch survives reordering");
        prop_assert_eq!(results.len(), ops.len());
        for (i, r) in results.iter().enumerate() {
            let got = r.as_ref().expect("per-op ok");
            prop_assert_eq!(
                *got,
                BatchReply::Value(i64::from(i as u32) * 1000),
                "op {} out of order", i
            );
        }
        let batch_events: Vec<u32> = recorder
            .drain()
            .into_iter()
            .filter_map(|e| match e.kind {
                ObsKind::NetBatch { ops } => Some(ops),
                _ => None,
            })
            .collect();
        prop_assert_eq!(batch_events.len(), frames, "one NetBatch event per frame");
        prop_assert_eq!(batch_events.iter().map(|&n| n as usize).sum::<usize>(), ops_len);
    }
}
