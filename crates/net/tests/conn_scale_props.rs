//! Property tests for poll-loop frame reassembly: the decode path the
//! event-loop server runs — [`FrameState::poll_with`] fed by readiness
//! ticks, payload buffers borrowed from a shared [`BufferPool`] — under
//! adversarial readiness schedules: byte-at-a-time arrival, frames
//! straddling ticks (cuts inside the 4-byte length prefix, the classic
//! desync spot), and many connections interleaved on one I/O thread so
//! each connection's mid-frame state must survive the others' progress.
//! The oracle is the same as `frame_props.rs`: a one-shot decode of each
//! connection's unsplit stream.

use ks_net::poll::BufferPool;
use ks_net::wire::{read_frame, write_frame, FrameProgress, FrameState};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read};

/// A nonblocking-socket stand-in: bytes become readable only as the
/// schedule releases them; reading past what has arrived is
/// `WouldBlock`, and EOF only after the peer closes.
#[derive(Default)]
struct SimSocket {
    arrived: VecDeque<u8>,
    closed: bool,
}

impl SimSocket {
    fn release(&mut self, bytes: &[u8]) {
        self.arrived.extend(bytes);
    }
}

impl Read for SimSocket {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.arrived.is_empty() {
            if self.closed {
                return Ok(0);
            }
            return Err(std::io::Error::new(ErrorKind::WouldBlock, "nothing yet"));
        }
        let n = out.len().min(self.arrived.len());
        for slot in out[..n].iter_mut() {
            *slot = self.arrived.pop_front().unwrap();
        }
        Ok(n)
    }
}

/// One simulated connection on the shared I/O thread: its socket, its
/// retained decode state, its not-yet-released byte stream, and what it
/// has reassembled so far.
struct SimConn {
    socket: SimSocket,
    state: FrameState,
    stream: Vec<u8>,
    sent: usize,
    frames: Vec<Vec<u8>>,
}

impl SimConn {
    fn new(payloads: &[Vec<u8>]) -> Self {
        let mut stream = Vec::new();
        for p in payloads {
            write_frame(&mut stream, p).unwrap();
        }
        SimConn {
            socket: SimSocket::default(),
            state: FrameState::new(),
            stream,
            sent: 0,
            frames: Vec::new(),
        }
    }

    /// The oracle: one-shot decode of the unsplit stream.
    fn expected(&self) -> Vec<Vec<u8>> {
        let mut cursor = std::io::Cursor::new(&self.stream);
        let mut frames = Vec::new();
        while let Some(f) = read_frame(&mut cursor).unwrap() {
            frames.push(f);
        }
        frames
    }

    /// One readiness tick: up to `n` more bytes arrive, then the decode
    /// loop runs until the socket would block — exactly what the I/O
    /// thread does on `EPOLLIN`. Returns decoded-frame payload buffers
    /// to the pool, as the executor does after handling.
    fn tick(&mut self, n: usize, pool: &BufferPool) {
        let n = n.min(self.stream.len() - self.sent);
        self.socket.release(&self.stream[self.sent..self.sent + n]);
        self.sent += n;
        if self.sent == self.stream.len() {
            self.socket.closed = true;
        }
        loop {
            let mut alloc = |len: usize| pool.get(len);
            match self.state.poll_with(&mut self.socket, &mut alloc) {
                Ok(FrameProgress::Frame(payload)) => {
                    self.frames.push(payload.clone());
                    pool.put(payload);
                }
                Ok(FrameProgress::Pending) | Ok(FrameProgress::Eof) => break,
                Err(e) => panic!("well-formed stream failed to decode: {e}"),
            }
        }
    }

    fn done(&self) -> bool {
        self.sent == self.stream.len()
    }
}

/// A pool whose free list starts out full of garbage-filled buffers, so
/// any decode that trusts recycled contents (instead of overwriting
/// every byte) corrupts a frame and fails the oracle comparison.
fn dirty_pool(cap: usize) -> BufferPool {
    let pool = BufferPool::new(cap);
    for _ in 0..cap {
        pool.put(vec![0xAA; 48]);
    }
    pool
}

/// Run `conns` to completion under a schedule of (connection, byte
/// budget) readiness ticks, then compare every connection against its
/// one-shot oracle. Leftover ticks (or starved connections) are topped
/// up round-robin so every stream finishes.
fn run_schedule(mut conns: Vec<SimConn>, schedule: &[(usize, usize)], pool: &BufferPool) {
    for &(c, n) in schedule {
        let c = c % conns.len();
        conns[c].tick(n.max(1), pool);
    }
    while conns.iter().any(|c| !c.done()) {
        for c in &mut conns {
            if !c.done() {
                c.tick(7, pool);
            }
        }
    }
    for (i, conn) in conns.iter().enumerate() {
        assert_eq!(conn.frames, conn.expected(), "connection {i} desynced");
    }
}

/// Mixed-size frames (empty, tiny, bigger-than-read-chunk) for conn `i`,
/// each payload tagged with the connection so cross-connection buffer
/// mixups cannot cancel out.
fn payloads_for(i: u8) -> Vec<Vec<u8>> {
    vec![
        vec![i; 3],
        Vec::new(),
        (0u8..=255).map(|b| b ^ i).collect(),
        vec![i.wrapping_add(1); 37],
    ]
}

/// Byte-at-a-time arrival: a `Pending` tick between every pair of bytes,
/// with the decode state carrying a partial length prefix or payload
/// across every single tick.
#[test]
fn byte_at_a_time_schedule_reassembles() {
    let pool = dirty_pool(4);
    let conns = vec![SimConn::new(&payloads_for(1))];
    let total = conns[0].stream.len();
    let schedule: Vec<(usize, usize)> = (0..total).map(|_| (0, 1)).collect();
    run_schedule(conns, &schedule, &pool);
}

/// Frames straddling ticks at every boundary: for each cut position —
/// including all four length-prefix bytes — the stream arrives in two
/// releases separated by a quiet tick.
#[test]
fn every_frame_straddling_cut_reassembles() {
    let payloads = payloads_for(2);
    let total = SimConn::new(&payloads).stream.len();
    for cut in 1..total {
        let pool = dirty_pool(2);
        let conns = vec![SimConn::new(&payloads)];
        run_schedule(conns, &[(0, cut)], &pool);
    }
}

/// Eight connections interleaved on one simulated I/O thread, each
/// receiving one byte per round-robin turn: every connection's mid-frame
/// state must survive all the others being serviced in between, and the
/// shared pool must hand each decode a buffer the previous user's bytes
/// cannot leak through.
#[test]
fn interleaved_connections_reassemble_independently() {
    let pool = dirty_pool(3);
    let conns: Vec<SimConn> = (0..8).map(|i| SimConn::new(&payloads_for(i))).collect();
    let longest = conns.iter().map(|c| c.stream.len()).max().unwrap();
    let mut schedule = Vec::new();
    for _ in 0..longest {
        for c in 0..8 {
            schedule.push((c, 1));
        }
    }
    run_schedule(conns, &schedule, &pool);
}

proptest! {
    /// Arbitrary frame mixes over arbitrary interleavings: any number of
    /// connections, any readiness order, any tick granularity — all
    /// streams reassemble to their one-shot oracle through one shared
    /// (pre-dirtied, recycling) pool.
    #[test]
    fn adversarial_schedules_reassemble(
        per_conn in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec(any::<u8>(), 0..48), 0..5),
            1..6),
        schedule in prop::collection::vec((any::<usize>(), 1usize..13), 0..200),
        pool_cap in 0usize..5,
    ) {
        let pool = dirty_pool(pool_cap);
        let conns: Vec<SimConn> =
            per_conn.iter().map(|p| SimConn::new(p)).collect();
        run_schedule(conns, &schedule, &pool);
    }
}

// ---------------------------------------------------------------------
// The same adversarial shapes against the real server
// ---------------------------------------------------------------------

mod live {
    use ks_kernel::{Domain, Schema, UniqueState};
    use ks_net::wire::{self, Request, Response, HELLO_MAGIC};
    use ks_net::{NetConfig, NetServer};
    use ks_server::{ServerConfig, TxnService};
    use std::io::Write as _;

    /// Eight real sockets multiplexed on a single I/O thread, every
    /// client's pipelined frames trickled one byte per round-robin turn
    /// (so every frame of every connection straddles many readiness
    /// ticks, interleaved with all the others): each connection must get
    /// exactly its own replies, in order, with its own correlation ids.
    #[test]
    fn one_io_thread_demultiplexes_trickled_clients() {
        const CLIENTS: usize = 8;
        const REQUESTS: u64 = 3;
        let schema = Schema::uniform(
            (0..4).map(|i| format!("d{i}")),
            Domain::Range { min: 0, max: 100 },
        );
        let svc = TxnService::new(
            schema,
            &UniqueState::constant(4, 0),
            ServerConfig {
                max_sessions: CLIENTS + 1,
                ..ServerConfig::default()
            },
        );
        let server = NetServer::start(
            svc,
            "127.0.0.1:0",
            NetConfig {
                io_threads: 1,
                poll_interval: std::time::Duration::from_millis(5),
                ..NetConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();

        // Build each client's whole pipelined byte stream up front:
        // Hello, then `REQUESTS` Metrics requests with client-tagged
        // correlation ids.
        let mut streams: Vec<Vec<u8>> = (0..CLIENTS as u64)
            .map(|c| {
                let mut s = Vec::new();
                wire::write_frame(
                    &mut s,
                    &wire::encode_request(c << 32, 0, &Request::Hello { magic: HELLO_MAGIC }),
                )
                .unwrap();
                for r in 1..=REQUESTS {
                    wire::write_frame(
                        &mut s,
                        &wire::encode_request((c << 32) | r, 0, &Request::Metrics),
                    )
                    .unwrap();
                }
                s
            })
            .collect();

        let socks: Vec<std::net::TcpStream> = (0..CLIENTS)
            .map(|_| {
                let s = std::net::TcpStream::connect(addr).expect("connect");
                s.set_nodelay(true).unwrap();
                s
            })
            .collect();

        // Trickle: one byte from each client per turn, a pause every few
        // turns so the server's event loop observes genuinely partial
        // frames rather than coalesced reads.
        let longest = streams.iter().map(Vec::len).max().unwrap();
        for turn in 0..longest {
            for (sock, stream) in socks.iter().zip(&streams) {
                if let Some(&b) = stream.get(turn) {
                    (&*sock).write_all(&[b]).unwrap();
                }
            }
            if turn % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
        }
        streams.clear();

        // Every client reads back exactly its replies, in its order.
        for (c, sock) in socks.iter().enumerate() {
            let c = c as u64;
            let mut reader = std::io::BufReader::new(sock);
            let hello = wire::read_frame(&mut reader).unwrap().expect("HelloOk");
            match wire::decode_response(&hello) {
                Ok((corr, 0, Response::HelloOk { .. })) => assert_eq!(corr, c << 32),
                other => panic!("client {c}: bad handshake reply: {other:?}"),
            }
            for r in 1..=REQUESTS {
                let frame = wire::read_frame(&mut reader).unwrap().expect("reply");
                match wire::decode_response(&frame) {
                    Ok((corr, 0, Response::Metrics(_))) => {
                        assert_eq!(corr, (c << 32) | r, "client {c} reply {r} out of order");
                    }
                    other => panic!("client {c} reply {r}: {other:?}"),
                }
            }
        }
        drop(socks);
        drop(server.shutdown());
    }
}
