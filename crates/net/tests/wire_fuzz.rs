//! Wire-format round-trip and robustness: every frame type — requests,
//! responses, and the full error-code table — survives encode → decode
//! exactly, and the decoder never panics on arbitrary bytes.

use ks_core::Specification;
use ks_kernel::EntityId;
use ks_net::wire::{
    decode_request, decode_response, encode_request, encode_response, peek_corr, read_frame,
    write_frame, Request, Response, WireMetrics, HELLO_MAGIC, MAX_BATCH_OPS, MAX_FRAME,
};
use ks_predicate::{Atom, Clause, CmpOp, Cnf, Operand, Strategy as KsStrategy};
use ks_server::{Backend, BatchOp, BatchReply, ServerError};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    (0u8..6).prop_map(|sel| match sel {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    })
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    (any::<bool>(), any::<u32>(), any::<i64>()).prop_map(|(is_entity, e, c)| {
        if is_entity {
            Operand::Entity(EntityId(e))
        } else {
            Operand::Const(c)
        }
    })
}

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((arb_operand(), arb_op(), arb_operand()), 1..4),
        0..4,
    )
    .prop_map(|clauses| {
        Cnf::new(
            clauses
                .into_iter()
                .map(|atoms| {
                    Clause::new(
                        atoms
                            .into_iter()
                            .map(|(lhs, op, rhs)| Atom { lhs, op, rhs })
                            .collect(),
                    )
                })
                .collect(),
        )
    })
}

fn arb_backend_pin() -> impl Strategy<Value = Option<Backend>> {
    (0u8..4).prop_map(|sel| match sel {
        0 => None,
        1 => Some(Backend::Cpc),
        2 => Some(Backend::Ssi),
        _ => Some(Backend::TwoPl),
    })
}

fn arb_backend() -> impl Strategy<Value = Backend> {
    (0u8..3).prop_map(|sel| match sel {
        0 => Backend::Cpc,
        1 => Backend::Ssi,
        _ => Backend::TwoPl,
    })
}

fn arb_strategy() -> impl Strategy<Value = Option<KsStrategy>> {
    (0u8..4).prop_map(|sel| match sel {
        0 => None,
        1 => Some(KsStrategy::Exhaustive),
        2 => Some(KsStrategy::Backtracking),
        _ => Some(KsStrategy::GreedyLatest),
    })
}

/// Printable-ASCII detail strings (the wire carries UTF-8).
fn arb_detail() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0usize..32)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_batch_ops_sized(min: usize) -> impl Strategy<Value = Vec<(u64, BatchOp)>> {
    prop::collection::vec(
        (any::<u64>(), any::<bool>(), any::<u32>(), any::<i64>()),
        min..6,
    )
    .prop_map(|ops| {
        ops.into_iter()
            .map(|(txn, is_read, entity, value)| {
                let op = if is_read {
                    BatchOp::Read(EntityId(entity))
                } else {
                    BatchOp::Write(EntityId(entity), value)
                };
                (txn, op)
            })
            .collect()
    })
}

fn arb_batch_ops() -> impl Strategy<Value = Vec<(u64, BatchOp)>> {
    arb_batch_ops_sized(0)
}

// The vendored proptest shim has no `prop_oneof!`; variant selection is a
// selector byte dispatched over a tuple of component strategies instead.
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..12,
        (any::<u32>(), any::<u64>(), any::<i64>()),
        (
            arb_cnf(),
            arb_cnf(),
            prop::collection::vec(any::<u64>(), 0usize..4),
            prop::collection::vec(any::<u64>(), 0usize..4),
            arb_strategy(),
            arb_backend_pin(),
        ),
        arb_batch_ops(),
    )
        .prop_map(
            |(sel, (word, txn, value), (input, output, after, before, strategy, backend), ops)| {
                match sel {
                    0 => Request::Hello { magic: word },
                    1 => Request::Open {
                        spec: Specification::new(input, output),
                        after,
                        before,
                        strategy,
                        backend,
                    },
                    2 => Request::Validate { txn },
                    3 => Request::Read {
                        txn,
                        entity: EntityId(word),
                    },
                    4 => Request::Write {
                        txn,
                        entity: EntityId(word),
                        value,
                    },
                    5 => Request::Commit { txn },
                    6 => Request::Abort { txn },
                    7 => Request::Metrics,
                    8 => Request::Batch { ops },
                    9 => Request::Telemetry { since: txn },
                    10 => Request::TraceExport {
                        since: txn,
                        max: word,
                    },
                    _ => Request::Shutdown,
                }
            },
        )
}

fn arb_batch_results() -> impl Strategy<Value = Vec<Result<BatchReply, (u16, String)>>> {
    prop::collection::vec(
        (0u8..3, any::<i64>(), any::<u16>(), arb_detail()),
        0usize..6,
    )
    .prop_map(|results| {
        results
            .into_iter()
            .map(|(sel, value, code, detail)| match sel {
                0 => Ok(BatchReply::Done),
                1 => Ok(BatchReply::Value(value)),
                _ => Err((code, detail)),
            })
            .collect()
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        0u8..8,
        (any::<u32>(), any::<u64>(), any::<i64>(), any::<u16>()),
        prop::collection::vec(any::<u64>(), 8usize),
        arb_detail(),
        arb_batch_results(),
        arb_backend(),
    )
        .prop_map(
            |(sel, (shards, txn, value, code), m, detail, results, backend)| match sel {
                0 => Response::HelloOk { shards, backend },
                1 => Response::Opened { txn },
                2 => Response::Done,
                3 => Response::Value { value },
                4 => Response::Metrics(WireMetrics {
                    requests: m[0],
                    committed: m[1],
                    rejected: m[2],
                    backpressure: m[3],
                    timeouts: m[4],
                    sessions_in_flight: m[5],
                    p50_ns: m[6],
                    p99_ns: m[7],
                }),
                5 => Response::Error { code, detail },
                6 => Response::Batch { results },
                _ => Response::Bye,
            },
        )
}

proptest! {
    #[test]
    fn requests_round_trip(req in arb_request(), corr in any::<u64>(), trace in any::<u64>()) {
        let buf = encode_request(corr, trace, &req);
        prop_assert_eq!(peek_corr(&buf), Some(corr));
        prop_assert_eq!(decode_request(&buf).unwrap(), (corr, trace, req));
    }

    #[test]
    fn responses_round_trip(resp in arb_response(), corr in any::<u64>(), trace in any::<u64>()) {
        let buf = encode_response(corr, trace, &resp);
        prop_assert_eq!(peek_corr(&buf), Some(corr));
        prop_assert_eq!(decode_response(&buf).unwrap(), (corr, trace, resp));
    }

    /// Truncating a `Batch` frame anywhere — mid-op included — fails
    /// closed: the decoder never yields a shorter batch that would
    /// misalign per-op results with their ops.
    #[test]
    fn truncated_batches_fail_closed(
        ops in arb_batch_ops_sized(1),
        cut_seed in any::<usize>(),
    ) {
        let buf = encode_request(5, 0, &Request::Batch { ops });
        let cut = cut_seed % buf.len();
        prop_assert!(decode_request(&buf[..cut]).is_err());
    }

    /// The decoder is total: arbitrary bytes produce `Ok` or `Err`,
    /// never a panic or a huge allocation.
    #[test]
    fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
    }

    /// Truncating a valid frame at any point fails cleanly.
    #[test]
    fn truncations_fail_cleanly(req in arb_request(), cut in 0usize..64) {
        let buf = encode_request(1, 0, &req);
        if cut < buf.len() {
            // Either a clean error, or (only when the truncation removed
            // nothing semantically) a shorter valid message — never a panic.
            let _ = decode_request(&buf[..cut]);
        }
    }

    /// Framing round-trips any payload through a byte pipe.
    #[test]
    fn framing_round_trips(payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        prop_assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), payload);
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }
}

/// Every `ServerError` variant round-trips through its wire `(code,
/// detail)` pair — the error-code table in `docs/wire.md` is exercised
/// row by row.
#[test]
fn every_server_error_round_trips_through_the_wire() {
    let errors = vec![
        ServerError::Rejected("input predicate unsatisfiable".into()),
        ServerError::ReEvalAborted,
        ServerError::Backpressure,
        ServerError::Busy,
        ServerError::CrossShard,
        ServerError::Timeout,
        ServerError::Shutdown,
        ServerError::Wire("desync".into()),
    ];
    for err in errors {
        let resp = Response::error(&err);
        let buf = encode_response(3, 0, &resp);
        let back = match decode_response(&buf).unwrap() {
            (3, 0, Response::Error { code, detail }) => Response::into_server_error(code, &detail),
            other => panic!("expected an error frame, got {other:?}"),
        };
        assert_eq!(back, err, "code {} must round-trip", err.code());
    }
}

/// Unknown error codes fail closed into `Wire`, keeping the detail for
/// diagnostics.
#[test]
fn unknown_error_codes_fail_closed() {
    let resp = Response::Error {
        code: 0xBEEF,
        detail: "from the future".into(),
    };
    let buf = encode_response(0, 0, &resp);
    match decode_response(&buf).unwrap() {
        (0, 0, Response::Error { code, detail }) => {
            let err = Response::into_server_error(code, &detail);
            match err {
                ServerError::Wire(msg) => {
                    assert!(msg.contains("48879"), "{msg}");
                    assert!(msg.contains("from the future"), "{msg}");
                }
                other => panic!("must fail closed as Wire, got {other}"),
            }
        }
        other => panic!("{other:?}"),
    }
}

/// The handshake constants are pinned: changing them is a protocol
/// revision, and this test is the tripwire.
#[test]
fn protocol_constants_are_pinned() {
    assert_eq!(ks_net::PROTOCOL_VERSION, 3);
    assert_eq!(HELLO_MAGIC, 0x4B53_4E50);
    assert_eq!(MAX_FRAME, 1 << 20);
    assert_eq!(MAX_BATCH_OPS, 1024);
    let corr = 0x0123_4567_89AB_CDEFu64;
    let trace = 0xFEDC_BA98_7654_3210u64;
    let hello = encode_request(corr, trace, &Request::Hello { magic: HELLO_MAGIC });
    assert_eq!(hello[0], 3, "version byte leads every payload");
    assert_eq!(
        hello[1..9],
        corr.to_le_bytes(),
        "correlation id sits at payload[1..9], little-endian"
    );
    assert_eq!(
        hello[9..17],
        trace.to_le_bytes(),
        "trace id sits at payload[9..17], little-endian"
    );
    assert_eq!(hello[17], 0x01, "Hello is message type 0x01");
    assert_eq!(peek_corr(&hello), Some(corr));
}

/// An empty batch and a batch at the op-count cap both round-trip; one
/// past the cap is refused at encode-decode (the decoder fails closed
/// before allocating).
#[test]
fn batch_bounds_round_trip() {
    let empty = Request::Batch { ops: vec![] };
    assert_eq!(
        decode_request(&encode_request(1, 0, &empty)).unwrap(),
        (1, 0, empty)
    );
    let full = Request::Batch {
        ops: (0..MAX_BATCH_OPS as u32)
            .map(|i| {
                (
                    u64::from(i % 7),
                    BatchOp::Write(EntityId(i), i64::from(i) << 32),
                )
            })
            .collect(),
    };
    let buf = encode_request(2, 0, &full);
    assert!(buf.len() <= MAX_FRAME, "a full batch fits the frame budget");
    assert_eq!(decode_request(&buf).unwrap(), (2, 0, full));
}
