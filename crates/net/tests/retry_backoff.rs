//! Fault injection against a mock wire server: the remote client's retry
//! envelope must convert transient server errors into bounded, backed-off
//! retries ending in success or a *typed* error — never a hang — and must
//! treat transport timeouts as poison, not something to retry into a
//! desynchronized stream.

use ks_core::Specification;
use ks_kernel::EntityId;
use ks_net::wire::{self, read_frame, write_frame, Request, Response, HELLO_MAGIC};
use ks_net::{NetClientConfig, RemoteSession};
use ks_obs::{ObsKind, Recorder};
use ks_predicate::{Atom, Clause, CmpOp, Cnf};
use ks_server::{Client, ServerError, TxnBuilder};
use std::io::{BufReader, BufWriter};
use std::net::TcpListener;
use std::time::Duration;

fn spec() -> Specification {
    Specification::new(
        Cnf::new(vec![Clause::unit(Atom::cmp_const(
            EntityId(0),
            CmpOp::Ge,
            0,
        ))]),
        Cnf::truth(),
    )
}

fn fast_config(recorder: Option<Recorder>) -> NetClientConfig {
    NetClientConfig {
        connect_timeout: Duration::from_secs(2),
        request_deadline: Duration::from_millis(300),
        max_retries: 3,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(50),
        recorder,
        ..NetClientConfig::default()
    }
}

/// A scripted single-connection server: handshakes properly, then plays
/// `script` — one canned response per incoming frame. `None` means "read
/// the frame but never reply" (deadline injection).
fn mock_server(
    script: Vec<Option<Response>>,
) -> (std::net::SocketAddr, std::thread::JoinHandle<usize>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        // Handshake.
        let hello = read_frame(&mut reader).unwrap().expect("hello frame");
        let hello_corr = match wire::decode_request(&hello) {
            Ok((corr, _trace, Request::Hello { magic })) if magic == HELLO_MAGIC => corr,
            other => panic!("expected Hello, got {other:?}"),
        };
        write_frame(
            &mut writer,
            &wire::encode_response(
                hello_corr,
                0,
                &Response::HelloOk {
                    shards: 1,
                    backend: ks_server::Backend::Cpc,
                },
            ),
        )
        .unwrap();
        // Play the script, echoing each request's correlation id.
        let mut served = 0usize;
        for step in script {
            match read_frame(&mut reader) {
                Ok(Some(payload)) => {
                    served += 1;
                    if let Some(resp) = step {
                        let corr = wire::peek_corr(&payload).expect("request carries a corr");
                        write_frame(&mut writer, &wire::encode_response(corr, 0, &resp)).unwrap();
                    }
                    // None: swallow the request silently.
                }
                _ => break, // client gave up / closed
            }
        }
        served
    });
    (addr, handle)
}

fn busy() -> Response {
    Response::error(&ServerError::Busy)
}

/// Busy twice, then success: the client retries with backoff and the
/// caller sees only the final `Ok`. The retry trail is observable.
#[test]
fn transient_busy_is_retried_to_success() {
    let recorder = Recorder::new(1024);
    let (addr, server) = mock_server(vec![
        Some(busy()),
        Some(busy()),
        Some(Response::Opened { txn: 0 }),
    ]);
    let session =
        RemoteSession::connect(addr, fast_config(Some(recorder.clone()))).expect("connect");
    let txn = session
        .open(TxnBuilder::new(spec()))
        .expect("retries succeed");
    assert_eq!(format!("{txn:?}"), "RemoteTxn(0)");
    drop(session);
    assert_eq!(server.join().unwrap(), 3, "initial send + 2 retries");
    // NetRetry events: attempts 1 and 2, delays within the jittered
    // exponential envelope delay_n ∈ [base·2^(n−1)/2, min(cap, base·2^(n−1))].
    let retries: Vec<(u32, u64)> = recorder
        .drain()
        .into_iter()
        .filter_map(|e| match e.kind {
            ObsKind::NetRetry {
                attempt, delay_ns, ..
            } => Some((attempt, delay_ns)),
            _ => None,
        })
        .collect();
    assert_eq!(
        retries.iter().map(|&(a, _)| a).collect::<Vec<_>>(),
        vec![1, 2]
    );
    let base = Duration::from_millis(2).as_nanos() as u64;
    for &(attempt, delay_ns) in &retries {
        let full = base << (attempt - 1);
        assert!(
            delay_ns >= full / 2 && delay_ns <= full,
            "attempt {attempt}: delay {delay_ns}ns outside [{}, {}]",
            full / 2,
            full
        );
    }
}

/// A server that never stops being Busy: the client gives up after
/// exactly `max_retries` re-sends and surfaces the typed error. This is
/// the "full send queue" acceptance case — bounded retries, then
/// `ServerError::Busy`, never a hang.
#[test]
fn saturated_server_yields_typed_error_after_bounded_retries() {
    let (addr, server) = mock_server(vec![Some(busy()); 8]);
    let session = RemoteSession::connect(addr, fast_config(None)).expect("connect");
    let start = std::time::Instant::now();
    let err = session.open(TxnBuilder::new(spec())).unwrap_err();
    assert!(matches!(err, ServerError::Busy), "typed, not a hang: {err}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "bounded: {:?}",
        start.elapsed()
    );
    drop(session);
    assert_eq!(
        server.join().unwrap(),
        4,
        "initial attempt + max_retries(3), then give up"
    );
}

/// A swallowed request trips the per-request deadline as a typed
/// `Timeout`, poisons the connection (the reply could still arrive and
/// desync the stream), and every later call fails fast.
#[test]
fn deadline_times_out_and_poisons_the_connection() {
    let (addr, _server) = mock_server(vec![None, Some(busy())]);
    let session = RemoteSession::connect(addr, fast_config(None)).expect("connect");
    let start = std::time::Instant::now();
    let err = session.open(TxnBuilder::new(spec())).unwrap_err();
    assert!(matches!(err, ServerError::Timeout), "{err}");
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(250) && elapsed < Duration::from_secs(2),
        "one deadline, no retries into a poisoned stream: {elapsed:?}"
    );
    // Poisoned: fails fast with a wire error, does not touch the socket.
    let start = std::time::Instant::now();
    let err = session.validate(ks_net::RemoteTxn(0)).unwrap_err();
    assert!(matches!(err, ServerError::Wire(_)), "{err}");
    assert!(start.elapsed() < Duration::from_millis(50), "fail fast");
}

/// A *server-signalled* `Timeout` on a non-idempotent request is not
/// retried: the shard worker may still complete the operation after the
/// reply rendezvous expired, so re-sending an Open (or Commit) could
/// apply it twice. The typed `Timeout` surfaces on the first attempt —
/// and since the error arrived as a complete frame on a healthy stream,
/// the connection is not poisoned and the next call proceeds normally.
#[test]
fn server_timeout_is_not_retried_for_non_idempotent_requests() {
    let (addr, server) = mock_server(vec![
        Some(Response::error(&ServerError::Timeout)),
        Some(Response::Opened { txn: 0 }),
    ]);
    let session = RemoteSession::connect(addr, fast_config(None)).expect("connect");
    let err = session.open(TxnBuilder::new(spec())).unwrap_err();
    assert!(matches!(err, ServerError::Timeout), "{err}");
    let txn = session
        .open(TxnBuilder::new(spec()))
        .expect("healthy connection after a server-side timeout");
    assert_eq!(format!("{txn:?}"), "RemoteTxn(0)");
    drop(session);
    assert_eq!(
        server.join().unwrap(),
        2,
        "the timed-out Open is not re-sent"
    );
}

/// Duplicate-safe requests (reads) do retry through a server-signalled
/// `Timeout`: re-executing a read is harmless, so the transient
/// classification applies in full.
#[test]
fn server_timeout_is_retried_for_reads() {
    let (addr, server) = mock_server(vec![
        Some(Response::error(&ServerError::Timeout)),
        Some(Response::Value { value: 5 }),
    ]);
    let session = RemoteSession::connect(addr, fast_config(None)).expect("connect");
    let value = session
        .read(ks_net::RemoteTxn(0), EntityId(0))
        .expect("retried to success");
    assert_eq!(value, 5);
    drop(session);
    assert_eq!(server.join().unwrap(), 2, "initial send + 1 retry");
}

/// A request whose encoding exceeds `MAX_FRAME` is refused client-side,
/// typed, before any bytes hit the socket — the connection stays in sync
/// and later calls proceed.
#[test]
fn oversized_request_is_refused_without_poisoning() {
    let (addr, server) = mock_server(vec![Some(Response::Opened { txn: 0 })]);
    let session = RemoteSession::connect(addr, fast_config(None)).expect("connect");
    // ~19 bytes per unit clause: 60k clauses overflow the 1 MiB cap.
    let big = Cnf::new(
        (0..60_000u32)
            .map(|i| Clause::unit(Atom::cmp_const(EntityId(i), CmpOp::Ge, 0)))
            .collect(),
    );
    let err = session
        .open(TxnBuilder::new(Specification::new(big, Cnf::truth())))
        .unwrap_err();
    match err {
        ServerError::Wire(msg) => assert!(msg.contains("MAX_FRAME"), "{msg}"),
        other => panic!("expected a typed wire error, got {other}"),
    }
    let txn = session
        .open(TxnBuilder::new(spec()))
        .expect("connection not poisoned by the refused request");
    assert_eq!(format!("{txn:?}"), "RemoteTxn(0)");
    drop(session);
    assert_eq!(
        server.join().unwrap(),
        1,
        "the oversized frame never hit the wire"
    );
}

/// Backpressure is retryable exactly like Busy; non-retryable rejections
/// (typed `Rejected` with its detail string) pass through on the first
/// attempt, detail intact.
#[test]
fn rejections_pass_through_with_detail_while_backpressure_retries() {
    let reject = Response::error(&ServerError::Rejected("entity x out of domain".into()));
    let (addr, server) = mock_server(vec![
        Some(Response::error(&ServerError::Backpressure)),
        Some(reject),
    ]);
    let session = RemoteSession::connect(addr, fast_config(None)).expect("connect");
    let err = session.open(TxnBuilder::new(spec())).unwrap_err();
    match err {
        ServerError::Rejected(detail) => assert_eq!(detail, "entity x out of domain"),
        other => panic!("expected the typed rejection, got {other}"),
    }
    drop(session);
    assert_eq!(server.join().unwrap(), 2, "one retry, then the rejection");
}

/// Version negotiation fails closed: a server speaking a different
/// protocol version is refused at connect, with a message naming both
/// versions.
#[test]
fn version_mismatch_is_refused_at_connect() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let _ = read_frame(&mut reader).unwrap();
        // Reply HelloOk with a bumped version byte.
        let mut payload = wire::encode_response(
            0,
            0,
            &Response::HelloOk {
                shards: 1,
                backend: ks_server::Backend::Cpc,
            },
        );
        payload[0] = wire::PROTOCOL_VERSION + 1;
        write_frame(&mut BufWriter::new(stream), &payload).unwrap();
    });
    let err = RemoteSession::connect(addr, fast_config(None)).unwrap_err();
    match err {
        ServerError::Wire(msg) => {
            assert!(msg.contains("version"), "{msg}");
        }
        other => panic!("expected a wire error, got {other}"),
    }
    server.join().unwrap();
}

/// The connect timeout is honored: dialing a non-routable address
/// returns (rather than hangs) within the configured bound.
#[test]
fn connect_timeout_is_bounded() {
    use std::net::{IpAddr, Ipv4Addr, SocketAddr};
    // RFC 5737 TEST-NET-1: guaranteed unroutable.
    let addr = SocketAddr::new(IpAddr::V4(Ipv4Addr::new(192, 0, 2, 1)), 9);
    let config = NetClientConfig {
        connect_timeout: Duration::from_millis(200),
        ..fast_config(None)
    };
    let start = std::time::Instant::now();
    let err = RemoteSession::connect(addr, config).unwrap_err();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "dial must be bounded: {:?}",
        start.elapsed()
    );
    // Timeout or immediate unreachability — both are typed.
    assert!(
        matches!(err, ServerError::Timeout | ServerError::Wire(_)),
        "{err}"
    );
}
