//! End-to-end distributed tracing over a real loopback socket: a
//! 4-shard WAL-backed server and a sampling client share one flight
//! recorder, and the wire's `TraceExport` endpoint must hand back span
//! events that stitch into a single-rooted tree covering every pipeline
//! hop — client send, connection handler, shard queue, execute,
//! certifier decision, WAL group commit — with per-hop latency
//! attribution that adds up to the measured request latency. The same
//! connection's `Telemetry` endpoint must expose enough windowed state
//! to detect an SLO breach from deltas alone.

use ks_core::Specification;
use ks_kernel::{Domain, EntityId, Schema, UniqueState};
use ks_net::{NetClientConfig, NetConfig, NetServer, RemoteSession};
use ks_obs::{stitch_traces, ObsEvent, ObsKind, OpCode, Recorder, SloSpec, SpanHop, TraceTree};
use ks_predicate::{Atom, Clause, CmpOp, Cnf};
use ks_server::{Client, Durability, ServerConfig, TxnBuilder, TxnService, WalOptions};
use ks_wal::{MemStore, SegmentStore};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;
const ENTITIES: usize = 16;

fn one_entity_spec(e: EntityId) -> Specification {
    Specification::new(
        Cnf::new(vec![Clause::unit(Atom::cmp_const(
            e,
            CmpOp::Ge,
            i64::MIN / 2,
        ))]),
        Cnf::truth(),
    )
}

/// A 4-shard WAL-durable server whose service, net layer, and (later)
/// client all share `recorder` — one clock, so cross-hop interval
/// arithmetic is meaningful and the server's trace export carries the
/// client-side `Request` hop too.
fn start_traced_server(recorder: &Recorder) -> NetServer {
    let schema = Schema::uniform(
        (0..ENTITIES).map(|i| format!("d{i}")),
        Domain::Range {
            min: i64::MIN / 2,
            max: i64::MAX / 2,
        },
    );
    let media = MemStore::default();
    let mut opts = WalOptions::new(Arc::new(move || {
        Box::new(media.clone()) as Box<dyn SegmentStore>
    }));
    opts.group_commit = true;
    opts.group_window = Duration::from_micros(200);
    opts.sync_on_commit = true;
    let config = ServerConfig::builder()
        .shards(SHARDS)
        .durability(Durability::Wal(opts))
        .recorder(recorder.clone())
        .build()
        .expect("server config");
    let svc = TxnService::new(schema, &UniqueState::constant(ENTITIES, 0), config);
    NetServer::start(
        svc,
        "127.0.0.1:0",
        NetConfig {
            recorder: Some(recorder.clone()),
            ..NetConfig::default()
        },
    )
    .expect("bind loopback")
}

fn traced_client(addr: std::net::SocketAddr, recorder: &Recorder) -> RemoteSession {
    RemoteSession::connect(
        addr,
        NetClientConfig {
            recorder: Some(recorder.clone()),
            trace_sample: 1.0,
            ..NetClientConfig::default()
        },
    )
    .expect("connect")
}

/// Commit one single-entity transaction; panics on any error.
fn commit_one(session: &RemoteSession, entity: EntityId, value: i64) {
    let txn = session
        .open(TxnBuilder::new(one_entity_spec(entity)))
        .expect("open");
    session.validate(txn).expect("validate");
    session.write(txn, entity, value).expect("write");
    session.commit(txn).expect("commit");
}

/// Page the server's trace export to exhaustion from `cursor`, asserting
/// the cursor advances monotonically and no event is served twice.
fn drain_export(session: &RemoteSession, mut cursor: u64, page: u32) -> (u64, Vec<ObsEvent>) {
    let mut all = Vec::new();
    let mut seen = std::collections::HashSet::new();
    // Telemetry pulls are untraced (the observability plane must not
    // observe itself), so paging reaches a genuinely empty page instead
    // of chasing its own spans forever. The bound is a tripwire for that
    // property regressing.
    for _ in 0..10_000 {
        let (next, events) = session.trace_export(cursor, page).expect("trace export");
        assert!(next >= cursor, "cursor must never move backwards");
        assert!(events.len() <= page as usize, "page size is a hard cap");
        if events.is_empty() {
            assert_eq!(next, cursor, "an empty page must not advance the cursor");
            return (cursor, all);
        }
        for ev in &events {
            let key = match ev.kind {
                ObsKind::SpanStart { hop, trace, .. } => (trace, hop.code(), true),
                ObsKind::SpanEnd { hop, trace, .. } => (trace, hop.code(), false),
                other => panic!("trace export must only carry span events, got {other:?}"),
            };
            assert!(seen.insert(key), "event served twice across pages: {ev:?}");
        }
        all.extend(events);
        cursor = next;
    }
    panic!("trace export never drained: the endpoint is feeding itself");
}

/// The well-formed commit trees in `events`: single `Request` root with
/// `op == Commit`, every span closed.
fn commit_trees(events: &[ObsEvent]) -> Vec<TraceTree> {
    stitch_traces(events)
        .into_iter()
        .filter(|t| {
            t.is_well_formed()
                && t.root()
                    .is_some_and(|r| r.hop == SpanHop::Request && r.op == Some(OpCode::Commit))
        })
        .collect()
}

/// The tentpole acceptance path: a commit's exported trace covers every
/// hop from client send to WAL fsync to client receive, and the per-hop
/// self times sum to the measured request latency.
#[test]
fn exported_commit_trace_covers_every_hop_and_latency_adds_up() {
    let recorder = Recorder::new(1 << 16);
    let server = start_traced_server(&recorder);
    let session = traced_client(server.local_addr(), &recorder);

    // Warm every shard so the measured commit below hits a running
    // pipeline, not cold worker threads.
    for i in 0..2 * SHARDS {
        commit_one(&session, EntityId((i % ENTITIES) as u32), i as i64);
    }

    // Advance the export cursor past the warmup so the measured commit's
    // events are isolated in the next drain. Small pages exercise paging.
    let (cursor, warmup) = drain_export(&session, 0, 16);
    assert!(
        !warmup.is_empty(),
        "warmup commits at sampling 1.0 must export span events"
    );

    // Time the commit request alone: the exported tree roots at the
    // commit exchange, so that is the latency the hop breakdown must
    // account for.
    let txn = session
        .open(TxnBuilder::new(one_entity_spec(EntityId(3))))
        .expect("open");
    session.validate(txn).expect("validate");
    session.write(txn, EntityId(3), 42).expect("write");
    let wall = Instant::now();
    session.commit(txn).expect("commit");
    let wall_ns = wall.elapsed().as_nanos() as u64;

    // Give the WAL flusher thread a beat to emit its span ends, then
    // drain everything new since the warmup cursor.
    std::thread::sleep(Duration::from_millis(50));
    let (_, fresh) = drain_export(&session, cursor, 4096);

    let trees = commit_trees(&fresh);
    assert_eq!(
        trees.len(),
        1,
        "exactly one commit ran since the cursor; got {} trees from {} events",
        trees.len(),
        fresh.len()
    );
    let tree = &trees[0];

    // Every pipeline hop is present: client send → conn handler → shard
    // queue → execute → certifier decision → WAL fsync.
    let hops = tree.hops();
    for hop in [
        SpanHop::Request,
        SpanHop::ConnHandle,
        SpanHop::Queue,
        SpanHop::Exec,
        SpanHop::Certify,
        SpanHop::WalEnqueue,
        SpanHop::WalBarrier,
        SpanHop::WalFsync,
    ] {
        assert!(hops.contains(&hop), "missing {hop:?} in {}", tree.render());
    }
    let certify = tree
        .spans
        .iter()
        .find(|s| s.hop == SpanHop::Certify)
        .unwrap();
    assert_eq!(certify.ok, Some(true), "the certifier admitted the commit");

    // Per-hop latency attribution: self times sum exactly to the root
    // (the client-measured send→receive interval), and that interval
    // agrees with the wall clock around the call to within 5% plus a
    // fixed scheduling-jitter allowance.
    let self_sum: u64 = tree.hop_latencies().iter().map(|h| h.self_ns).sum();
    let total = tree.total_ns();
    assert_eq!(
        self_sum,
        total,
        "self times must sum to the root duration\n{}",
        tree.render()
    );
    assert!(total > 0, "a real round trip takes time");
    assert!(
        total <= wall_ns,
        "the span ({total} ns) sits inside the wall-clock interval ({wall_ns} ns)"
    );
    let slack = wall_ns / 20 + 250_000;
    assert!(
        wall_ns - total <= slack,
        "span {total} ns vs wall {wall_ns} ns: more than 5% (+250µs jitter) unaccounted"
    );

    session.close().expect("goodbye");
    server.shutdown();
}

/// The `Telemetry` endpoint alone — no shared memory, no recorder access
/// — is enough to reconstruct the series and detect an SLO breach, and
/// pulling the same cursor twice is idempotent.
#[test]
fn slo_breach_is_detectable_from_wire_deltas_alone() {
    let recorder = Recorder::new(1 << 16);
    let server = start_traced_server(&recorder);
    let session = traced_client(server.local_addr(), &recorder);

    for i in 0..8 {
        commit_one(&session, EntityId(i % ENTITIES as u32), i as i64);
    }

    // The series closes a window only once time moves past it; the
    // width is fixed at 1 s, so outlast one window boundary.
    std::thread::sleep(Duration::from_millis(1100));

    let delta = session.telemetry(0).expect("telemetry");
    assert_eq!(delta.width_ns, 1_000_000_000, "1 s windows");
    assert!(
        !delta.windows.is_empty(),
        "the traffic window must have closed and shipped"
    );
    let served: u64 = delta.windows.iter().map(|w| w.requests).sum();
    let committed: u64 = delta.windows.iter().map(|w| w.committed).sum();
    assert!(served >= 8 * 4, "every request lands in a window");
    assert!(committed >= 8, "every commit lands in a window");
    assert!(
        delta.next_seq > delta.windows.last().unwrap().seq,
        "the cursor points past the newest shipped window"
    );

    // Idempotent pulls: the same cursor yields the same closed windows.
    let again = session.telemetry(0).expect("telemetry");
    assert_eq!(again.windows[0], delta.windows[0]);

    // Declarative SLO checks run on the wire-shipped windows. Loopback
    // commits take well over a nanosecond, so a 1 ns p99 must breach;
    // a one-minute budget must not.
    let strict = SloSpec::parse("p99<=1ns@1s").unwrap();
    let breaches = strict.check(&delta.windows);
    assert!(
        !breaches.is_empty(),
        "a 1 ns p99 budget must breach: {:?}",
        delta.windows
    );
    assert!(breaches[0].value_ns > 1);
    let lax = SloSpec::parse("p99<=60s@1s").unwrap();
    assert!(
        lax.check(&delta.windows).is_empty(),
        "a 60 s p99 budget must hold on loopback"
    );

    // A cursor past the shipped windows returns nothing old.
    let tail = session.telemetry(delta.next_seq).expect("telemetry");
    assert!(tail.windows.iter().all(|w| w.seq >= delta.next_seq));

    session.close().expect("goodbye");
    server.shutdown();
}
