//! Round-trip property tests for the wire encoding of CNF
//! specifications, focused on the shapes the general request fuzz
//! (`wire_fuzz.rs`) never generates: zero-atom clauses, the empty CNF
//! vs. explicit truth, entity-to-entity atoms, extreme constants, and
//! wide/deep formulas near the frame budget.

use ks_core::Specification;
use ks_kernel::EntityId;
use ks_net::wire::{decode_request, encode_request, Request, MAX_FRAME};
use ks_predicate::{Atom, Clause, CmpOp, Cnf, Operand};
use proptest::prelude::*;

/// Wrap a spec in an `Open` and push it through the wire.
fn round_trip(spec: Specification) -> Specification {
    let req = Request::Open {
        spec,
        after: vec![],
        before: vec![],
        strategy: None,
        backend: None,
    };
    let buf = encode_request(7, 0, &req);
    match decode_request(&buf).expect("valid encoding must decode") {
        (7, 0, Request::Open { spec, .. }) => spec,
        other => panic!("decoded to {other:?}"),
    }
}

fn atom(lhs: Operand, op: CmpOp, rhs: Operand) -> Atom {
    Atom { lhs, op, rhs }
}

/// The degenerate formulas: an empty CNF (vacuously true), a CNF holding
/// an empty clause (unsatisfiable), and a clause mixing both operand
/// kinds — all must survive structurally, not just semantically.
#[test]
fn degenerate_shapes_round_trip() {
    let shapes = vec![
        Cnf::new(vec![]),
        Cnf::truth(),
        Cnf::new(vec![Clause::new(vec![])]),
        Cnf::new(vec![
            Clause::new(vec![]),
            Clause::new(vec![atom(
                Operand::Entity(EntityId(0)),
                CmpOp::Eq,
                Operand::Entity(EntityId(u32::MAX)),
            )]),
            Clause::new(vec![atom(
                Operand::Const(i64::MIN),
                CmpOp::Le,
                Operand::Const(i64::MAX),
            )]),
        ]),
    ];
    for cnf in shapes {
        let spec = Specification::new(cnf.clone(), cnf.clone());
        let back = round_trip(spec);
        assert_eq!(back.input, cnf);
        assert_eq!(back.output, cnf);
    }
}

/// A formula wide and deep enough to dwarf every fuzz case but still
/// within the frame budget encodes, stays under [`MAX_FRAME`], and
/// round-trips exactly.
#[test]
fn large_formulas_round_trip_within_the_frame_budget() {
    let clause = Clause::new(
        (0..64)
            .map(|i| {
                atom(
                    Operand::Entity(EntityId(i)),
                    CmpOp::Ge,
                    Operand::Const(i64::from(i)),
                )
            })
            .collect(),
    );
    let cnf = Cnf::new(vec![clause; 128]);
    let spec = Specification::new(cnf.clone(), Cnf::truth());
    let encoded = encode_request(
        0,
        0,
        &Request::Open {
            spec: spec.clone(),
            after: vec![],
            before: vec![],
            strategy: None,
            backend: None,
        },
    );
    assert!(
        encoded.len() <= MAX_FRAME,
        "{} bytes exceeds the frame budget",
        encoded.len()
    );
    assert_eq!(round_trip(spec).input, cnf);
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    (any::<bool>(), any::<u32>(), any::<i64>()).prop_map(|(is_entity, e, c)| {
        if is_entity {
            Operand::Entity(EntityId(e))
        } else {
            Operand::Const(c)
        }
    })
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    (0u8..6).prop_map(|sel| match sel {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    })
}

/// Unlike the fuzz generator, clauses here may be *empty* (0 atoms) —
/// the encoding must not conflate an empty clause with a missing one.
fn arb_cnf_with_empties() -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((arb_operand(), arb_cmp(), arb_operand()), 0..5),
        0..6,
    )
    .prop_map(|clauses| {
        Cnf::new(
            clauses
                .into_iter()
                .map(|atoms| {
                    Clause::new(
                        atoms
                            .into_iter()
                            .map(|(lhs, op, rhs)| Atom { lhs, op, rhs })
                            .collect(),
                    )
                })
                .collect(),
        )
    })
}

proptest! {
    /// Any (input, output) CNF pair — empty clauses included — survives
    /// the wire byte-for-byte structurally.
    #[test]
    fn specifications_round_trip(
        input in arb_cnf_with_empties(),
        output in arb_cnf_with_empties(),
    ) {
        let spec = Specification::new(input.clone(), output.clone());
        let back = round_trip(spec);
        prop_assert_eq!(back.input, input);
        prop_assert_eq!(back.output, output);
    }

    /// Encoding is injective on structure: two encodes of the same spec
    /// are identical bytes (no nondeterminism in the encoder).
    #[test]
    fn encoding_is_deterministic(cnf in arb_cnf_with_empties()) {
        let req = Request::Open {
            spec: Specification::new(cnf.clone(), cnf),
            after: vec![],
            before: vec![],
            strategy: None,
            backend: None,
        };
        prop_assert_eq!(encode_request(9, 3, &req), encode_request(9, 3, &req));
    }
}
