//! The ks-net wire protocol: length-prefixed, versioned binary frames.
//!
//! Framing is `u32` little-endian payload length followed by the payload;
//! every payload starts with the protocol version byte, a `u64`
//! correlation id, a `u64` trace id, and a message-type byte. Integers
//! are little-endian; strings are `u32` length + UTF-8. The full format,
//! the correlation and pipelining rules, the version-negotiation story
//! and the error-code table live in `docs/wire.md` — this module is the
//! normative encoder and decoder, and the round-trip tests in
//! `tests/wire_fuzz.rs` pin it.
//!
//! The correlation id is what makes pipelining sound: a client may keep
//! several requests in flight on one connection, and the server echoes
//! each request's id on its reply, so responses can complete out of
//! order without ambiguity. The server never *reorders* replies today,
//! but the id — not arrival order — is the contract.
//!
//! The trace id is the distributed-tracing context (see
//! `docs/observability.md`): `0` means *unsampled* — no span may be
//! emitted for the request — and any other value identifies the
//! end-to-end trace the request belongs to. The server echoes the
//! request's trace id on its reply and stamps it on every server-side
//! span, so a stitched tree spans both processes. The id rides in the
//! fixed header between the correlation id and the type byte; peers
//! built before the extension fail closed at decode (their type byte is
//! consumed as trace bytes, leaving a truncated or unknown-type body).
//!
//! Specifications travel **structurally** (CNF → clauses → atoms with
//! global entity ids), not as parser text, so the wire needs no schema
//! and malformed predicates are impossible by construction. Errors travel
//! as `(code, detail)` pairs that reconstruct the exact
//! [`ServerError`] via [`ServerError::from_code`] — the typed codes are
//! the client-visible correctness contract at the interface.

use ks_core::Specification;
use ks_kernel::{EntityId, Value};
use ks_obs::{ObsEvent, TelemetryDelta, WindowSnapshot, LATENCY_BUCKETS};
use ks_predicate::{Atom, Clause, CmpOp, Cnf, Operand, Strategy};
use ks_server::{Backend, BatchOp, BatchReply, ServerError};
use std::io::{Read, Write};

/// Protocol version this build speaks. The Hello exchange rejects peers
/// whose version differs (see `docs/wire.md` § version negotiation).
/// Version 2 added the per-payload correlation id and `Batch` frames;
/// version 3 added the certifier-backend byte to `Open` (a client pin,
/// `0` = unpinned), `HelloOk` (the backend the server runs), and the
/// `Telemetry` response (so pollers label series per backend).
pub const PROTOCOL_VERSION: u8 = 3;

/// Magic carried in Hello so a stray non-ks-net peer is rejected before
/// any state is allocated.
pub const HELLO_MAGIC: u32 = 0x4B534E50; // "KSNP"

/// Hard cap on one frame's payload. Large enough for any realistic
/// specification, small enough that a corrupt length prefix cannot make
/// a peer allocate unboundedly.
pub const MAX_FRAME: usize = 1 << 20;

/// Hard cap on ops in one `Batch` frame, enforced at decode on both
/// request and response. The request-side ops are small (a `Write` is 21
/// bytes) but their *responses* are not bounded by the request size
/// (`Error` carries a detail string), so without this cap a maximal
/// request batch could force the server to build a response frame it is
/// not allowed to send.
pub const MAX_BATCH_OPS: usize = 1024;

/// Hard cap on events in one `TraceExport` response, enforced at decode.
/// 40 bytes per packed event keeps the largest legal export well under
/// [`MAX_FRAME`]; a poller wanting more pages with its cursor.
pub const MAX_TRACE_EVENTS: usize = 4096;

/// A malformed or oversized frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::Wire(e.0)
    }
}

/// One client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; must be the first frame on a connection.
    Hello {
        /// [`HELLO_MAGIC`].
        magic: u32,
    },
    /// Open a transaction: specification, sibling ordering (connection-
    /// scoped transaction ids), optional strategy override.
    Open {
        /// The `(I_t, O_t)` specification, in global entity ids.
        spec: Specification,
        /// Transactions this one is ordered after.
        after: Vec<u64>,
        /// Transactions this one is ordered before.
        before: Vec<u64>,
        /// Per-transaction solver override (`None` = service default).
        strategy: Option<Strategy>,
        /// Certifier-backend pin (`None` = accept whatever the server
        /// runs). A pinned backend the server does not run fails closed
        /// with [`ServerError::BackendMismatch`]; an unknown backend
        /// byte fails the frame at decode.
        backend: Option<Backend>,
    },
    /// Validate: acquire `R_v` locks and a version assignment.
    Validate {
        /// Connection-scoped transaction id.
        txn: u64,
    },
    /// Read an entity through the assigned version.
    Read {
        /// Connection-scoped transaction id.
        txn: u64,
        /// Global entity id.
        entity: EntityId,
    },
    /// Write a new version.
    Write {
        /// Connection-scoped transaction id.
        txn: u64,
        /// Global entity id.
        entity: EntityId,
        /// The value.
        value: Value,
    },
    /// Commit.
    Commit {
        /// Connection-scoped transaction id.
        txn: u64,
    },
    /// Abort (idempotent acknowledgement).
    Abort {
        /// Connection-scoped transaction id.
        txn: u64,
    },
    /// Snapshot the service metrics.
    Metrics,
    /// A burst of read/write ops answered by one [`Response::Batch`] of
    /// equal length, in order. Only data-plane ops batch — lifecycle
    /// frames (`Open`/`Validate`/`Commit`/`Abort`) stay top-level so
    /// their connection-state side effects remain one-frame-one-decision.
    Batch {
        /// One transaction id per op (ops in one batch may target
        /// different transactions; the server splits maximal same-txn
        /// runs into shard sub-batches).
        ops: Vec<(u64, BatchOp)>,
    },
    /// Pull incremental time-series telemetry: every closed window with
    /// sequence number `>= since` (see
    /// [`TelemetrySeries::delta`](ks_obs::TelemetrySeries::delta)).
    Telemetry {
        /// The cursor from the previous [`Response::Telemetry`]'s
        /// `next_seq` (0 on the first pull).
        since: u64,
    },
    /// Pull exported trace span events from the server's trace buffer.
    TraceExport {
        /// The cursor from the previous [`Response::TraceExport`]'s
        /// `next` (0 on the first pull).
        since: u64,
        /// Upper bound on events in the reply (the server additionally
        /// caps at [`MAX_TRACE_EVENTS`]).
        max: u32,
    },
    /// Graceful connection shutdown; the server replies [`Response::Bye`]
    /// and closes.
    Shutdown,
}

/// A wire-portable subset of the server's metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireMetrics {
    /// Requests that received a reply.
    pub requests: u64,
    /// Commits through the service.
    pub committed: u64,
    /// Protocol rejections.
    pub rejected: u64,
    /// Requests shed on full queues.
    pub backpressure: u64,
    /// Reply timeouts.
    pub timeouts: u64,
    /// Currently open sessions.
    pub sessions_in_flight: u64,
    /// Median round-trip latency in ns (0 = no observations).
    pub p50_ns: u64,
    /// 99th-percentile round-trip latency in ns (0 = no observations).
    pub p99_ns: u64,
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Hello accepted.
    HelloOk {
        /// Number of entity shards the service runs (clients co-locate
        /// a transaction's entities by shard, as in-process callers do).
        shards: u32,
        /// The certifier backend every shard of this service runs —
        /// advertised up front so clients can pin (or refuse) before
        /// opening anything. Unknown bytes fail the frame at decode.
        backend: Backend,
    },
    /// Transaction opened.
    Opened {
        /// Connection-scoped transaction id.
        txn: u64,
    },
    /// Unit success (validate/write/commit/abort).
    Done,
    /// Read result.
    Value {
        /// The value read.
        value: Value,
    },
    /// Metrics snapshot.
    Metrics(WireMetrics),
    /// The call failed; `(code, detail)` round-trips into [`ServerError`].
    Error {
        /// Stable error code ([`ServerError::code`]).
        code: u16,
        /// Detail payload ([`ServerError::detail`]).
        detail: String,
    },
    /// Per-op results for a [`Request::Batch`], same length, same order.
    /// An op that failed carries its typed error inline; the batch frame
    /// itself never fails partially — it decodes whole or not at all.
    Batch {
        /// One result per request op.
        results: Vec<Result<BatchReply, (u16, String)>>,
    },
    /// Incremental telemetry windows for a [`Request::Telemetry`].
    Telemetry {
        /// The certifier backend the windows measure (matches the
        /// `HelloOk` advertisement; lets pollers label series).
        backend: Backend,
        /// The incremental windows.
        delta: TelemetryDelta,
    },
    /// Exported trace span events for a [`Request::TraceExport`].
    TraceExport {
        /// The cursor to pass as `since` next time.
        next: u64,
        /// The exported events (each a span start/end), oldest first.
        events: Vec<ObsEvent>,
    },
    /// Acknowledges [`Request::Shutdown`]; the connection closes next.
    Bye,
}

impl Response {
    /// Build the error response for a [`ServerError`].
    pub fn error(e: &ServerError) -> Response {
        Response::Error {
            code: e.code(),
            detail: e.detail().to_string(),
        }
    }

    /// Decode an error response back into the exact [`ServerError`];
    /// unknown codes fail closed as [`ServerError::Wire`].
    pub fn into_server_error(code: u16, detail: &str) -> ServerError {
        ServerError::from_code(code, detail)
            .unwrap_or_else(|| ServerError::Wire(format!("unknown error code {code}: {detail}")))
    }
}

// ---------------------------------------------------------------- encoding

/// Byte sink borrowing the caller's buffer, so hot paths reuse one
/// scratch allocation across frames instead of a fresh `Vec` each.
struct Enc<'a>(&'a mut Vec<u8>);

impl Enc<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn txns(&mut self, ids: &[u64]) {
        self.u32(ids.len() as u32);
        for &t in ids {
            self.u64(t);
        }
    }
    fn operand(&mut self, o: Operand) {
        match o {
            Operand::Entity(e) => {
                self.u8(0);
                self.u32(e.0);
            }
            Operand::Const(c) => {
                self.u8(1);
                self.i64(c);
            }
        }
    }
    fn cnf(&mut self, cnf: &Cnf) {
        let clauses = cnf.clauses();
        self.u32(clauses.len() as u32);
        for clause in clauses {
            let atoms = clause.atoms();
            self.u32(atoms.len() as u32);
            for a in atoms {
                self.operand(a.lhs);
                self.u8(cmp_code(a.op));
                self.operand(a.rhs);
            }
        }
    }

    /// One telemetry window: the sequence number, six counters, and the
    /// latency histogram encoded sparsely — `[n:u8](idx:u8, count:u64)*`
    /// over the non-empty buckets (most of the 64 log₂ buckets are empty
    /// in any real window).
    fn window(&mut self, w: &WindowSnapshot) {
        self.u64(w.seq);
        self.u64(w.requests);
        self.u64(w.committed);
        self.u64(w.aborted);
        self.u64(w.queue_depth);
        self.u64(w.flush_groups);
        self.u64(w.flush_commits);
        let filled = w.latency.iter().filter(|&&n| n != 0).count();
        self.u8(filled as u8);
        for (i, &n) in w.latency.iter().enumerate() {
            if n != 0 {
                self.u8(i as u8);
                self.u64(n);
            }
        }
    }
}

fn cmp_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from(code: u8) -> Option<CmpOp> {
    Some(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return None,
    })
}

fn strategy_code(s: Option<Strategy>) -> u8 {
    match s {
        None => 0,
        Some(Strategy::Exhaustive) => 1,
        Some(Strategy::Backtracking) => 2,
        Some(Strategy::GreedyLatest) => 3,
    }
}

fn strategy_from(code: u8) -> Option<Option<Strategy>> {
    Some(match code {
        0 => None,
        1 => Some(Strategy::Exhaustive),
        2 => Some(Strategy::Backtracking),
        3 => Some(Strategy::GreedyLatest),
        _ => return None,
    })
}

/// The Open frame's backend-pin byte: `0` = unpinned, otherwise the
/// backend's stable wire code ([`Backend::code`]).
fn backend_pin_code(b: Option<Backend>) -> u8 {
    b.map_or(0, Backend::code)
}

/// Decode a backend-pin byte; `None` means the byte is unknown (fail the
/// frame closed — a client pinning a backend this build cannot name must
/// not silently run unpinned).
fn backend_pin_from(code: u8) -> Option<Option<Backend>> {
    if code == 0 {
        return Some(None);
    }
    Backend::from_code(code).map(Some)
}

/// Encode a request payload into `buf` (cleared first): version byte +
/// correlation id + trace id (0 = unsampled) + type byte + body.
pub fn encode_request_into(buf: &mut Vec<u8>, corr: u64, trace: u64, req: &Request) {
    buf.clear();
    let mut e = Enc(buf);
    e.u8(PROTOCOL_VERSION);
    e.u64(corr);
    e.u64(trace);
    match req {
        Request::Hello { magic } => {
            e.u8(0x01);
            e.u32(*magic);
        }
        Request::Open {
            spec,
            after,
            before,
            strategy,
            backend,
        } => {
            e.u8(0x02);
            e.cnf(&spec.input);
            e.cnf(&spec.output);
            e.txns(after);
            e.txns(before);
            e.u8(strategy_code(*strategy));
            e.u8(backend_pin_code(*backend));
        }
        Request::Validate { txn } => {
            e.u8(0x03);
            e.u64(*txn);
        }
        Request::Read { txn, entity } => {
            e.u8(0x04);
            e.u64(*txn);
            e.u32(entity.0);
        }
        Request::Write { txn, entity, value } => {
            e.u8(0x05);
            e.u64(*txn);
            e.u32(entity.0);
            e.i64(*value);
        }
        Request::Commit { txn } => {
            e.u8(0x06);
            e.u64(*txn);
        }
        Request::Abort { txn } => {
            e.u8(0x07);
            e.u64(*txn);
        }
        Request::Metrics => e.u8(0x08),
        Request::Batch { ops } => {
            e.u8(0x0A);
            e.u32(ops.len() as u32);
            for (txn, op) in ops {
                match op {
                    BatchOp::Read(entity) => {
                        e.u8(0x04);
                        e.u64(*txn);
                        e.u32(entity.0);
                    }
                    BatchOp::Write(entity, value) => {
                        e.u8(0x05);
                        e.u64(*txn);
                        e.u32(entity.0);
                        e.i64(*value);
                    }
                }
            }
        }
        Request::Telemetry { since } => {
            e.u8(0x0B);
            e.u64(*since);
        }
        Request::TraceExport { since, max } => {
            e.u8(0x0C);
            e.u64(*since);
            e.u32(*max);
        }
        Request::Shutdown => e.u8(0x09),
    }
}

/// Encode a request payload into a fresh buffer (tests and cold paths;
/// hot paths use [`encode_request_into`] with a reused scratch buffer).
pub fn encode_request(corr: u64, trace: u64, req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(48);
    encode_request_into(&mut buf, corr, trace, req);
    buf
}

/// Encode a response payload into `buf` (cleared first).
pub fn encode_response_into(buf: &mut Vec<u8>, corr: u64, trace: u64, resp: &Response) {
    buf.clear();
    append_response(buf, corr, trace, resp);
}

/// Append a response payload to `buf` *without* clearing it — the
/// building block [`encode_response_frame`] uses to put `[len][payload]`
/// in one reused buffer with zero intermediate allocation.
fn append_response(buf: &mut Vec<u8>, corr: u64, trace: u64, resp: &Response) {
    let mut e = Enc(buf);
    e.u8(PROTOCOL_VERSION);
    e.u64(corr);
    e.u64(trace);
    match resp {
        Response::HelloOk { shards, backend } => {
            e.u8(0x81);
            e.u32(*shards);
            e.u8(backend.code());
        }
        Response::Opened { txn } => {
            e.u8(0x82);
            e.u64(*txn);
        }
        Response::Done => e.u8(0x83),
        Response::Value { value } => {
            e.u8(0x84);
            e.i64(*value);
        }
        Response::Metrics(m) => {
            e.u8(0x85);
            e.u64(m.requests);
            e.u64(m.committed);
            e.u64(m.rejected);
            e.u64(m.backpressure);
            e.u64(m.timeouts);
            e.u64(m.sessions_in_flight);
            e.u64(m.p50_ns);
            e.u64(m.p99_ns);
        }
        Response::Error { code, detail } => {
            e.u8(0x86);
            e.u16(*code);
            e.str(detail);
        }
        Response::Batch { results } => {
            e.u8(0x88);
            e.u32(results.len() as u32);
            for r in results {
                match r {
                    Ok(BatchReply::Value(v)) => {
                        e.u8(0x84);
                        e.i64(*v);
                    }
                    Ok(BatchReply::Done) => e.u8(0x83),
                    Err((code, detail)) => {
                        e.u8(0x86);
                        e.u16(*code);
                        e.str(detail);
                    }
                }
            }
        }
        Response::Telemetry { backend, delta } => {
            e.u8(0x89);
            e.u8(backend.code());
            e.u64(delta.width_ns);
            e.u64(delta.next_seq);
            e.u32(delta.windows.len() as u32);
            for w in &delta.windows {
                e.window(w);
            }
        }
        Response::TraceExport { next, events } => {
            e.u8(0x8A);
            e.u64(*next);
            e.u32(events.len() as u32);
            for ev in events {
                for word in ev.pack() {
                    e.u64(word);
                }
            }
        }
        Response::Bye => e.u8(0x87),
    }
}

/// Encode a response payload into a fresh buffer.
pub fn encode_response(corr: u64, trace: u64, resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    encode_response_into(&mut buf, corr, trace, resp);
    buf
}

/// Encode a complete *frame* — `[len: u32 LE][payload]` — into `scratch`
/// (cleared first), ready for one `write_all`. This is the server's hot
/// path: one reused buffer, one syscall, no intermediate payload `Vec`.
///
/// Mirrors [`write_frame`]'s send-time cap: an over-[`MAX_FRAME`] payload
/// is refused with `InvalidData` and `scratch` is cleared, so no bytes
/// can hit the stream.
pub fn encode_response_frame(
    scratch: &mut Vec<u8>,
    corr: u64,
    trace: u64,
    resp: &Response,
) -> std::io::Result<()> {
    scratch.clear();
    scratch.extend_from_slice(&[0u8; 4]); // length placeholder
    append_response(scratch, corr, trace, resp);
    let len = scratch.len() - 4;
    if len > MAX_FRAME {
        scratch.clear();
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    scratch[..4].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

// ---------------------------------------------------------------- decoding

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn err<T>(&self, what: &str) -> Result<T, WireError> {
        Err(WireError(format!("truncated or malformed {what}")))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return self.err(what);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }
    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    fn i64(&mut self, what: &str) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Bounded count prefix: a corrupt length cannot force a huge
    /// allocation because every element costs at least one byte of
    /// remaining payload.
    fn count(&mut self, what: &str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n > self.buf.len() - self.pos {
            return self.err(what);
        }
        Ok(n)
    }

    /// A batch op count: budget-bounded like [`Dec::count`] and capped at
    /// [`MAX_BATCH_OPS`] so a decoded batch can never obligate a response
    /// frame larger than the sender is allowed to emit.
    fn batch_count(&mut self, what: &str) -> Result<usize, WireError> {
        let n = self.count(what)?;
        if n > MAX_BATCH_OPS {
            return Err(WireError(format!(
                "{what}: {n} ops exceeds MAX_BATCH_OPS ({MAX_BATCH_OPS})"
            )));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String, WireError> {
        let n = self.count(what)?;
        let bytes = self.take(n, what)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| WireError(format!("{what}: invalid UTF-8")))
    }

    fn txns(&mut self, what: &str) -> Result<Vec<u64>, WireError> {
        let n = self.count(what)?;
        (0..n).map(|_| self.u64(what)).collect()
    }

    fn operand(&mut self, what: &str) -> Result<Operand, WireError> {
        match self.u8(what)? {
            0 => Ok(Operand::Entity(EntityId(self.u32(what)?))),
            1 => Ok(Operand::Const(self.i64(what)?)),
            t => Err(WireError(format!("{what}: unknown operand tag {t}"))),
        }
    }

    fn cnf(&mut self, what: &str) -> Result<Cnf, WireError> {
        let nclauses = self.count(what)?;
        let mut clauses = Vec::with_capacity(nclauses);
        for _ in 0..nclauses {
            let natoms = self.count(what)?;
            let mut atoms = Vec::with_capacity(natoms);
            for _ in 0..natoms {
                let lhs = self.operand(what)?;
                let op = cmp_from(self.u8(what)?)
                    .ok_or_else(|| WireError(format!("{what}: unknown comparison op")))?;
                let rhs = self.operand(what)?;
                atoms.push(Atom { lhs, op, rhs });
            }
            clauses.push(Clause::new(atoms));
        }
        Ok(Cnf::new(clauses))
    }

    /// One telemetry window (see [`Enc::window`]). The sparse histogram
    /// is bounded by construction: the entry count is a `u8` and every
    /// index must name one of the [`LATENCY_BUCKETS`] buckets.
    fn window(&mut self, what: &str) -> Result<WindowSnapshot, WireError> {
        let mut w = WindowSnapshot::empty(self.u64(what)?);
        w.requests = self.u64(what)?;
        w.committed = self.u64(what)?;
        w.aborted = self.u64(what)?;
        w.queue_depth = self.u64(what)?;
        w.flush_groups = self.u64(what)?;
        w.flush_commits = self.u64(what)?;
        let filled = self.u8(what)? as usize;
        for _ in 0..filled {
            let idx = self.u8(what)? as usize;
            if idx >= LATENCY_BUCKETS {
                return Err(WireError(format!(
                    "{what}: latency bucket {idx} out of range"
                )));
            }
            let n = self.u64(what)?;
            w.latency[idx] = w.latency[idx].wrapping_add(n);
        }
        Ok(w)
    }

    fn finish<T>(self, value: T, what: &str) -> Result<T, WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError(format!(
                "{what}: {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(value)
    }
}

fn check_version(d: &mut Dec, what: &str) -> Result<(), WireError> {
    let v = d.u8(what)?;
    if v != PROTOCOL_VERSION {
        return Err(WireError(format!(
            "{what}: protocol version {v} (this build speaks {PROTOCOL_VERSION})"
        )));
    }
    Ok(())
}

/// Extract the correlation id from an already-encoded payload without a
/// full decode (the simulation harness forges server-timeout replies for
/// frames it swallowed and must echo the request's id). `None` if the
/// payload is too short or carries a different version.
pub fn peek_corr(payload: &[u8]) -> Option<u64> {
    if payload.len() < 9 || payload[0] != PROTOCOL_VERSION {
        return None;
    }
    Some(u64::from_le_bytes(payload[1..9].try_into().unwrap()))
}

/// Decode a request payload into its correlation id, trace id (0 =
/// unsampled), and request.
pub fn decode_request(buf: &[u8]) -> Result<(u64, u64, Request), WireError> {
    let mut d = Dec::new(buf);
    check_version(&mut d, "request")?;
    let corr = d.u64("request corr")?;
    let trace = d.u64("request trace")?;
    let ty = d.u8("request type")?;
    let req = match ty {
        0x01 => Request::Hello {
            magic: d.u32("hello")?,
        },
        0x02 => {
            let input = d.cnf("open.input")?;
            let output = d.cnf("open.output")?;
            let after = d.txns("open.after")?;
            let before = d.txns("open.before")?;
            let strategy = strategy_from(d.u8("open.strategy")?)
                .ok_or_else(|| WireError("open: unknown strategy code".into()))?;
            let backend_byte = d.u8("open.backend")?;
            let backend = backend_pin_from(backend_byte)
                .ok_or_else(|| WireError(format!("open: unknown backend byte {backend_byte}")))?;
            Request::Open {
                spec: Specification::new(input, output),
                after,
                before,
                strategy,
                backend,
            }
        }
        0x03 => Request::Validate {
            txn: d.u64("validate")?,
        },
        0x04 => Request::Read {
            txn: d.u64("read")?,
            entity: EntityId(d.u32("read")?),
        },
        0x05 => Request::Write {
            txn: d.u64("write")?,
            entity: EntityId(d.u32("write")?),
            value: d.i64("write")?,
        },
        0x06 => Request::Commit {
            txn: d.u64("commit")?,
        },
        0x07 => Request::Abort {
            txn: d.u64("abort")?,
        },
        0x08 => Request::Metrics,
        0x09 => Request::Shutdown,
        0x0B => Request::Telemetry {
            since: d.u64("telemetry")?,
        },
        0x0C => Request::TraceExport {
            since: d.u64("trace_export")?,
            max: d.u32("trace_export")?,
        },
        0x0A => {
            let n = d.batch_count("batch")?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                // Only data-plane ops may batch; any other tag fails the
                // whole frame closed — a partially-understood batch must
                // never execute its understood prefix.
                let op = match d.u8("batch op")? {
                    0x04 => {
                        let txn = d.u64("batch read")?;
                        (txn, BatchOp::Read(EntityId(d.u32("batch read")?)))
                    }
                    0x05 => {
                        let txn = d.u64("batch write")?;
                        let entity = EntityId(d.u32("batch write")?);
                        (txn, BatchOp::Write(entity, d.i64("batch write")?))
                    }
                    t => {
                        return Err(WireError(format!(
                            "batch: op type 0x{t:02x} not batchable (only Read/Write)"
                        )))
                    }
                };
                ops.push(op);
            }
            Request::Batch { ops }
        }
        t => return Err(WireError(format!("unknown request type 0x{t:02x}"))),
    };
    d.finish((corr, trace, req), "request")
}

/// Decode a response payload into its correlation id, echoed trace id,
/// and response.
pub fn decode_response(buf: &[u8]) -> Result<(u64, u64, Response), WireError> {
    let mut d = Dec::new(buf);
    check_version(&mut d, "response")?;
    let corr = d.u64("response corr")?;
    let trace = d.u64("response trace")?;
    let ty = d.u8("response type")?;
    let resp = match ty {
        0x81 => {
            let shards = d.u32("hello_ok")?;
            let byte = d.u8("hello_ok.backend")?;
            let backend = Backend::from_code(byte)
                .ok_or_else(|| WireError(format!("hello_ok: unknown backend byte {byte}")))?;
            Response::HelloOk { shards, backend }
        }
        0x82 => Response::Opened {
            txn: d.u64("opened")?,
        },
        0x83 => Response::Done,
        0x84 => Response::Value {
            value: d.i64("value")?,
        },
        0x85 => Response::Metrics(WireMetrics {
            requests: d.u64("metrics")?,
            committed: d.u64("metrics")?,
            rejected: d.u64("metrics")?,
            backpressure: d.u64("metrics")?,
            timeouts: d.u64("metrics")?,
            sessions_in_flight: d.u64("metrics")?,
            p50_ns: d.u64("metrics")?,
            p99_ns: d.u64("metrics")?,
        }),
        0x86 => {
            let code = d.u16("error")?;
            let detail = d.str("error")?;
            Response::Error { code, detail }
        }
        0x87 => Response::Bye,
        0x88 => {
            let n = d.batch_count("batch response")?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                let r = match d.u8("batch result")? {
                    0x83 => Ok(BatchReply::Done),
                    0x84 => Ok(BatchReply::Value(d.i64("batch value")?)),
                    0x86 => {
                        let code = d.u16("batch error")?;
                        let detail = d.str("batch error")?;
                        Err((code, detail))
                    }
                    t => {
                        return Err(WireError(format!(
                            "batch response: unknown result type 0x{t:02x}"
                        )))
                    }
                };
                results.push(r);
            }
            Response::Batch { results }
        }
        0x89 => {
            let byte = d.u8("telemetry.backend")?;
            let backend = Backend::from_code(byte)
                .ok_or_else(|| WireError(format!("telemetry: unknown backend byte {byte}")))?;
            let width_ns = d.u64("telemetry")?;
            let next_seq = d.u64("telemetry")?;
            let n = d.count("telemetry windows")?;
            let mut windows = Vec::with_capacity(n);
            for _ in 0..n {
                windows.push(d.window("telemetry window")?);
            }
            Response::Telemetry {
                backend,
                delta: TelemetryDelta {
                    width_ns,
                    next_seq,
                    windows,
                },
            }
        }
        0x8A => {
            let next = d.u64("trace_export")?;
            let n = d.count("trace_export events")?;
            if n > MAX_TRACE_EVENTS {
                return Err(WireError(format!(
                    "trace_export: {n} events exceeds MAX_TRACE_EVENTS ({MAX_TRACE_EVENTS})"
                )));
            }
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let mut words = [0u64; 5];
                for w in &mut words {
                    *w = d.u64("trace_export event")?;
                }
                // Unknown tags fail the frame closed: a peer must never
                // silently drop events it cannot represent.
                events.push(ObsEvent::unpack(words).ok_or_else(|| {
                    WireError(format!(
                        "trace_export: unknown event tag {}",
                        (words[2] >> 32) as u32
                    ))
                })?);
            }
            Response::TraceExport { next, events }
        }
        t => return Err(WireError(format!("unknown response type 0x{t:02x}"))),
    };
    d.finish((corr, trace, resp), "response")
}

// ---------------------------------------------------------------- framing

/// Write one frame: `u32` LE payload length, then the payload.
///
/// Payloads over [`MAX_FRAME`] are refused with `InvalidData` *before*
/// any bytes hit the stream: the peer would reject the frame at read
/// time and drop the connection, so enforcing the cap at the sender
/// turns an oversized message into a typed per-request failure instead
/// of a poisoned connection.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds MAX_FRAME ({MAX_FRAME})",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame's payload; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Outcome of one [`FrameReader::poll_frame`] attempt.
#[derive(Debug)]
pub enum FrameProgress {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The read timed out (`WouldBlock`/`TimedOut`). Partial progress is
    /// retained — call [`FrameReader::poll_frame`] again to continue the
    /// same frame from where it left off.
    Pending,
}

/// The resumable decode state of one in-progress frame: position inside
/// the 4-byte length prefix and the partially filled payload.
///
/// This is the state machine under both frame readers in the system.
/// [`FrameReader`] drives it against blocking sockets with read
/// timeouts (the timeout surfaces as [`FrameProgress::Pending`]); the
/// readiness-polled event loop in [`crate::server`] drives it directly
/// against nonblocking sockets, where `WouldBlock` means "wait for the
/// next readiness tick" and the payload buffer is borrowed from a
/// shared pool via [`FrameState::poll_with`]. Either way the state
/// survives arbitrarily many quiet ticks without losing a byte — a
/// frame that straddles ticks resumes exactly where it left off.
#[derive(Debug, Default)]
pub struct FrameState {
    /// Length-prefix bytes accumulated so far (valid up to `len_read`).
    len_buf: [u8; 4],
    len_read: usize,
    /// Allocated once the prefix is complete; filled up to `payload_read`.
    payload: Option<Vec<u8>>,
    payload_read: usize,
}

impl FrameState {
    /// A fresh state at a frame boundary.
    pub fn new() -> Self {
        FrameState::default()
    }

    /// A partial frame is in progress (prefix or payload bytes held).
    pub fn mid_frame(&self) -> bool {
        self.len_read > 0 || self.payload.is_some()
    }

    /// Abandon any partial frame, handing back the payload buffer (for
    /// return to a pool) if one was mid-fill.
    pub fn reset(&mut self) -> Option<Vec<u8>> {
        self.len_read = 0;
        self.payload_read = 0;
        self.payload.take()
    }

    /// Advance against `r` with plain per-frame allocation.
    pub fn poll(&mut self, r: &mut impl Read) -> std::io::Result<FrameProgress> {
        self.poll_with(r, &mut |len| vec![0u8; len])
    }

    /// Read until a full frame, EOF, or a quiet tick
    /// (`WouldBlock`/`TimedOut`). EOF inside a frame is an
    /// `UnexpectedEof` error; EOF at a frame boundary is
    /// [`FrameProgress::Eof`]. `alloc` supplies the payload buffer once
    /// the length prefix completes — it receives the frame length and
    /// must return a buffer of exactly that length (a pool resizes a
    /// recycled allocation; contents need not be zeroed, every byte is
    /// overwritten before the frame is yielded).
    pub fn poll_with(
        &mut self,
        r: &mut impl Read,
        alloc: &mut dyn FnMut(usize) -> Vec<u8>,
    ) -> std::io::Result<FrameProgress> {
        use std::io::ErrorKind;
        // Phase 1: the 4-byte length prefix.
        while self.payload.is_none() {
            match r.read(&mut self.len_buf[self.len_read..]) {
                Ok(0) => {
                    if self.len_read == 0 {
                        return Ok(FrameProgress::Eof);
                    }
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "EOF inside a frame length prefix",
                    ));
                }
                Ok(n) => {
                    self.len_read += n;
                    if self.len_read == 4 {
                        let len = u32::from_le_bytes(self.len_buf) as usize;
                        if len > MAX_FRAME {
                            return Err(std::io::Error::new(
                                ErrorKind::InvalidData,
                                format!("frame of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"),
                            ));
                        }
                        let buf = alloc(len);
                        debug_assert_eq!(buf.len(), len, "alloc must return exactly len bytes");
                        self.payload = Some(buf);
                        self.payload_read = 0;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(FrameProgress::Pending);
                }
                Err(e) => return Err(e),
            }
        }
        // Phase 2: the payload.
        loop {
            let buf = self.payload.as_mut().unwrap();
            if self.payload_read == buf.len() {
                let frame = self.payload.take().unwrap();
                self.len_read = 0;
                return Ok(FrameProgress::Frame(frame));
            }
            match r.read(&mut buf[self.payload_read..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "EOF inside a frame payload",
                    ));
                }
                Ok(n) => self.payload_read += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(FrameProgress::Pending);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// An incremental frame reader for sockets with a read timeout.
///
/// [`read_frame`] uses `read_exact`, which consumes partially-read bytes
/// before surfacing a timeout — re-calling it from scratch after a
/// timeout desynchronizes the stream on any frame that straddles the
/// timeout window (mid-payload bytes get reinterpreted as a frame
/// header). `FrameReader` instead retains its position inside the length
/// prefix and the payload across [`FrameProgress::Pending`] polls via
/// [`FrameState`], so a frame may take arbitrarily many timeout ticks to
/// arrive without losing a byte. The deterministic simulation harness
/// drives this against its in-memory link; the production server drives
/// the bare [`FrameState`] from its readiness event loop.
pub struct FrameReader<R> {
    inner: R,
    state: FrameState,
}

impl<R: Read> FrameReader<R> {
    /// Wrap `inner`, which should have a read timeout set if `Pending`
    /// polling is wanted.
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            state: FrameState::new(),
        }
    }

    /// Read until a full frame, EOF, or a timeout tick. EOF inside a
    /// frame is an `UnexpectedEof` error; EOF at a frame boundary is
    /// [`FrameProgress::Eof`].
    pub fn poll_frame(&mut self) -> std::io::Result<FrameProgress> {
        self.state.poll(&mut self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_predicate::Cnf;

    #[test]
    fn hello_and_unit_frames_round_trip() {
        for req in [
            Request::Hello { magic: HELLO_MAGIC },
            Request::Validate { txn: 7 },
            Request::Metrics,
            Request::Shutdown,
        ] {
            let buf = encode_request(99, 7, &req);
            assert_eq!(decode_request(&buf).unwrap(), (99, 7, req));
        }
    }

    #[test]
    fn open_round_trips_structural_spec() {
        let spec = Specification::new(
            Cnf::new(vec![
                Clause::unit(Atom::cmp_const(EntityId(4), CmpOp::Ge, -3)),
                Clause::unit(Atom::cmp_entities(EntityId(0), CmpOp::Lt, EntityId(8))),
            ]),
            Cnf::truth(),
        );
        let req = Request::Open {
            spec,
            after: vec![1, 2],
            before: vec![9],
            strategy: Some(Strategy::GreedyLatest),
            backend: Some(Backend::Ssi),
        };
        let buf = encode_request(u64::MAX, 0, &req);
        assert_eq!(decode_request(&buf).unwrap(), (u64::MAX, 0, req));
    }

    #[test]
    fn open_backend_pin_round_trips_every_backend_and_unpinned() {
        for backend in [
            None,
            Some(Backend::Cpc),
            Some(Backend::Ssi),
            Some(Backend::TwoPl),
        ] {
            let req = Request::Open {
                spec: Specification::new(Cnf::truth(), Cnf::truth()),
                after: vec![],
                before: vec![],
                strategy: None,
                backend,
            };
            let buf = encode_request(1, 0, &req);
            assert_eq!(decode_request(&buf).unwrap(), (1, 0, req));
        }
    }

    /// Satellite: an unknown backend byte in Open fails the frame closed —
    /// the server must never run a transaction whose pin it cannot name.
    #[test]
    fn open_with_unknown_backend_byte_fails_closed() {
        let req = Request::Open {
            spec: Specification::new(Cnf::truth(), Cnf::truth()),
            after: vec![],
            before: vec![],
            strategy: None,
            backend: None,
        };
        let mut buf = encode_request(1, 0, &req);
        // The backend byte is the last byte of the Open body.
        *buf.last_mut().unwrap() = 0x77;
        let err = decode_request(&buf).unwrap_err();
        assert!(err.0.contains("unknown backend byte 119"), "{err}");
    }

    #[test]
    fn hello_ok_advertises_the_backend_and_rejects_unknown_bytes() {
        for backend in Backend::all() {
            let resp = Response::HelloOk { shards: 4, backend };
            let buf = encode_response(0, 0, &resp);
            assert_eq!(decode_response(&buf).unwrap(), (0, 0, resp));
        }
        let resp = Response::HelloOk {
            shards: 4,
            backend: Backend::Cpc,
        };
        let mut buf = encode_response(0, 0, &resp);
        *buf.last_mut().unwrap() = 0; // 0 is not a valid server backend
        let err = decode_response(&buf).unwrap_err();
        assert!(err.0.contains("unknown backend byte 0"), "{err}");
    }

    #[test]
    fn batch_round_trips_and_carries_per_op_txns() {
        let req = Request::Batch {
            ops: vec![
                (3, BatchOp::Read(EntityId(7))),
                (3, BatchOp::Write(EntityId(8), -40)),
                (5, BatchOp::Read(EntityId(0))),
            ],
        };
        let buf = encode_request(17, 0, &req);
        assert_eq!(decode_request(&buf).unwrap(), (17, 0, req));

        let resp = Response::Batch {
            results: vec![
                Ok(BatchReply::Value(12)),
                Ok(BatchReply::Done),
                Err((4, String::new())),
            ],
        };
        let buf = encode_response(17, 0, &resp);
        assert_eq!(decode_response(&buf).unwrap(), (17, 0, resp));
    }

    #[test]
    fn empty_batch_round_trips() {
        let req = Request::Batch { ops: vec![] };
        let buf = encode_request(0, 0, &req);
        assert_eq!(decode_request(&buf).unwrap(), (0, 0, req));
        let resp = Response::Batch { results: vec![] };
        let buf = encode_response(0, 0, &resp);
        assert_eq!(decode_response(&buf).unwrap(), (0, 0, resp));
    }

    #[test]
    fn batch_with_non_batchable_op_fails_closed() {
        // Hand-build a batch whose second op is Commit (0x06): the whole
        // frame must fail, not execute the Read prefix.
        let mut buf = Vec::new();
        let mut e = Enc(&mut buf);
        e.u8(PROTOCOL_VERSION);
        e.u64(1);
        e.u64(0); // trace
        e.u8(0x0A);
        e.u32(2);
        e.u8(0x04); // Read
        e.u64(0);
        e.u32(3);
        e.u8(0x06); // Commit — not batchable
        e.u64(0);
        let err = decode_request(&buf).unwrap_err();
        assert!(err.0.contains("not batchable"), "{err}");
    }

    #[test]
    fn oversized_batch_count_is_rejected() {
        // A count past MAX_BATCH_OPS fails even with budget to spare.
        let mut buf = Vec::new();
        let mut e = Enc(&mut buf);
        e.u8(PROTOCOL_VERSION);
        e.u64(1);
        e.u64(0); // trace
        e.u8(0x0A);
        e.u32(MAX_BATCH_OPS as u32 + 1);
        for _ in 0..(MAX_BATCH_OPS + 1) {
            e.u8(0x04);
            e.u64(0);
            e.u32(0);
        }
        let err = decode_request(&buf).unwrap_err();
        assert!(err.0.contains("MAX_BATCH_OPS"), "{err}");
    }

    #[test]
    fn truncated_batch_mid_op_fails_closed() {
        let req = Request::Batch {
            ops: vec![
                (1, BatchOp::Write(EntityId(2), 9)),
                (1, BatchOp::Write(EntityId(3), 10)),
            ],
        };
        let buf = encode_request(5, 0, &req);
        // Sever at every byte boundary: no prefix may decode.
        for cut in 0..buf.len() {
            assert!(
                decode_request(&buf[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn telemetry_round_trips_sparse_windows() {
        let mut w = WindowSnapshot::empty(41);
        w.requests = 120;
        w.committed = 30;
        w.aborted = 2;
        w.queue_depth = 7;
        w.flush_groups = 5;
        w.flush_commits = 28;
        w.latency[0] = 3;
        w.latency[17] = 100;
        w.latency[LATENCY_BUCKETS - 1] = 17;
        let req = Request::Telemetry { since: 41 };
        let buf = encode_request(3, 0, &req);
        assert_eq!(decode_request(&buf).unwrap(), (3, 0, req));
        let resp = Response::Telemetry {
            backend: Backend::Ssi,
            delta: TelemetryDelta {
                width_ns: 1_000_000_000,
                next_seq: 42,
                windows: vec![WindowSnapshot::empty(40), w],
            },
        };
        let buf = encode_response(3, 0, &resp);
        assert_eq!(decode_response(&buf).unwrap(), (3, 0, resp));
    }

    #[test]
    fn telemetry_window_with_out_of_range_bucket_fails_closed() {
        let mut w = WindowSnapshot::empty(1);
        w.latency[0] = 9;
        let resp = Response::Telemetry {
            backend: Backend::Cpc,
            delta: TelemetryDelta {
                width_ns: 1,
                next_seq: 2,
                windows: vec![w],
            },
        };
        let mut buf = encode_response(0, 0, &resp);
        // The single sparse entry's index byte sits right after the 7
        // u64 window fields; corrupt it past LATENCY_BUCKETS.
        let idx_pos = buf.len() - 9;
        assert_eq!(buf[idx_pos], 0);
        buf[idx_pos] = LATENCY_BUCKETS as u8;
        let err = decode_response(&buf).unwrap_err();
        assert!(err.0.contains("out of range"), "{err}");
    }

    #[test]
    fn trace_export_round_trips_span_events() {
        use ks_obs::{ObsKind, SpanHop};
        let events = vec![
            ObsEvent {
                ts: 10,
                shard: u32::MAX,
                txn: ks_obs::NO_TXN,
                kind: ObsKind::SpanStart {
                    hop: SpanHop::ConnHandle,
                    op: ks_obs::OpCode::Commit,
                    trace: 0xABCD,
                },
            },
            ObsEvent {
                ts: 90,
                shard: 2,
                txn: 5,
                kind: ObsKind::SpanEnd {
                    hop: SpanHop::Certify,
                    ok: true,
                    trace: 0xABCD,
                },
            },
        ];
        let req = Request::TraceExport { since: 7, max: 64 };
        let buf = encode_request(9, 0, &req);
        assert_eq!(decode_request(&buf).unwrap(), (9, 0, req));
        let resp = Response::TraceExport { next: 9, events };
        let buf = encode_response(9, 0, &resp);
        assert_eq!(decode_response(&buf).unwrap(), (9, 0, resp));
    }

    #[test]
    fn trace_export_with_unknown_event_tag_fails_closed() {
        let mut buf = Vec::new();
        let mut e = Enc(&mut buf);
        e.u8(PROTOCOL_VERSION);
        e.u64(1);
        e.u64(0); // trace
        e.u8(0x8A);
        e.u64(0); // next
        e.u32(1); // one event
        e.u64(5); // ts
        e.u64(0); // shard/txn
        e.u64(0xFFFF_u64 << 32); // unknown kind tag
        e.u64(0);
        e.u64(0);
        let err = decode_response(&buf).unwrap_err();
        assert!(err.0.contains("unknown event tag"), "{err}");
    }

    /// Satellite: a well-formed frame from a peer built before the
    /// trace-context extension (header `[version][corr][type]`, no trace
    /// id) must fail closed, never decode as something else. The type
    /// byte lands inside the trace field and the stream runs out — or
    /// hits an unknown type — before a body can parse.
    #[test]
    fn pre_trace_layout_frames_fail_closed() {
        // Old-layout requests: version + corr + type (+ body).
        let old_frames: Vec<Vec<u8>> = vec![
            // Metrics: [2][corr][0x08]
            {
                let mut b = vec![PROTOCOL_VERSION];
                b.extend_from_slice(&7u64.to_le_bytes());
                b.push(0x08);
                b
            },
            // Validate{txn:3}: [2][corr][0x03][txn]
            {
                let mut b = vec![PROTOCOL_VERSION];
                b.extend_from_slice(&7u64.to_le_bytes());
                b.push(0x03);
                b.extend_from_slice(&3u64.to_le_bytes());
                b
            },
            // Hello: [2][corr][0x01][magic]
            {
                let mut b = vec![PROTOCOL_VERSION];
                b.extend_from_slice(&0u64.to_le_bytes());
                b.push(0x01);
                b.extend_from_slice(&HELLO_MAGIC.to_le_bytes());
                b
            },
        ];
        for frame in &old_frames {
            assert!(
                decode_request(frame).is_err(),
                "pre-trace frame {frame:02x?} decoded"
            );
        }
        // Old-layout responses fail the same way.
        let mut done = vec![PROTOCOL_VERSION];
        done.extend_from_slice(&7u64.to_le_bytes());
        done.push(0x83);
        assert!(decode_response(&done).is_err());
        let mut hello_ok = vec![PROTOCOL_VERSION];
        hello_ok.extend_from_slice(&0u64.to_le_bytes());
        hello_ok.push(0x81);
        hello_ok.extend_from_slice(&4u32.to_le_bytes());
        assert!(decode_response(&hello_ok).is_err());
    }

    #[test]
    fn trace_id_rides_both_directions() {
        let buf = encode_request(5, 0x1234_5678_9ABC_DEF0, &Request::Commit { txn: 1 });
        let (corr, trace, _) = decode_request(&buf).unwrap();
        assert_eq!((corr, trace), (5, 0x1234_5678_9ABC_DEF0));
        let buf = encode_response(5, 0x1234_5678_9ABC_DEF0, &Response::Done);
        let (corr, trace, _) = decode_response(&buf).unwrap();
        assert_eq!((corr, trace), (5, 0x1234_5678_9ABC_DEF0));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut buf = encode_request(0, 0, &Request::Metrics);
        buf[0] = 1;
        let err = decode_request(&buf).unwrap_err();
        assert!(err.0.contains("version 1"), "{err}");
    }

    #[test]
    fn peek_corr_reads_the_header() {
        let buf = encode_request(0xDEAD_BEEF, 0xFACE, &Request::Commit { txn: 3 });
        assert_eq!(peek_corr(&buf), Some(0xDEAD_BEEF));
        assert_eq!(peek_corr(&buf[..8]), None);
        let mut wrong = buf.clone();
        wrong[0] = 1;
        assert_eq!(peek_corr(&wrong), None);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = encode_request(1, 0, &Request::Validate { txn: 1 });
        buf.push(0);
        assert!(decode_request(&buf).is_err());
    }

    #[test]
    fn corrupt_count_cannot_force_allocation() {
        // An `after` count of u32::MAX with no payload behind it must be
        // rejected by the budget check, not attempted.
        let mut buf = Vec::new();
        let mut e = Enc(&mut buf);
        e.u8(PROTOCOL_VERSION);
        e.u64(0);
        e.u64(0); // trace
        e.u8(0x02);
        e.cnf(&Cnf::truth());
        e.cnf(&Cnf::truth());
        e.u32(u32::MAX); // after count
        assert!(decode_request(&buf).is_err());
    }

    #[test]
    fn scratch_encoders_match_fresh_encoders() {
        let req = Request::Read {
            txn: 3,
            entity: EntityId(5),
        };
        let mut scratch = vec![0xFF; 64]; // dirty scratch must be cleared
        encode_request_into(&mut scratch, 7, 11, &req);
        assert_eq!(scratch, encode_request(7, 11, &req));

        let resp = Response::Error {
            code: 4,
            detail: "busy".into(),
        };
        encode_response_into(&mut scratch, 9, 11, &resp);
        assert_eq!(scratch, encode_response(9, 11, &resp));
    }

    #[test]
    fn response_frame_is_len_prefixed_payload() {
        let resp = Response::Opened { txn: 12 };
        let mut scratch = Vec::new();
        encode_response_frame(&mut scratch, 4, 6, &resp).unwrap();
        let mut expect = Vec::new();
        write_frame(&mut expect, &encode_response(4, 6, &resp)).unwrap();
        assert_eq!(scratch, expect);
        // And it round-trips through the frame reader.
        let mut cursor = std::io::Cursor::new(scratch);
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(decode_response(&payload).unwrap(), (4, 6, resp));
    }

    #[test]
    fn oversized_response_frame_is_refused_clean() {
        let resp = Response::Error {
            code: 8,
            detail: "x".repeat(MAX_FRAME + 1),
        };
        let mut scratch = Vec::new();
        let err = encode_response_frame(&mut scratch, 0, 0, &resp).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(scratch.is_empty(), "no bytes may survive a refused frame");
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let payload = encode_response(
            2,
            0,
            &Response::Error {
                code: 4,
                detail: String::new(),
            },
        );
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(got, payload);
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_payload_is_refused_at_send_time() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(buf.is_empty(), "no bytes may hit the stream");
    }

    /// A reader that hands out the scripted chunks one `read` at a time,
    /// injecting a timeout error between every chunk — the worst case of
    /// frames straddling poll ticks at arbitrary byte offsets.
    struct Trickle {
        chunks: Vec<Vec<u8>>,
        next: usize,
        timeout_next: bool,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.timeout_next && self.next < self.chunks.len() {
                self.timeout_next = false;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "trickle timeout",
                ));
            }
            self.timeout_next = true;
            let Some(chunk) = self.chunks.get_mut(self.next) else {
                return Ok(0); // EOF
            };
            let n = buf.len().min(chunk.len());
            buf[..n].copy_from_slice(&chunk[..n]);
            chunk.drain(..n);
            if chunk.is_empty() {
                self.next += 1;
            }
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_retains_progress_across_timeouts() {
        // Two frames, byte-trickled with a timeout before every chunk:
        // splits land inside length prefixes and inside payloads.
        let mut stream = Vec::new();
        let first = encode_request(1, 0, &Request::Validate { txn: 42 });
        let second = encode_request(2, 0, &Request::Metrics);
        write_frame(&mut stream, &first).unwrap();
        write_frame(&mut stream, &second).unwrap();
        let mut reader = FrameReader::new(Trickle {
            chunks: stream.chunks(3).map(|c| c.to_vec()).collect(),
            next: 0,
            timeout_next: true,
        });
        let mut frames = Vec::new();
        let mut pendings = 0usize;
        loop {
            match reader.poll_frame().expect("no transport error") {
                FrameProgress::Frame(f) => frames.push(f),
                FrameProgress::Pending => pendings += 1,
                FrameProgress::Eof => break,
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(
            decode_request(&frames[0]).unwrap(),
            (1, 0, Request::Validate { txn: 42 })
        );
        assert_eq!(
            decode_request(&frames[1]).unwrap(),
            (2, 0, Request::Metrics)
        );
        assert!(pendings > 4, "timeouts interleaved every chunk: {pendings}");
    }

    #[test]
    fn frame_reader_eof_mid_frame_is_an_error() {
        let payload = encode_request(1, 0, &Request::Validate { txn: 1 });
        let mut stream = Vec::new();
        write_frame(&mut stream, &payload).unwrap();
        stream.truncate(stream.len() - 2); // sever inside the payload
        let mut reader = FrameReader::new(std::io::Cursor::new(stream));
        loop {
            match reader.poll_frame() {
                Ok(FrameProgress::Pending) => continue,
                Ok(FrameProgress::Frame(_)) => panic!("truncated frame decoded"),
                Ok(FrameProgress::Eof) => panic!("mid-frame EOF reported as clean"),
                Err(e) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof);
                    break;
                }
            }
        }
    }

    #[test]
    fn frame_reader_rejects_oversized_length_prefix() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut reader = FrameReader::new(std::io::Cursor::new(stream));
        let err = reader.poll_frame().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
