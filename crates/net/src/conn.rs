//! The transport-agnostic per-connection core.
//!
//! [`ConnCore`] is everything a ks-net connection does *between* frames:
//! it owns the in-process [`Session`], maps wire-visible connection-scoped
//! transaction ids to [`TxnHandle`]s, executes decoded [`Request`]s, and
//! aborts whatever is still open when the connection goes away. The TCP
//! server ([`crate::NetServer`]) and the deterministic simulation harness
//! (`ks-dst`) both drive this exact type, so a bug the simulator finds in
//! request handling is by construction a bug in the production path.
//!
//! The id table is a `BTreeMap`, not a `HashMap`, deliberately: the
//! abort-on-disconnect sweep iterates it, and `HashMap`'s per-instance
//! random iteration order would make the abort order — and therefore the
//! protocol's cascade decisions and the obs event stream — differ between
//! two otherwise identical runs. Determinism here is what lets `ks-dst`
//! replay a failure from its seed alone.

use crate::wire::{Request, Response, WireMetrics, HELLO_MAGIC, PROTOCOL_VERSION};
use ks_obs::{ObsEvent, ObsKind, ObsSink, OpCode, SpanHop, TelemetryDelta, NO_TXN};
use ks_server::{
    Backend, BatchOp, BatchReply, Client, MetricsSnapshot, ServerError, Session, TxnBuilder,
    TxnHandle,
};
use std::collections::BTreeMap;

/// What the connection core can ask of the process hosting it: the
/// embedded service's observability surfaces. The TCP server implements
/// this over its `TxnService`; the deterministic simulator implements
/// what it supports and leans on the fail-closed defaults for the rest.
/// Every method returns `None` once the service is shutting down (or
/// when the host simply does not offer the surface), which the core
/// turns into a typed [`ServerError::Shutdown`] reply.
pub trait ConnHost {
    /// Service-wide metrics snapshot for [`Request::Metrics`].
    fn metrics(&self) -> Option<MetricsSnapshot>;

    /// The certifier backend the embedded service runs — stamped on
    /// [`Response::Telemetry`] frames. Hosts that serve telemetry (a
    /// non-`None` [`ConnHost::telemetry`]) must override this; the
    /// default only exists for metrics-only closure hosts, whose
    /// telemetry pulls fail before the backend is consulted.
    fn backend(&self) -> Backend {
        Backend::Cpc
    }

    /// Incremental telemetry for [`Request::Telemetry`] (see
    /// [`ks_server::TxnService::telemetry`]).
    fn telemetry(&self, since: u64) -> Option<TelemetryDelta> {
        let _ = since;
        None
    }

    /// Exported trace span events for [`Request::TraceExport`]: the next
    /// cursor and the events at `since..`, at most `max`.
    fn trace_export(&self, since: u64, max: u32) -> Option<(u64, Vec<ObsEvent>)> {
        let _ = (since, max);
        None
    }
}

/// Blanket host for callers that only serve metrics (a bare closure was
/// the old `handle` signature; this keeps those call sites trivial).
impl<F: Fn() -> Option<MetricsSnapshot>> ConnHost for F {
    fn metrics(&self) -> Option<MetricsSnapshot> {
        self()
    }
}

/// Validate a decoded first frame as a Hello and build the reply.
///
/// `shards` is the embedded service's shard count and `backend` its
/// certifier backend (what `HelloOk` advertises). Returns `Err` with
/// the error response to send before closing the connection.
pub fn handshake_reply(
    first: &Request,
    shards: usize,
    backend: Backend,
) -> Result<Response, Response> {
    let wire_err = |msg: String| Response::error(&ServerError::Wire(msg));
    match first {
        Request::Hello { magic } if *magic == HELLO_MAGIC => Ok(Response::HelloOk {
            shards: shards as u32,
            backend,
        }),
        Request::Hello { magic } => Err(wire_err(format!(
            "bad hello magic 0x{magic:08x} (want 0x{HELLO_MAGIC:08x}, version {PROTOCOL_VERSION})"
        ))),
        other => Err(wire_err(format!(
            "expected Hello as the first frame, got {other:?}"
        ))),
    }
}

/// A [`ServerError`] as it travels inside a `Batch` response: the same
/// `(code, detail)` pair a top-level [`Response::Error`] frame carries.
fn error_pair(e: &ServerError) -> (u16, String) {
    match Response::error(e) {
        Response::Error { code, detail } => (code, detail),
        _ => unreachable!("Response::error always builds Error"),
    }
}

/// What the connection should do after handling one request.
#[derive(Debug)]
pub enum ConnAction {
    /// Send this response and keep serving.
    Reply(Response),
    /// Send [`Response::Bye`] and close (the client asked to shut down).
    Bye,
}

/// Per-connection request execution state, independent of how frames
/// arrive.
pub struct ConnCore {
    session: Session,
    /// Wire-visible transaction ids → in-process handles, in a `BTreeMap`
    /// so the disconnect sweep aborts in deterministic (id) order.
    txns: BTreeMap<u64, TxnHandle>,
    next_txn: u64,
    /// Sink for [`SpanHop::ConnHandle`] spans on traced requests; `None`
    /// when the host runs without a recorder.
    obs: Option<ObsSink>,
}

impl ConnCore {
    /// Wrap a freshly opened [`Session`].
    pub fn new(session: Session) -> Self {
        ConnCore {
            session,
            txns: BTreeMap::new(),
            next_txn: 0,
            obs: None,
        }
    }

    /// Attach a span sink: traced requests (nonzero wire trace id) get a
    /// [`SpanHop::ConnHandle`] span covering decode-to-response-built.
    pub fn attach_obs(&mut self, sink: ObsSink) {
        self.obs = Some(sink);
    }

    /// Transactions currently mapped (open as far as the wire knows).
    pub fn open_txns(&self) -> usize {
        self.txns.len()
    }

    /// Execute one decoded request. `trace` is the wire header's trace
    /// id (0 = unsampled): it is handed to the session — so server-side
    /// spans carry the originator's trace — and, when a sink is
    /// attached, brackets the whole dispatch in a
    /// [`SpanHop::ConnHandle`] span. `host` supplies the service-wide
    /// observability surfaces ([`Request::Metrics`] /
    /// [`Request::Telemetry`] / [`Request::TraceExport`]).
    pub fn handle(&mut self, trace: u64, req: Request, host: &impl ConnHost) -> ConnAction {
        // The observability plane never traces itself: spans for a
        // telemetry or trace-export pull would land in the very buffer
        // the pull is draining, so a drain-until-empty poller would
        // never reach the end. The wire still echoes the header's trace
        // id; only span emission is suppressed.
        let trace = match req {
            Request::Telemetry { .. } | Request::TraceExport { .. } => 0,
            _ => trace,
        };
        let (op, txn) = (op_of(&req), wire_txn_of(&req));
        if trace != 0 {
            if let Some(obs) = &self.obs {
                obs.emit(
                    txn,
                    ObsKind::SpanStart {
                        hop: SpanHop::ConnHandle,
                        op,
                        trace,
                    },
                );
            }
        }
        // Every dispatch sets the session's pending wire trace — zero
        // included, so a traced non-session request (e.g. Metrics) can
        // never leak its id into the next session call.
        self.session.set_trace(trace);
        let action = self.dispatch(req, host);
        if trace != 0 {
            // `ok` is the hop outcome the client will see: an Error
            // reply closes the span failed, everything else (including
            // Bye) succeeded.
            let ok = !matches!(&action, ConnAction::Reply(Response::Error { .. }));
            if let Some(obs) = &self.obs {
                obs.emit(
                    txn,
                    ObsKind::SpanEnd {
                        hop: SpanHop::ConnHandle,
                        ok,
                        trace,
                    },
                );
            }
        }
        action
    }

    fn dispatch(&mut self, req: Request, host: &impl ConnHost) -> ConnAction {
        let lookup = |txns: &BTreeMap<u64, TxnHandle>, id: u64| -> Result<TxnHandle, Response> {
            txns.get(&id).copied().ok_or_else(|| {
                Response::error(&ServerError::Wire(format!("unknown transaction id {id}")))
            })
        };
        let reply = |r: Result<(), ServerError>| match r {
            Ok(()) => Response::Done,
            Err(e) => Response::error(&e),
        };
        ConnAction::Reply(match req {
            Request::Hello { .. } => {
                Response::error(&ServerError::Wire("Hello after the handshake".to_string()))
            }
            Request::Open {
                spec,
                after,
                before,
                strategy,
                backend,
            } => {
                let mut builder = TxnBuilder::new(spec);
                if let Some(b) = backend {
                    builder = builder.backend(b);
                }
                for id in after {
                    match lookup(&self.txns, id) {
                        Ok(h) => builder = builder.after(h),
                        Err(resp) => return ConnAction::Reply(resp),
                    }
                }
                for id in before {
                    match lookup(&self.txns, id) {
                        Ok(h) => builder = builder.before(h),
                        Err(resp) => return ConnAction::Reply(resp),
                    }
                }
                if let Some(s) = strategy {
                    builder = builder.strategy(s);
                }
                match self.session.open(builder) {
                    Ok(handle) => {
                        let id = self.next_txn;
                        self.next_txn += 1;
                        self.txns.insert(id, handle);
                        Response::Opened { txn: id }
                    }
                    Err(e) => Response::error(&e),
                }
            }
            Request::Validate { txn } => match lookup(&self.txns, txn) {
                Ok(h) => reply(self.session.validate(h)),
                Err(resp) => resp,
            },
            Request::Read { txn, entity } => match lookup(&self.txns, txn) {
                Ok(h) => match self.session.read(h, entity) {
                    Ok(value) => Response::Value { value },
                    Err(e) => Response::error(&e),
                },
                Err(resp) => resp,
            },
            Request::Write { txn, entity, value } => match lookup(&self.txns, txn) {
                Ok(h) => reply(self.session.write(h, entity, value)),
                Err(resp) => resp,
            },
            Request::Commit { txn } => match lookup(&self.txns, txn) {
                Ok(h) => {
                    let r = self.session.commit(h);
                    // Only a *successful* commit spends the id. A failed
                    // commit (wrong phase, output violation, busy) leaves
                    // the transaction live — or at least reachable —
                    // server-side; unmapping it here would orphan it
                    // beyond the reach of both the client and the
                    // abort-on-disconnect sweep, leaking any state it
                    // holds until shutdown.
                    if r.is_ok() {
                        self.txns.remove(&txn);
                    }
                    reply(r)
                }
                Err(resp) => resp,
            },
            Request::Abort { txn } => match lookup(&self.txns, txn) {
                Ok(h) => {
                    let r = self.session.abort(h);
                    if !matches!(&r, Err(e) if e.is_retryable()) {
                        self.txns.remove(&txn);
                    }
                    reply(r)
                }
                Err(resp) => resp,
            },
            Request::Batch { ops } => Response::Batch {
                results: self.run_wire_batch(&ops),
            },
            Request::Telemetry { since } => match host.telemetry(since) {
                Some(delta) => Response::Telemetry {
                    backend: host.backend(),
                    delta,
                },
                None => Response::error(&ServerError::Shutdown),
            },
            Request::TraceExport { since, max } => match host.trace_export(since, max) {
                Some((next, events)) => Response::TraceExport { next, events },
                None => Response::error(&ServerError::Shutdown),
            },
            Request::Metrics => match host.metrics() {
                Some(m) => Response::Metrics(WireMetrics {
                    requests: m.requests,
                    committed: m.committed,
                    rejected: m.rejected,
                    backpressure: m.backpressure,
                    timeouts: m.timeouts,
                    sessions_in_flight: m.sessions_in_flight as u64,
                    p50_ns: m.p50.map_or(0, |d| d.as_nanos() as u64),
                    p99_ns: m.p99.map_or(0, |d| d.as_nanos() as u64),
                }),
                None => Response::error(&ServerError::Shutdown),
            },
            Request::Shutdown => return ConnAction::Bye,
        })
    }

    /// Execute a wire `Batch`: coalesce maximal runs of consecutive ops
    /// on the same (known) transaction into one [`Client::run_batch`]
    /// call each, so a typical single-transaction burst costs one worker
    /// rendezvous. Results come back per op, in op order, the same
    /// length as the request — an unknown transaction id fails only its
    /// own ops, and a burst-level error (`Busy`, `Timeout`) is
    /// replicated across the run it covered. The frame itself never
    /// fails: fail-closed handling of undecodable batches happens at the
    /// wire layer before this is reached.
    fn run_wire_batch(&mut self, ops: &[(u64, BatchOp)]) -> Vec<Result<BatchReply, (u16, String)>> {
        let mut results = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            let (txn, _) = ops[i];
            let mut j = i + 1;
            while j < ops.len() && ops[j].0 == txn {
                j += 1;
            }
            match self.txns.get(&txn).copied() {
                None => {
                    let pair =
                        error_pair(&ServerError::Wire(format!("unknown transaction id {txn}")));
                    results.extend((i..j).map(|_| Err(pair.clone())));
                }
                Some(handle) => {
                    let run: Vec<BatchOp> = ops[i..j].iter().map(|&(_, op)| op).collect();
                    match self.session.run_batch(handle, &run) {
                        Ok(per_op) => {
                            debug_assert_eq!(per_op.len(), run.len());
                            results
                                .extend(per_op.into_iter().map(|r| r.map_err(|e| error_pair(&e))));
                        }
                        Err(e) => {
                            let pair = error_pair(&e);
                            results.extend((i..j).map(|_| Err(pair.clone())));
                        }
                    }
                }
            }
            i = j;
        }
        results
    }

    /// Abort every transaction still mapped, in id order. Closing (or
    /// crashing) a connection must not leave its transactions holding
    /// locks — this is the abort-on-disconnect sweep both the TCP reaper
    /// and the simulated-link reaper run.
    pub fn abort_open_txns(&mut self) {
        while let Some((_, handle)) = self.txns.pop_first() {
            let _ = self.session.abort(handle);
        }
    }
}

/// The operation a request's `ConnHandle` span is labelled with.
fn op_of(req: &Request) -> OpCode {
    match req {
        Request::Open { .. } => OpCode::Define,
        Request::Validate { .. } => OpCode::Validate,
        Request::Read { .. } => OpCode::Read,
        Request::Write { .. } => OpCode::Write,
        Request::Commit { .. } => OpCode::Commit,
        Request::Abort { .. } => OpCode::Abort,
        Request::Batch { .. } => OpCode::Batch,
        Request::Hello { .. }
        | Request::Metrics
        | Request::Telemetry { .. }
        | Request::TraceExport { .. }
        | Request::Shutdown => OpCode::Stats,
    }
}

/// The wire-visible (connection-scoped) transaction id to stamp on a
/// `ConnHandle` span, [`NO_TXN`] for lifecycle-free requests. Note this
/// is the *wire* id, not the shard-local index server-side events carry;
/// the trace id — not the txn stamp — is what correlates the two.
fn wire_txn_of(req: &Request) -> u32 {
    match req {
        Request::Validate { txn }
        | Request::Read { txn, .. }
        | Request::Write { txn, .. }
        | Request::Commit { txn }
        | Request::Abort { txn } => *txn as u32,
        _ => NO_TXN,
    }
}
