//! The TCP front end: a readiness-based event loop scaled to tens of
//! thousands of connections.
//!
//! Architecture (replacing the old two-threads-per-connection design,
//! whose thread-spawn cost capped concurrency — ROADMAP item 2):
//!
//! * A fixed pool of **I/O threads** ([`NetConfig::io_threads`]), each
//!   owning one epoll [`Poller`](crate::poll::Poller) that multiplexes
//!   its share of the connections (round-robin assignment at accept; the
//!   listener itself is a registration on the first I/O thread, so there
//!   is no dedicated acceptor). Sockets are nonblocking; frame decode
//!   runs the incremental [`FrameState`](crate::wire::FrameState)
//!   machine, so a frame that straddles readiness ticks is resumed, not
//!   restarted, and payload buffers come from a shared bounded
//!   [`BufferPool`](crate::poll::BufferPool) — an idle connection holds
//!   *no* decode buffer, which is what keeps 10k+ mostly-idle
//!   connections cheap.
//! * A fixed pool of **executor threads** ([`NetConfig::executors`]) that
//!   run the blocking part: decoded frames queue into a per-connection
//!   FIFO inbox, a connection with pending work is scheduled onto the
//!   executor pool (at most once at a time, so requests on one
//!   connection stay in order), and the executor drives the unchanged
//!   transport-agnostic [`ConnCore`](crate::conn::ConnCore) — blocking
//!   session calls (commit barriers, WAL group-commit fsyncs) therefore
//!   never stall an I/O thread.
//! * **Nonblocking writes with per-connection backpressure.** Replies
//!   append to a per-connection output buffer flushed opportunistically
//!   by the executor and drained via `EPOLLOUT` when the socket pushes
//!   back. The buffer is bounded by the in-flight window: a request
//!   counts against the window until its reply bytes are buffered, and
//!   the I/O thread stops *reading* a connection at the window — so at
//!   most `window` replies (≤ `MAX_FRAME` each) can ever sit in one
//!   connection's output queue, and a client that pipelines deeper
//!   blocks in TCP backpressure instead of ballooning server memory.
//!
//! Wire-visible transaction ids are connection-scoped `u64`s mapped to
//! in-process handles inside the core, so server handles never cross the
//! wire. Shutdown drains: stop accepting, enqueue a close behind every
//! connection's already-buffered requests, give in-flight work up to the
//! drain timeout, force-close stragglers, join both pools, then shut the
//! embedded [`TxnService`] down and hand back its shard certifiers for
//! verification.

use crate::conn::{handshake_reply, ConnAction, ConnCore, ConnHost};
use crate::poll::{BufferPool, Events, Interest, Poller, PoolStats, Waker};
use crate::wire::{self, FrameProgress, FrameState, Response};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ks_obs::{ObsEvent, ObsKind, ObsSink, Recorder, NO_TXN};
use ks_protocol::Certifier;
use ks_server::{Backend, MetricsSnapshot, ServerError, TxnService};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the network front end (the embedded service has its own
/// [`ServerConfig`](ks_server::ServerConfig)).
#[derive(Clone)]
pub struct NetConfig {
    /// Per-connection in-flight request window: how many decoded
    /// requests may be awaiting execution or reply flush before the I/O
    /// thread stops reading the socket. Also bounds the reply output
    /// buffer (see the module docs).
    pub window: usize,
    /// The I/O threads' readiness-wait timeout: bounds how stale the
    /// stop flag and the handshake-deadline scan can get on a fully idle
    /// server. Traffic wakes the loop immediately regardless.
    pub poll_interval: Duration,
    /// How long [`NetServer::shutdown`] waits for in-flight connections
    /// to drain before force-closing them.
    pub drain_timeout: Duration,
    /// Recorder for connection-lifecycle events ([`ObsKind::ConnOpened`]
    /// / [`ObsKind::ConnClosed`]); usually the same recorder the embedded
    /// service uses.
    pub recorder: Option<Recorder>,
    /// I/O threads multiplexing the connections (min 1).
    pub io_threads: usize,
    /// Executor threads running blocking request handling (min 1).
    /// Sizes the number of *concurrent* blocking calls — e.g. commits
    /// rendezvousing in one WAL group-commit barrier.
    pub executors: usize,
    /// Free-list capacity of the shared frame-decode [`BufferPool`]:
    /// bounds pooled buffers retained across requests. Live decode
    /// memory is bounded by frames concurrently in flight, not by the
    /// connection count.
    pub pool_buffers: usize,
    /// Teeth knob: when nonzero, every connection pins a private decode
    /// scratch of this many (resident) bytes for its lifetime instead of
    /// borrowing from the shared pool — the naive per-connection-buffer
    /// sizing the pool replaces. Exists so the connection-scale bench
    /// can prove its memory gate actually trips; leave 0 in production.
    pub pinned_buffers: usize,
    /// How long a fresh connection may sit without completing the Hello
    /// handshake before the server closes it.
    pub handshake_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            window: 16,
            poll_interval: Duration::from_millis(50),
            drain_timeout: Duration::from_secs(5),
            recorder: None,
            io_threads: 2,
            executors: 8,
            pool_buffers: 256,
            pinned_buffers: 0,
            handshake_timeout: Duration::from_secs(5),
        }
    }
}

/// How many exported span events the server retains for
/// [`wire::Request::TraceExport`] pollers. Old events fall off the front
/// (the cursor keeps advancing, so a slow poller sees a gap, never a
/// duplicate).
const TRACE_BUF_CAP: usize = 1 << 16;

/// The server-side trace-export buffer: an append-only (bounded) log of
/// span events with an absolute cursor, refreshed from the recorder on
/// every pull. Recorder rings are non-destructive snapshots, so repeat
/// pulls re-see retained events; span events are unique by
/// `(trace, hop, start|end)` — each request attempt owns its trace id —
/// which is what `seen` dedupes on.
struct TraceBuf {
    events: VecDeque<ObsEvent>,
    seen: HashSet<(u64, u32, bool)>,
    /// Absolute index of `events[0]`.
    base: u64,
    /// Admission floor: the newest timestamp ever trimmed off the front.
    /// Trimming removes an event's dedup key (so `seen` stays bounded by
    /// the buffer), but the event may still sit in a recorder ring — the
    /// floor keeps the next refresh from readmitting it as "new".
    floor: u64,
}

impl TraceBuf {
    fn new() -> Self {
        TraceBuf {
            events: VecDeque::new(),
            seen: HashSet::new(),
            base: 0,
            floor: 0,
        }
    }

    fn refresh(&mut self, recorder: &Recorder) {
        for ev in recorder.drain() {
            if self.floor > 0 && ev.ts <= self.floor {
                continue;
            }
            let key = match ev.kind {
                ObsKind::SpanStart { hop, trace, .. } => (trace, hop.code(), true),
                ObsKind::SpanEnd { hop, trace, .. } => (trace, hop.code(), false),
                _ => continue,
            };
            if self.seen.insert(key) {
                self.events.push_back(ev);
            }
        }
        while self.events.len() > TRACE_BUF_CAP {
            if let Some(ev) = self.events.pop_front() {
                let key = match ev.kind {
                    ObsKind::SpanStart { hop, trace, .. } => (trace, hop.code(), true),
                    ObsKind::SpanEnd { hop, trace, .. } => (trace, hop.code(), false),
                    _ => unreachable!("trace buffer only holds span events"),
                };
                self.seen.remove(&key);
                self.floor = self.floor.max(ev.ts);
            }
            self.base += 1;
        }
    }

    fn export(&self, since: u64, max: u32) -> (u64, Vec<ObsEvent>) {
        let start = since.max(self.base);
        let offset = (start - self.base) as usize;
        let cap = (max as usize).min(wire::MAX_TRACE_EVENTS);
        let events: Vec<ObsEvent> = self.events.iter().skip(offset).take(cap).copied().collect();
        (start + events.len() as u64, events)
    }
}

/// One unit of per-connection work for the executor pool.
enum Work {
    /// A decoded frame payload (returned to the buffer pool afterwards).
    Frame(Vec<u8>),
    /// The connection is going away: run the abort-on-disconnect sweep
    /// and release the session. Always the last item in a FIFO, so
    /// already-buffered requests finish first (graceful drain).
    Close,
}

/// The per-connection FIFO between the I/O thread and the executors.
struct Inbox {
    queue: VecDeque<Work>,
    /// The connection is on (or running in) the executor pool. At most
    /// one executor drains a connection at a time — this is what keeps
    /// replies in request order.
    scheduled: bool,
    /// Requests decoded but not yet answered-and-buffered. The I/O
    /// thread pauses reading at [`NetConfig::window`].
    in_flight: usize,
    /// No further frames will be queued (close pending or done).
    closing: bool,
}

/// The reply output buffer, drained nonblockingly by whoever holds the
/// lock (executor appends flush opportunistically; the I/O thread drains
/// the rest on `EPOLLOUT`).
struct OutBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    pos: usize,
    /// The last flush hit `WouldBlock`: `EPOLLOUT` is (being) armed.
    want_write: bool,
    /// Finalize the connection once the buffer drains.
    close_after_flush: bool,
    /// The socket is broken; stop buffering, drop what is left.
    error: bool,
}

impl OutBuf {
    fn is_drained(&self) -> bool {
        self.pos >= self.buf.len()
    }
}

/// Executor phase of one connection.
enum Phase {
    /// Nothing allocated server-side until a well-formed Hello arrives.
    Handshake,
    /// Handshake done: a live session behind the unchanged request core.
    Open(ConnCore),
    /// Swept; the session is released.
    Finished,
}

/// Connection state shared between its I/O thread and the executors.
/// Split into three independently locked pieces so the I/O thread never
/// waits on a lock held across a blocking session call: `exec` (the only
/// lock held during request handling) is touched exclusively by
/// executors, serialized by `Inbox::scheduled`.
struct ConnShared {
    id: u64,
    /// Index of the owning I/O thread (for executor → I/O pokes).
    io: usize,
    stream: TcpStream,
    inbox: Mutex<Inbox>,
    exec: Mutex<Phase>,
    out: Mutex<OutBuf>,
    /// The executor ran the close sweep; the I/O thread may finalize.
    swept: AtomicBool,
    /// Handshake completed (read by the I/O thread's deadline scan).
    hello_done: AtomicBool,
}

/// What rides the executor queue.
enum ExecItem {
    Conn(Arc<ConnShared>),
    Exit,
}

/// Cross-thread mailbox of one I/O thread.
struct IoShared {
    inbox: Mutex<IoInbox>,
    waker: Waker,
}

#[derive(Default)]
struct IoInbox {
    /// Freshly accepted connections to register.
    adopt: Vec<Arc<ConnShared>>,
    /// Connection ids whose readiness bookkeeping needs a second look
    /// (resume reading, arm `EPOLLOUT`, finalize).
    attention: Vec<u64>,
}

struct NetShared {
    service: Mutex<Option<TxnService>>,
    stop: AtomicBool,
    /// Set after drain/force-close: I/O threads exit their loops.
    halt: AtomicBool,
    active: AtomicUsize,
    /// Every live connection, for force-close and the final sweep.
    registry: Mutex<HashMap<u64, Arc<ConnShared>>>,
    config: NetConfig,
    obs: Option<ObsSink>,
    traces: Mutex<TraceBuf>,
    pool: BufferPool,
    io: Vec<Arc<IoShared>>,
    exec_tx: Sender<ExecItem>,
    next_conn: AtomicU64,
}

impl NetShared {
    fn with_service<T>(&self, f: impl FnOnce(&TxnService) -> T) -> Option<T> {
        self.service.lock().unwrap().as_ref().map(f)
    }

    /// Ask a connection's I/O thread to re-evaluate it.
    fn poke(&self, conn: &ConnShared) {
        let io = &self.io[conn.io];
        let mut inbox = io.inbox.lock().unwrap();
        let was_idle = inbox.attention.is_empty() && inbox.adopt.is_empty();
        inbox.attention.push(conn.id);
        drop(inbox);
        if was_idle {
            io.waker.wake();
        }
    }

    fn emit_closed(&self, id: u64) {
        if let Some(obs) = &self.obs {
            obs.emit(NO_TXN, ObsKind::ConnClosed { conn: id as u32 });
        }
    }
}

/// The [`ConnHost`] the TCP server exposes to its connection cores:
/// metrics and telemetry straight off the embedded service, trace export
/// off the shared recorder-backed buffer.
struct NetHost<'a>(&'a NetShared);

impl ConnHost for NetHost<'_> {
    fn metrics(&self) -> Option<MetricsSnapshot> {
        self.0.with_service(|svc| svc.metrics())
    }

    fn backend(&self) -> Backend {
        self.0.with_service(|svc| svc.backend()).unwrap_or_default()
    }

    fn telemetry(&self, since: u64) -> Option<ks_obs::TelemetryDelta> {
        self.0.with_service(|svc| svc.telemetry(since))
    }

    fn trace_export(&self, since: u64, max: u32) -> Option<(u64, Vec<ObsEvent>)> {
        let recorder = self.0.config.recorder.as_ref()?;
        let mut buf = self.0.traces.lock().unwrap();
        buf.refresh(recorder);
        Some(buf.export(since, max))
    }
}

/// A TCP server speaking the ks-net wire protocol over an embedded
/// [`TxnService`].
pub struct NetServer {
    shared: Arc<NetShared>,
    addr: SocketAddr,
    io_handles: Vec<JoinHandle<()>>,
    exec_handles: Vec<JoinHandle<()>>,
}

/// Poller token of an I/O thread's waker eventfd.
const TOKEN_WAKER: u64 = 0;
/// Poller token of the listener (first I/O thread only).
const TOKEN_LISTEN: u64 = 1;
/// Connection ids start here so their tokens never collide with the
/// fixed tokens above (token == connection id).
const FIRST_CONN_ID: u64 = 2;

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service`.
    pub fn start(service: TxnService, addr: &str, config: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let obs = config.recorder.as_ref().map(|r| r.sink(u32::MAX));

        let io_threads = config.io_threads.max(1);
        let executors = config.executors.max(1);
        let mut pollers = Vec::with_capacity(io_threads);
        let mut io = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let poller = Poller::new()?;
            let waker = Waker::new(&poller, TOKEN_WAKER)?;
            pollers.push(poller);
            io.push(Arc::new(IoShared {
                inbox: Mutex::new(IoInbox::default()),
                waker,
            }));
        }
        pollers[0].register(listener.as_raw_fd(), TOKEN_LISTEN, Interest::READ)?;

        let (exec_tx, exec_rx) = unbounded::<ExecItem>();
        let pool = BufferPool::new(config.pool_buffers);
        let shared = Arc::new(NetShared {
            service: Mutex::new(Some(service)),
            stop: AtomicBool::new(false),
            halt: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            registry: Mutex::new(HashMap::new()),
            config,
            obs,
            traces: Mutex::new(TraceBuf::new()),
            pool,
            io,
            exec_tx,
            next_conn: AtomicU64::new(FIRST_CONN_ID),
        });

        let mut listener = Some(listener);
        let io_handles = pollers
            .into_iter()
            .enumerate()
            .map(|(idx, poller)| {
                let shared = Arc::clone(&shared);
                let listener = if idx == 0 { listener.take() } else { None };
                std::thread::spawn(move || io_loop(idx, poller, listener, &shared))
            })
            .collect();
        let exec_handles = (0..executors)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = exec_rx.clone();
                std::thread::spawn(move || exec_loop(&rx, &shared))
            })
            .collect();
        Ok(NetServer {
            shared,
            addr,
            io_handles,
            exec_handles,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently open.
    pub fn connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Connections currently registered with the pollers — equals
    /// [`NetServer::connections`] in steady state; the connection-churn
    /// tests assert it returns to baseline (no leaked registrations).
    pub fn registrations(&self) -> usize {
        self.shared.registry.lock().unwrap().len()
    }

    /// Counters of the shared frame-decode buffer pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    /// Graceful shutdown: stop accepting, enqueue a close behind every
    /// connection's buffered requests, drain up to the drain timeout,
    /// force-close stragglers, stop the embedded service, and return its
    /// shard certifiers for verification (see
    /// [`ks_server::verify_certifiers`]).
    pub fn shutdown(self) -> Vec<Box<dyn Certifier>> {
        let shared = &self.shared;
        shared.stop.store(true, Ordering::SeqCst);
        for io in &shared.io {
            io.waker.wake();
        }
        // Drain: I/O threads stop reading and queue closes behind
        // whatever is already windowed; executors finish it.
        let deadline = Instant::now() + shared.config.drain_timeout;
        while shared.active.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Force-close anything still open past the deadline; pending
        // writes fail over to the error path and unblock the pools.
        for conn in shared.registry.lock().unwrap().values() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        for _ in &self.exec_handles {
            let _ = shared.exec_tx.send(ExecItem::Exit);
        }
        for h in self.exec_handles {
            let _ = h.join();
        }
        shared.halt.store(true, Ordering::SeqCst);
        for io in &shared.io {
            io.waker.wake();
        }
        for h in self.io_handles {
            let _ = h.join();
        }
        // Final sweep: anything the pools did not finalize (force-closed
        // mid-request, or queued work dropped at executor exit) still
        // must not leak locks or sessions.
        let leftovers: Vec<Arc<ConnShared>> = shared
            .registry
            .lock()
            .unwrap()
            .drain()
            .map(|(_, c)| c)
            .collect();
        for conn in leftovers {
            let mut phase = conn.exec.lock().unwrap();
            if let Phase::Open(core) = &mut *phase {
                core.abort_open_txns();
            }
            *phase = Phase::Finished;
            drop(phase);
            shared.emit_closed(conn.id);
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
        let service = shared
            .service
            .lock()
            .unwrap()
            .take()
            .expect("shutdown called twice");
        service.shutdown()
    }
}

// ---------------------------------------------------------------------
// I/O threads
// ---------------------------------------------------------------------

/// Per-connection state owned by its I/O thread alone (never locked).
struct IoConn {
    shared: Arc<ConnShared>,
    /// Incremental frame decode, surviving readiness ticks mid-frame.
    state: FrameState,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Reading paused: the in-flight window is full.
    paused: bool,
    /// No more reads ever (EOF, error, or close pending).
    read_done: bool,
    /// Teeth ballast: the private decode scratch a connection pins for
    /// its lifetime when [`NetConfig::pinned_buffers`] is nonzero.
    _pinned: Option<Vec<u8>>,
}

fn io_loop(idx: usize, poller: Poller, mut listener: Option<TcpListener>, shared: &Arc<NetShared>) {
    let mut conns: HashMap<u64, IoConn> = HashMap::new();
    let mut pending_hello: HashMap<u64, Instant> = HashMap::new();
    let mut events = Events::with_capacity(256);
    let mut draining = false;
    loop {
        if shared.halt.load(Ordering::SeqCst) {
            break;
        }
        if shared.stop.load(Ordering::SeqCst) && !draining {
            draining = true;
            // Close the listener (deregisters on drop) and queue a close
            // behind every connection's already-decoded requests.
            listener = None;
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in ids {
                if let Some(conn) = conns.get_mut(&id) {
                    initiate_close(conn, shared, &poller);
                    try_finalize(id, &mut conns, &mut pending_hello, shared, &poller);
                }
            }
        }
        let _ = poller.wait(&mut events, Some(shared.config.poll_interval));
        let ready: Vec<_> = events.iter().collect();
        for ev in ready {
            match ev.token {
                TOKEN_WAKER => shared.io[idx].waker.drain(),
                TOKEN_LISTEN => {
                    if let Some(l) = &listener {
                        accept_burst(l, shared, &mut conns, &mut pending_hello, &poller);
                    }
                }
                id => {
                    let Some(conn) = conns.get_mut(&id) else {
                        continue;
                    };
                    if ev.failed {
                        let mut out = conn.shared.out.lock().unwrap();
                        out.error = true;
                        drop(out);
                        initiate_close(conn, shared, &poller);
                    } else {
                        if ev.writable {
                            flush_out(&conn.shared);
                            update_interest(conn, &poller);
                        }
                        if ev.readable && !conn.read_done && !conn.paused {
                            read_drain(conn, shared, &poller);
                        }
                    }
                    try_finalize(id, &mut conns, &mut pending_hello, shared, &poller);
                }
            }
        }
        // Cross-thread mail: adopt fresh connections, re-evaluate poked
        // ones (resume reading, arm EPOLLOUT, finalize).
        let mail = {
            let mut inbox = shared.io[idx].inbox.lock().unwrap();
            std::mem::take(&mut *inbox)
        };
        for conn in mail.adopt {
            adopt(conn, shared, &mut conns, &mut pending_hello, &poller);
        }
        for id in mail.attention {
            if let Some(conn) = conns.get_mut(&id) {
                let want_write = conn.shared.out.lock().unwrap().want_write;
                if want_write {
                    flush_out(&conn.shared);
                }
                if conn.paused && !conn.read_done {
                    let inbox = conn.shared.inbox.lock().unwrap();
                    if inbox.in_flight < shared.config.window.max(1) && !inbox.closing {
                        conn.paused = false;
                    }
                }
                update_interest(conn, &poller);
                try_finalize(id, &mut conns, &mut pending_hello, shared, &poller);
            }
        }
        // Handshake deadline scan: a connection that never says Hello
        // must not hold a registration forever.
        if !pending_hello.is_empty() {
            let timeout = shared.config.handshake_timeout;
            let expired: Vec<u64> = pending_hello
                .iter()
                .filter_map(|(&id, &since)| {
                    let conn = conns.get(&id)?;
                    if conn.shared.hello_done.load(Ordering::Acquire) {
                        return None; // handled below: drop from the scan
                    }
                    (since.elapsed() > timeout).then_some(id)
                })
                .collect();
            pending_hello.retain(|id, _| {
                conns
                    .get(id)
                    .is_some_and(|c| !c.shared.hello_done.load(Ordering::Acquire))
            });
            for id in expired {
                if let Some(conn) = conns.get_mut(&id) {
                    let _ = conn.shared.stream.shutdown(Shutdown::Both);
                    initiate_close(conn, shared, &poller);
                    try_finalize(id, &mut conns, &mut pending_hello, shared, &poller);
                }
            }
        }
    }
}

fn accept_burst(
    listener: &TcpListener,
    shared: &Arc<NetShared>,
    conns: &mut HashMap<u64, IoConn>,
    pending_hello: &mut HashMap<u64, Instant>,
    poller: &Poller,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            // Transient accept failure (e.g. fd exhaustion): the
            // listener stays registered, so we simply retry on the next
            // readiness event instead of spinning.
            Err(_) => return,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let target = (id % shared.io.len() as u64) as usize;
        let conn = Arc::new(ConnShared {
            id,
            io: target,
            stream,
            inbox: Mutex::new(Inbox {
                queue: VecDeque::new(),
                scheduled: false,
                in_flight: 0,
                closing: false,
            }),
            exec: Mutex::new(Phase::Handshake),
            out: Mutex::new(OutBuf {
                buf: Vec::new(),
                pos: 0,
                want_write: false,
                close_after_flush: false,
                error: false,
            }),
            swept: AtomicBool::new(false),
            hello_done: AtomicBool::new(false),
        });
        shared
            .registry
            .lock()
            .unwrap()
            .insert(id, Arc::clone(&conn));
        shared.active.fetch_add(1, Ordering::SeqCst);
        if let Some(obs) = &shared.obs {
            obs.emit(NO_TXN, ObsKind::ConnOpened { conn: id as u32 });
        }
        if target == 0 {
            adopt(conn, shared, conns, pending_hello, poller);
        } else {
            let io = &shared.io[target];
            let mut inbox = io.inbox.lock().unwrap();
            let was_idle = inbox.attention.is_empty() && inbox.adopt.is_empty();
            inbox.adopt.push(conn);
            drop(inbox);
            if was_idle {
                io.waker.wake();
            }
        }
    }
}

fn adopt(
    conn: Arc<ConnShared>,
    shared: &Arc<NetShared>,
    conns: &mut HashMap<u64, IoConn>,
    pending_hello: &mut HashMap<u64, Instant>,
    poller: &Poller,
) {
    let id = conn.id;
    if poller
        .register(conn.stream.as_raw_fd(), id, Interest::READ)
        .is_err()
    {
        // Could not watch the socket (e.g. epoll limits): give up on the
        // connection cleanly.
        shared.registry.lock().unwrap().remove(&id);
        shared.emit_closed(id);
        shared.active.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    let pinned = (shared.config.pinned_buffers > 0).then(|| {
        // A zeroed Vec comes from alloc_zeroed, whose pages stay lazily
        // mapped and invisible to RSS; write one byte per page so the
        // ballast is actually resident — the whole point of the teeth
        // mode is the RSS it wastes.
        let mut ballast = vec![0u8; shared.config.pinned_buffers];
        for slot in ballast.iter_mut().step_by(4096) {
            *slot = 1;
        }
        ballast
    });
    let mut io_conn = IoConn {
        shared: conn,
        state: FrameState::new(),
        interest: Interest::READ,
        paused: false,
        read_done: false,
        _pinned: pinned,
    };
    pending_hello.insert(id, Instant::now());
    // Bytes may already be waiting (client sent Hello immediately):
    // level-triggered epoll would report them on the next wait, but
    // draining now saves the first request a tick.
    read_drain(&mut io_conn, shared, poller);
    conns.insert(id, io_conn);
}

/// Pull frames off a readable socket until it would block, the window
/// fills, or the stream ends.
fn read_drain(conn: &mut IoConn, shared: &Arc<NetShared>, poller: &Poller) {
    let window = shared.config.window.max(1);
    let pinned = shared.config.pinned_buffers > 0;
    loop {
        let progress = {
            let pool = &shared.pool;
            let mut alloc = |len: usize| {
                if pinned {
                    vec![0u8; len]
                } else {
                    pool.get(len)
                }
            };
            conn.state.poll_with(&mut (&conn.shared.stream), &mut alloc)
        };
        match progress {
            Ok(FrameProgress::Frame(payload)) => {
                let mut inbox = conn.shared.inbox.lock().unwrap();
                if inbox.closing {
                    drop(inbox);
                    if !pinned {
                        shared.pool.put(payload);
                    }
                    conn.read_done = true;
                    break;
                }
                inbox.queue.push_back(Work::Frame(payload));
                inbox.in_flight += 1;
                let full = inbox.in_flight >= window;
                let schedule = !inbox.scheduled;
                if schedule {
                    inbox.scheduled = true;
                }
                drop(inbox);
                if schedule {
                    let _ = shared
                        .exec_tx
                        .send(ExecItem::Conn(Arc::clone(&conn.shared)));
                }
                if full {
                    conn.paused = true;
                    break;
                }
            }
            Ok(FrameProgress::Pending) => break,
            Ok(FrameProgress::Eof) | Err(_) => {
                initiate_close(conn, shared, poller);
                break;
            }
        }
    }
    update_interest(conn, poller);
}

/// Queue a [`Work::Close`] behind whatever is already buffered and stop
/// reading. Idempotent.
fn initiate_close(conn: &mut IoConn, shared: &Arc<NetShared>, poller: &Poller) {
    conn.read_done = true;
    // A frame cut off mid-decode is abandoned; its pooled buffer goes
    // back to the free list.
    if let Some(buf) = conn.state.reset() {
        if shared.config.pinned_buffers == 0 {
            shared.pool.put(buf);
        }
    }
    let schedule = {
        let mut inbox = conn.shared.inbox.lock().unwrap();
        if inbox.closing {
            false
        } else {
            inbox.closing = true;
            inbox.queue.push_back(Work::Close);
            let schedule = !inbox.scheduled;
            inbox.scheduled = true;
            schedule
        }
    };
    if schedule {
        let _ = shared
            .exec_tx
            .send(ExecItem::Conn(Arc::clone(&conn.shared)));
    }
    update_interest(conn, poller);
}

/// Re-register the connection's interest if it changed: reads while the
/// window has room, writes while the output buffer has a backlog.
fn update_interest(conn: &mut IoConn, poller: &Poller) {
    let want = Interest {
        readable: !conn.read_done && !conn.paused,
        writable: conn.shared.out.lock().unwrap().want_write,
    };
    if want != conn.interest {
        conn.interest = want;
        let _ = poller.modify(conn.shared.stream.as_raw_fd(), conn.shared.id, want);
    }
}

/// Drop the connection once the executor swept it and the reply buffer
/// drained (or broke): deregister, close, emit `ConnClosed`.
fn try_finalize(
    id: u64,
    conns: &mut HashMap<u64, IoConn>,
    pending_hello: &mut HashMap<u64, Instant>,
    shared: &Arc<NetShared>,
    poller: &Poller,
) {
    let Some(conn) = conns.get(&id) else { return };
    if !conn.shared.swept.load(Ordering::Acquire) {
        return;
    }
    {
        let out = conn.shared.out.lock().unwrap();
        if !out.is_drained() && !out.error {
            return; // EPOLLOUT will drain it, then poke us again
        }
    }
    let conn = conns.remove(&id).expect("checked above");
    pending_hello.remove(&id);
    let _ = poller.deregister(conn.shared.stream.as_raw_fd());
    shared.registry.lock().unwrap().remove(&id);
    shared.emit_closed(id);
    shared.active.fetch_sub(1, Ordering::SeqCst);
    // The fd itself closes when the last Arc drops (usually right here).
}

/// Write as much of the output backlog as the socket accepts. Called
/// with the lock taken inside, by executors (opportunistic flush) and
/// I/O threads (`EPOLLOUT`) alike.
fn flush_out(conn: &ConnShared) {
    let mut out = conn.out.lock().unwrap();
    if out.error {
        return;
    }
    while out.pos < out.buf.len() {
        match (&conn.stream).write(&out.buf[out.pos..]) {
            Ok(0) => {
                out.error = true;
                break;
            }
            Ok(n) => out.pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                out.want_write = true;
                return;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                out.error = true;
                break;
            }
        }
    }
    out.buf.clear();
    out.pos = 0;
    out.want_write = false;
}

// ---------------------------------------------------------------------
// Executor threads
// ---------------------------------------------------------------------

fn exec_loop(rx: &Receiver<ExecItem>, shared: &Arc<NetShared>) {
    // Reply frames are built in this reused buffer — no per-reply
    // allocation on the hot path.
    let mut scratch: Vec<u8> = Vec::with_capacity(256);
    while let Ok(item) = rx.recv() {
        match item {
            ExecItem::Exit => break,
            ExecItem::Conn(conn) => run_conn(&conn, shared, &mut scratch),
        }
    }
}

/// Drain one connection's inbox: requests leave in order, replies are
/// buffered in the same order (each echoing its request's correlation
/// id), and the socket is flushed once when the inbox momentarily
/// empties — so a pipelined burst coalesces into few writes.
fn run_conn(conn: &Arc<ConnShared>, shared: &Arc<NetShared>, scratch: &mut Vec<u8>) {
    let window = shared.config.window.max(1);
    let mut poke = false;
    loop {
        let work = {
            let mut inbox = conn.inbox.lock().unwrap();
            match inbox.queue.pop_front() {
                Some(w) => w,
                None => {
                    // Checked under the lock, so a frame the I/O thread
                    // pushes concurrently either lands before this or
                    // reschedules the connection — no lost wakeups.
                    inbox.scheduled = false;
                    break;
                }
            }
        };
        match work {
            Work::Frame(payload) => {
                let closed = handle_frame(conn, shared, &payload, scratch);
                if shared.config.pinned_buffers == 0 {
                    shared.pool.put(payload);
                }
                let mut inbox = conn.inbox.lock().unwrap();
                let was = inbox.in_flight;
                inbox.in_flight = was.saturating_sub(1);
                drop(inbox);
                if was >= window {
                    poke = true; // the I/O thread paused reads: resume
                }
                if closed {
                    poke = true;
                }
            }
            Work::Close => {
                sweep(conn);
                poke = true;
            }
        }
    }
    flush_out(conn);
    {
        let out = conn.out.lock().unwrap();
        if out.want_write || (out.close_after_flush && out.is_drained()) || out.error {
            poke = true;
        }
    }
    if poke {
        shared.poke(conn);
    }
}

/// Decode and execute one frame; buffer the reply. Returns `true` when
/// the connection is closing as a result (Bye or failed handshake).
fn handle_frame(
    conn: &Arc<ConnShared>,
    shared: &Arc<NetShared>,
    payload: &[u8],
    scratch: &mut Vec<u8>,
) -> bool {
    let mut phase = conn.exec.lock().unwrap();
    match &mut *phase {
        Phase::Handshake => {
            let reply = handshake(conn, shared, payload, &mut phase);
            let closing = reply.is_err();
            let (corr, trace, resp) = match &reply {
                Ok((corr, trace, resp)) | Err((corr, trace, resp)) => (*corr, *trace, resp),
            };
            drop(phase);
            append_reply(conn, scratch, corr, trace, resp);
            if closing {
                close_from_exec(conn);
            }
            closing
        }
        Phase::Open(_) => {
            let (corr, trace, action) = {
                let Phase::Open(core) = &mut *phase else {
                    unreachable!()
                };
                match wire::decode_request(payload) {
                    Ok((corr, trace, req)) => {
                        (corr, trace, core.handle(trace, req, &NetHost(shared)))
                    }
                    // A payload too mangled to decode still gets a
                    // best-effort correlated error: the id lives in a
                    // fixed header slot, so it usually survives even
                    // when the body does not.
                    Err(e) => (
                        wire::peek_corr(payload).unwrap_or(u64::MAX),
                        0,
                        ConnAction::Reply(Response::error(&ServerError::from(e))),
                    ),
                }
            };
            drop(phase);
            match action {
                ConnAction::Reply(resp) => {
                    append_reply(conn, scratch, corr, trace, &resp);
                    false
                }
                ConnAction::Bye => {
                    // Shutdown request: acknowledge, then close (dropping
                    // anything the client pipelined after it).
                    append_reply(conn, scratch, corr, trace, &Response::Bye);
                    close_from_exec(conn);
                    true
                }
            }
        }
        Phase::Finished => false, // frame raced a close; drop it
    }
}

/// Validate the first frame as a Hello, open the session, and move to
/// [`Phase::Open`]. `Err` carries the reply to send before closing.
type HandshakeReply = (u64, u64, Response);
fn handshake(
    conn: &Arc<ConnShared>,
    shared: &Arc<NetShared>,
    payload: &[u8],
    phase: &mut Phase,
) -> Result<HandshakeReply, HandshakeReply> {
    let (corr, trace, first) = match wire::decode_request(payload) {
        Ok(parts) => parts,
        Err(e) => {
            let corr = wire::peek_corr(payload).unwrap_or(0);
            return Err((corr, 0, Response::error(&ServerError::from(e))));
        }
    };
    let (shards, backend) = shared
        .with_service(|svc| (svc.shard_map().shards(), svc.backend()))
        .unwrap_or((0, Backend::default()));
    let ok = match handshake_reply(&first, shards, backend) {
        Ok(ok) => ok,
        Err(resp) => return Err((corr, trace, resp)),
    };
    let session = match shared.with_service(|svc| svc.session()) {
        Some(Ok(s)) => s,
        Some(Err(e)) => return Err((corr, trace, Response::error(&e))),
        None => return Err((corr, trace, Response::error(&ServerError::Shutdown))),
    };
    let mut core = ConnCore::new(session);
    if let Some(obs) = &shared.obs {
        core.attach_obs(obs.clone());
    }
    *phase = Phase::Open(core);
    conn.hello_done.store(true, Ordering::Release);
    Ok((corr, trace, ok))
}

/// Frame `resp` into the scratch buffer and append it to the output
/// queue (bounded by the in-flight window — see the module docs).
fn append_reply(conn: &ConnShared, scratch: &mut Vec<u8>, corr: u64, trace: u64, resp: &Response) {
    if wire::encode_response_frame(scratch, corr, trace, resp).is_err() {
        return; // over-MAX_FRAME reply: nothing sendable
    }
    let mut out = conn.out.lock().unwrap();
    if !out.error {
        out.buf.extend_from_slice(scratch);
    }
}

/// Executor-initiated close (Bye or failed handshake): stop accepting
/// frames, drop whatever was pipelined behind this one, sweep, and ask
/// the I/O thread to finalize once the goodbye flushes.
fn close_from_exec(conn: &Arc<ConnShared>) {
    {
        let mut inbox = conn.inbox.lock().unwrap();
        inbox.closing = true;
        inbox.queue.clear();
        inbox.in_flight = 0;
    }
    conn.out.lock().unwrap().close_after_flush = true;
    sweep(conn);
}

/// The abort-on-disconnect sweep: no closed (or crashed) connection may
/// leave transactions holding locks. Releases the session *after* the
/// sweep — a client that observes the session gone can rely on the
/// locks being gone too.
fn sweep(conn: &Arc<ConnShared>) {
    let mut phase = conn.exec.lock().unwrap();
    if let Phase::Open(core) = &mut *phase {
        core.abort_open_txns();
    }
    *phase = Phase::Finished;
    drop(phase);
    conn.out.lock().unwrap().close_after_flush = true;
    conn.swept.store(true, Ordering::Release);
}
