//! The TCP front end: accept loop, per-connection handler threads,
//! bounded in-flight windows, graceful drain.
//!
//! Each accepted connection gets two threads: a *reader* that decodes
//! frames off the socket into a bounded channel (the in-flight window —
//! a client that pipelines more than `window` requests blocks in TCP
//! backpressure instead of ballooning server memory) and a *handler*
//! that executes requests through the transport-agnostic
//! [`ConnCore`](crate::conn::ConnCore) and writes replies in request
//! order. Wire-visible transaction ids are connection-scoped `u64`s
//! mapped to in-process handles inside the core, so server handles never
//! cross the wire.
//!
//! Shutdown drains: stop accepting, let readers notice the stop flag at
//! their next read-timeout tick, give in-flight requests up to the drain
//! timeout to complete, force-close stragglers, join everything, then
//! shut the embedded [`TxnService`] down and hand back its shard
//! managers for verification.

use crate::conn::{handshake_reply, ConnAction, ConnCore, ConnHost};
use crate::wire::{self, read_frame, write_frame, FrameProgress, FrameReader, Response};
use crossbeam::channel::{bounded, Receiver, Sender};
use ks_obs::{ObsEvent, ObsKind, ObsSink, Recorder, NO_TXN};
use ks_protocol::Certifier;
use ks_server::{Backend, MetricsSnapshot, ServerError, TxnService};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the network front end (the embedded service has its own
/// [`ServerConfig`](ks_server::ServerConfig)).
#[derive(Clone)]
pub struct NetConfig {
    /// Per-connection in-flight request window: how many decoded,
    /// not-yet-answered requests the server buffers before it stops
    /// reading the socket.
    pub window: usize,
    /// How long the reader sleeps in `read` before re-checking the stop
    /// flag; bounds shutdown latency for idle connections.
    pub poll_interval: Duration,
    /// How long [`NetServer::shutdown`] waits for in-flight connections
    /// to drain before force-closing them.
    pub drain_timeout: Duration,
    /// Recorder for connection-lifecycle events ([`ObsKind::ConnOpened`]
    /// / [`ObsKind::ConnClosed`]); usually the same recorder the embedded
    /// service uses.
    pub recorder: Option<Recorder>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            window: 16,
            poll_interval: Duration::from_millis(50),
            drain_timeout: Duration::from_secs(5),
            recorder: None,
        }
    }
}

/// How many exported span events the server retains for
/// [`wire::Request::TraceExport`] pollers. Old events fall off the front
/// (the cursor keeps advancing, so a slow poller sees a gap, never a
/// duplicate).
const TRACE_BUF_CAP: usize = 1 << 16;

/// The server-side trace-export buffer: an append-only (bounded) log of
/// span events with an absolute cursor, refreshed from the recorder on
/// every pull. Recorder rings are non-destructive snapshots, so repeat
/// pulls re-see retained events; span events are unique by
/// `(trace, hop, start|end)` — each request attempt owns its trace id —
/// which is what `seen` dedupes on.
struct TraceBuf {
    events: VecDeque<ObsEvent>,
    seen: HashSet<(u64, u32, bool)>,
    /// Absolute index of `events[0]`.
    base: u64,
    /// Admission floor: the newest timestamp ever trimmed off the front.
    /// Trimming removes an event's dedup key (so `seen` stays bounded by
    /// the buffer), but the event may still sit in a recorder ring — the
    /// floor keeps the next refresh from readmitting it as "new".
    floor: u64,
}

impl TraceBuf {
    fn new() -> Self {
        TraceBuf {
            events: VecDeque::new(),
            seen: HashSet::new(),
            base: 0,
            floor: 0,
        }
    }

    fn refresh(&mut self, recorder: &Recorder) {
        for ev in recorder.drain() {
            if self.floor > 0 && ev.ts <= self.floor {
                continue;
            }
            let key = match ev.kind {
                ObsKind::SpanStart { hop, trace, .. } => (trace, hop.code(), true),
                ObsKind::SpanEnd { hop, trace, .. } => (trace, hop.code(), false),
                _ => continue,
            };
            if self.seen.insert(key) {
                self.events.push_back(ev);
            }
        }
        while self.events.len() > TRACE_BUF_CAP {
            if let Some(ev) = self.events.pop_front() {
                let key = match ev.kind {
                    ObsKind::SpanStart { hop, trace, .. } => (trace, hop.code(), true),
                    ObsKind::SpanEnd { hop, trace, .. } => (trace, hop.code(), false),
                    _ => unreachable!("trace buffer only holds span events"),
                };
                self.seen.remove(&key);
                self.floor = self.floor.max(ev.ts);
            }
            self.base += 1;
        }
    }

    fn export(&self, since: u64, max: u32) -> (u64, Vec<ObsEvent>) {
        let start = since.max(self.base);
        let offset = (start - self.base) as usize;
        let cap = (max as usize).min(wire::MAX_TRACE_EVENTS);
        let events: Vec<ObsEvent> = self.events.iter().skip(offset).take(cap).copied().collect();
        (start + events.len() as u64, events)
    }
}

struct NetShared {
    service: Mutex<Option<TxnService>>,
    stop: AtomicBool,
    active: AtomicUsize,
    /// Write halves of live connections, for force-close at drain expiry.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    config: NetConfig,
    obs: Option<ObsSink>,
    traces: Mutex<TraceBuf>,
}

impl NetShared {
    fn with_service<T>(&self, f: impl FnOnce(&TxnService) -> T) -> Option<T> {
        self.service.lock().unwrap().as_ref().map(f)
    }
}

/// The [`ConnHost`] the TCP server exposes to its connection cores:
/// metrics and telemetry straight off the embedded service, trace export
/// off the shared recorder-backed buffer.
struct NetHost<'a>(&'a NetShared);

impl ConnHost for NetHost<'_> {
    fn metrics(&self) -> Option<MetricsSnapshot> {
        self.0.with_service(|svc| svc.metrics())
    }

    fn backend(&self) -> Backend {
        self.0.with_service(|svc| svc.backend()).unwrap_or_default()
    }

    fn telemetry(&self, since: u64) -> Option<ks_obs::TelemetryDelta> {
        self.0.with_service(|svc| svc.telemetry(since))
    }

    fn trace_export(&self, since: u64, max: u32) -> Option<(u64, Vec<ObsEvent>)> {
        let recorder = self.0.config.recorder.as_ref()?;
        let mut buf = self.0.traces.lock().unwrap();
        buf.refresh(recorder);
        Some(buf.export(since, max))
    }
}

/// A TCP server speaking the ks-net wire protocol over an embedded
/// [`TxnService`].
pub struct NetServer {
    shared: Arc<NetShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service`.
    pub fn start(service: TxnService, addr: &str, config: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking accepts polled against the stop flag: shutdown must
        // never depend on being able to dial our own bound address (which
        // fails for e.g. a 0.0.0.0 bind behind a local firewall).
        listener.set_nonblocking(true)?;
        let obs = config.recorder.as_ref().map(|r| r.sink(u32::MAX));
        let shared = Arc::new(NetShared {
            service: Mutex::new(Some(service)),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            config,
            obs,
            traces: Mutex::new(TraceBuf::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(NetServer {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently open.
    pub fn connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, drain in-flight connections up
    /// to the drain timeout, force-close stragglers, stop the embedded
    /// service, and return its shard certifiers for verification (see
    /// [`ks_server::verify_certifiers`]).
    pub fn shutdown(mut self) -> Vec<Box<dyn Certifier>> {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept loop polls nonblockingly, so it notices the flag on
        // its next tick — no wake-up connection needed.
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Drain: readers notice `stop` within one poll interval, handlers
        // finish what is already windowed, connections close.
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.active.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Force-close anything still open past the deadline.
        for (_, stream) in self.shared.conns.lock().unwrap().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
        let service = self
            .shared
            .service
            .lock()
            .unwrap()
            .take()
            .expect("shutdown called twice");
        service.shutdown()
    }
}

/// How often the (nonblocking) accept loop re-checks the stop flag when
/// no connection is pending. Short enough that connection setup adds no
/// measurable latency (pending accepts drain back-to-back without
/// sleeping); it also bounds the acceptor's shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

fn accept_loop(listener: TcpListener, shared: Arc<NetShared>) {
    let mut next_conn: u64 = 0;
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back off
                // instead of spinning hot.
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        };
        let conn_id = next_conn;
        next_conn += 1;
        // The accepted socket must block: per-connection I/O relies on
        // read timeouts, not nonblocking reads (inheritance of the
        // listener's nonblocking flag is platform-specific).
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_nodelay(true);
        shared.active.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(conn_id, clone);
        }
        if let Some(obs) = &shared.obs {
            obs.emit(
                NO_TXN,
                ObsKind::ConnOpened {
                    conn: conn_id as u32,
                },
            );
        }
        let handler = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                serve_connection(stream, &shared);
                shared.conns.lock().unwrap().remove(&conn_id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                if let Some(obs) = &shared.obs {
                    obs.emit(
                        NO_TXN,
                        ObsKind::ConnClosed {
                            conn: conn_id as u32,
                        },
                    );
                }
            })
        };
        let mut handlers = shared.handlers.lock().unwrap();
        // Reap finished connections as new ones arrive, so a long-running
        // server tracks only live handlers instead of leaking one join
        // handle per connection ever accepted.
        handlers.retain(|h| !h.is_finished());
        handlers.push(handler);
    }
}

/// Read frames into the in-flight window until EOF, error, or stop.
/// Dropping the sender is the reader's only exit signal to the handler.
fn reader_loop(stream: TcpStream, window: Sender<Vec<u8>>, shared: Arc<NetShared>) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    // The incremental FrameReader retains partial length-prefix/payload
    // progress across poll-interval timeouts, so a frame that straddles
    // a tick (large Open frames across TCP segments, congestion) is
    // resumed rather than desynchronizing the stream.
    let mut frames = FrameReader::new(BufReader::new(stream));
    loop {
        match frames.poll_frame() {
            Ok(FrameProgress::Frame(payload)) => {
                if window.send(payload).is_err() {
                    return; // handler gone
                }
            }
            Ok(FrameProgress::Eof) => return, // clean EOF
            Ok(FrameProgress::Pending) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<NetShared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(stream);
    // Reply frames are built in this reused buffer and written with a
    // single `write_all` each — no per-frame allocation on the hot path.
    let mut scratch: Vec<u8> = Vec::with_capacity(256);

    // Handshake before any state is allocated: first frame must be a
    // well-formed Hello with the right magic and version.
    if let Err((corr, trace, resp)) = handshake(&mut writer, shared) {
        let _ = write_frame(&mut writer, &wire::encode_response(corr, trace, &resp));
        return;
    }

    let Some(session) = shared.with_service(|svc| svc.session()) else {
        return; // already shutting down
    };
    let session = match session {
        Ok(s) => s,
        Err(e) => {
            // Unsolicited, so there is no request corr to echo; the
            // client drops the frame and then sees the close.
            let _ = write_frame(
                &mut writer,
                &wire::encode_response(u64::MAX, 0, &Response::error(&e)),
            );
            return;
        }
    };
    let mut core = ConnCore::new(session);
    if let Some(obs) = &shared.obs {
        core.attach_obs(obs.clone());
    }
    let host = NetHost(shared);

    let (tx, rx): (Sender<Vec<u8>>, Receiver<Vec<u8>>) = bounded(shared.config.window.max(1));
    let reader = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || reader_loop(read_half, tx, shared))
    };

    // Handler loop: requests leave the window in order; replies are
    // written in the same order, each echoing its request's correlation
    // id so a pipelining client can match them up. The BufWriter is only
    // flushed when the window is momentarily empty, so a pipelined burst
    // coalesces into as few TCP segments as the buffer allows.
    while let Ok(payload) = rx.recv() {
        let (corr, trace, resp) = match wire::decode_request(&payload) {
            Ok((corr, trace, req)) => match core.handle(trace, req, &host) {
                ConnAction::Reply(resp) => (corr, trace, resp),
                ConnAction::Bye => {
                    // Shutdown request: acknowledge and close.
                    let _ = write_frame(
                        &mut writer,
                        &wire::encode_response(corr, trace, &Response::Bye),
                    );
                    break;
                }
            },
            // A payload too mangled to decode still gets a best-effort
            // correlated error: the id lives in a fixed header slot, so
            // it usually survives even when the body does not.
            Err(e) => (
                wire::peek_corr(&payload).unwrap_or(u64::MAX),
                0,
                Response::error(&ServerError::from(e)),
            ),
        };
        let written = wire::encode_response_frame(&mut scratch, corr, trace, &resp)
            .and_then(|()| writer.write_all(&scratch));
        if written.is_err() {
            break;
        }
        if rx.is_empty() && writer.flush().is_err() {
            break;
        }
    }
    let _ = writer.flush();
    // Closing (or crashing) a connection must not leave its transactions
    // holding locks: abort everything still open.
    core.abort_open_txns();
    drop(rx); // unblock a reader stuck on a full window
    let _ = writer.get_ref().shutdown(Shutdown::Both);
    let _ = reader.join();
}

fn handshake(
    writer: &mut BufWriter<TcpStream>,
    shared: &NetShared,
) -> Result<(), (u64, u64, Response)> {
    let wire_err = |msg: String| (0, 0, Response::error(&ServerError::Wire(msg)));
    let stream = writer.get_ref();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| wire_err(e.to_string()))?);
    let payload = match read_frame(&mut reader) {
        Ok(Some(p)) => p,
        Ok(None) => return Err(wire_err("connection closed before Hello".into())),
        Err(e) => return Err(wire_err(format!("reading Hello: {e}"))),
    };
    let (corr, trace, first) =
        wire::decode_request(&payload).map_err(|e| wire_err(e.to_string()))?;
    let (shards, backend) = shared
        .with_service(|svc| (svc.shard_map().shards(), svc.backend()))
        .unwrap_or((0, Backend::default()));
    let ok = handshake_reply(&first, shards, backend).map_err(|resp| (corr, trace, resp))?;
    write_frame(writer, &wire::encode_response(corr, trace, &ok))
        .map_err(|e| wire_err(e.to_string()))?;
    Ok(())
}
