//! # ks-net — the networked front end for the KS transaction service
//!
//! This crate puts [`TxnService`](ks_server::TxnService) behind a TCP
//! socket without changing what a client program looks like. The same
//! [`Client`](ks_server::Client) trait that in-process
//! [`Session`](ks_server::Session)s implement is implemented here by
//! [`RemoteSession`], so a workload written once runs over either
//! transport — the loopback integration tests and the `exp_net_load`
//! experiment drive both from a single generic function.
//!
//! Five layers:
//!
//! * [`wire`] — the protocol itself: length-prefixed, versioned binary
//!   frames covering the full session surface (hello / open / validate /
//!   read / write / commit / abort / metrics / telemetry / trace export /
//!   shutdown), each carrying a correlation id **and a trace id** so
//!   replies can be matched to pipelined requests and distributed-trace
//!   spans can be stitched across the client/server boundary, plus
//!   `Batch` frames packing a burst of reads/writes with per-op
//!   results. Specifications are encoded structurally and errors as
//!   typed `(code, detail)` pairs that round-trip losslessly into
//!   [`ServerError`](ks_server::ServerError). Documented normatively in
//!   `docs/wire.md`.
//! * [`transport`] — [`Transport`]: the byte-stream abstraction under
//!   the client (an ordered reliable stream that splits into a deadlined
//!   [`TransportRx`] read half and a `Write` send half, which is what
//!   lets the client pipeline). [`TcpTransport`] is the production
//!   implementation; the deterministic simulation harness (`ks-dst`)
//!   substitutes an in-memory link with seeded fault injection.
//! * [`conn`] — [`ConnCore`](conn::ConnCore): the transport-agnostic
//!   per-connection request executor (id table, commit/abort id
//!   lifecycle, batch coalescing into per-transaction runs,
//!   abort-on-disconnect sweep) shared by the TCP server and the
//!   simulator, so both drive identical server-side logic.
//! * [`poll`] — the readiness plumbing under the server: a small epoll
//!   wrapper (level-triggered `Poller` + eventfd `Waker`), the bounded
//!   frame-decode `BufferPool`, and the `/proc` probes the
//!   connection-scale gates measure with.
//! * [`server`] — [`NetServer`]: a readiness-based event loop embedding
//!   a `TxnService` — a fixed pool of I/O threads multiplexing all
//!   connections (nonblocking sockets, incremental pooled frame decode,
//!   backpressured nonblocking writes) feeding a fixed executor pool
//!   that runs the blocking request handling, with a bounded in-flight
//!   window per connection (the server answers pipelined requests in
//!   arrival order, echoing each request's correlation id, and coalesces
//!   reply flushes) and a graceful drain shutdown that hands back the
//!   shard certifiers for model-checking. Scales to 10k+ mostly-idle
//!   connections per process.
//! * [`client`] — [`RemoteSession`]: connect timeouts, per-request
//!   deadlines, bounded jittered retry/backoff on transient errors,
//!   fail-fast poisoning after transport faults, and correlation-id
//!   demultiplexing so multiple requests — notably
//!   [`Client::run_batch`](ks_server::Client::run_batch) bursts — are in
//!   flight per connection; generic over [`Transport`] via
//!   [`RemoteSession::over`].
//!
//! The design stance matches the rest of the repo: the network may delay,
//! sever, or refuse, but it must never *invent* an outcome — every
//! failure surfaces as a typed [`ServerError`](ks_server::ServerError),
//! and the serializability-free correctness argument still rests on the
//! embedded service's protocol managers, which `NetServer::shutdown`
//! returns for verification exactly like the in-process path.

#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod poll;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{NetClientConfig, RemoteSession, RemoteTxn};
pub use conn::{ConnAction, ConnCore, ConnHost};
pub use server::{NetConfig, NetServer};
pub use transport::{TcpRx, TcpTransport, Transport, TransportRx};
pub use wire::{
    peek_corr, Request, Response, WireError, WireMetrics, MAX_BATCH_OPS, MAX_FRAME,
    MAX_TRACE_EVENTS, PROTOCOL_VERSION,
};
