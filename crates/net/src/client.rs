//! `RemoteSession`: the networked counterpart of an in-process
//! [`Session`](ks_server::Session).
//!
//! It implements the same [`Client`] contract over any [`Transport`], so
//! workloads, tests, and benchmarks written against the trait run
//! unchanged on either transport. The differences live entirely in the
//! failure model:
//!
//! * **Connect timeouts** — [`RemoteSession::connect`] bounds the TCP
//!   dial and the Hello/HelloOk version negotiation.
//! * **Per-request deadlines** — every attempt gets a read deadline; a
//!   reply that does not arrive in time surfaces as
//!   [`ServerError::Timeout`].
//! * **Bounded jittered retries** — server-signalled transient errors
//!   ([`ServerError::is_retryable`]) are retried up to `max_retries`
//!   times with exponential backoff (`min(cap, base·2^(n−1))`, jittered
//!   into `[delay/2, delay]` so synchronized clients decorrelate), each
//!   retry emitting an [`ObsKind::NetRetry`] event. The final error is
//!   typed — a saturated server yields `Busy`/`Backpressure`, never a
//!   hang. One carve-out: a server-signalled `Timeout` means the
//!   operation *may still complete* server-side, so only requests whose
//!   duplicate execution is harmless (`Read`, `Metrics`, `Abort`) are
//!   re-sent; for `Open`/`Validate`/`Write`/`Commit` the typed `Timeout`
//!   surfaces to the caller, which must treat the outcome as unknown
//!   (at-least-once ambiguity) rather than assume the request was lost.
//! * **Poisoning** — an I/O error or read timeout leaves the byte stream
//!   in an unknowable position (the reply may still be in flight), so
//!   the connection is poisoned and every later call fails fast with
//!   [`ServerError::Wire`]. Transient *server* errors arrive as complete
//!   `Err` frames on a healthy stream and do not poison.
//!
//! The byte stream itself is pluggable: [`RemoteSession::connect`] dials
//! TCP ([`TcpTransport`]), while [`RemoteSession::over`] wraps any
//! [`Transport`] — the deterministic simulation harness (`ks-dst`) runs
//! this exact client over an in-memory simulated link.

use crate::transport::{TcpTransport, Transport};
use crate::wire::{self, read_frame, write_frame, Request, Response, WireMetrics, HELLO_MAGIC};
use ks_kernel::{EntityId, Value};
use ks_obs::{ObsKind, ObsSink, OpCode, Recorder, NO_TXN};
use ks_server::{Client, ServerError, TxnBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Client-side tuning: timeouts, deadlines, and the retry envelope.
#[derive(Clone)]
pub struct NetClientConfig {
    /// Bound on the TCP dial plus version negotiation.
    pub connect_timeout: Duration,
    /// Per-attempt reply deadline (transport read deadline).
    pub request_deadline: Duration,
    /// Retries after the first attempt for retryable server errors.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// **Deliberately unsafe** test hook: when set, a server-signalled
    /// [`ServerError::Timeout`] is retried even for non-idempotent
    /// requests (`Open`/`Validate`/`Write`/`Commit`), re-introducing the
    /// at-least-once double-apply bug the carve-out exists to prevent.
    /// The deterministic simulation harness flips this on to prove its
    /// oracles catch the resulting double-applied commits. Never enable
    /// it in production code.
    pub unsafe_retry_non_idempotent: bool,
    /// Recorder for [`ObsKind::NetRetry`] events.
    pub recorder: Option<Recorder>,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(10),
            max_retries: 5,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            unsafe_retry_non_idempotent: false,
            recorder: None,
        }
    }
}

/// An opaque, connection-scoped remote transaction handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteTxn(pub u64);

struct Conn<T> {
    transport: T,
    /// Set after an I/O failure mid-request: the stream position is
    /// unknowable, so no further request may be issued.
    poisoned: bool,
}

/// A connection to a [`NetServer`](crate::NetServer), usable wherever a
/// [`Client`] is expected. Generic over the byte stream; defaults to TCP.
pub struct RemoteSession<T: Transport = TcpTransport> {
    conn: Mutex<Conn<T>>,
    shards: usize,
    config: NetClientConfig,
    rng: Mutex<StdRng>,
    obs: Option<ObsSink>,
}

impl<T: Transport> std::fmt::Debug for RemoteSession<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSession")
            .field("shards", &self.shards)
            .field("poisoned", &self.conn.lock().unwrap().poisoned)
            .finish()
    }
}

/// Distinct backoff-jitter seeds across sessions in one process without
/// an entropy source: process id mixed with a connection counter.
fn jitter_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    (std::process::id() as u64) << 32 | n
}

impl RemoteSession<TcpTransport> {
    /// Dial `addr`, negotiate the protocol version, and return a ready
    /// session. Fails with [`ServerError::Wire`] on version mismatch and
    /// [`ServerError::Timeout`] if the dial or handshake exceeds
    /// `connect_timeout`.
    pub fn connect(addr: impl ToSocketAddrs, config: NetClientConfig) -> Result<Self, ServerError> {
        let wire_err = |m: String| ServerError::Wire(m);
        let addr: SocketAddr = addr
            .to_socket_addrs()
            .map_err(|e| wire_err(format!("resolving address: {e}")))?
            .next()
            .ok_or_else(|| wire_err("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)
            .map_err(|e| map_io(&e, "connect"))?;
        let _ = stream.set_nodelay(true);
        let transport = TcpTransport::new(stream).map_err(|e| wire_err(e.to_string()))?;
        Self::over(transport, config)
    }
}

impl<T: Transport> RemoteSession<T> {
    /// Run the client over an already-established byte stream: negotiate
    /// the protocol version (bounded by `connect_timeout`) and return a
    /// ready session. This is how non-TCP transports — above all the
    /// deterministic simulation link — get the full production client:
    /// framing, deadlines, retry/backoff, and poisoning all behave
    /// identically.
    pub fn over(transport: T, config: NetClientConfig) -> Result<Self, ServerError> {
        let wire_err = |m: String| ServerError::Wire(m);
        let mut conn = Conn {
            transport,
            poisoned: false,
        };
        conn.transport
            .set_read_deadline(Some(config.connect_timeout))
            .map_err(|e| wire_err(e.to_string()))?;
        // Version negotiation: Hello must be answered by HelloOk before
        // any other frame is sent (the server handshakes on a separate
        // buffer, so pipelining past Hello would lose frames).
        write_frame(
            &mut conn.transport,
            &wire::encode_request(&Request::Hello { magic: HELLO_MAGIC }),
        )
        .map_err(|e| map_io(&e, "hello"))?;
        let shards = match read_reply(&mut conn)? {
            Response::HelloOk { shards } => shards as usize,
            Response::Error { code, detail } => {
                return Err(Response::into_server_error(code, &detail))
            }
            other => return Err(wire_err(format!("expected HelloOk, got {other:?}"))),
        };
        Ok(RemoteSession {
            conn: Mutex::new(conn),
            shards,
            rng: Mutex::new(StdRng::seed_from_u64(jitter_seed())),
            obs: config.recorder.as_ref().map(|r| r.sink(u32::MAX)),
            config,
        })
    }

    /// Shard count the server reported in its HelloOk (clients co-locate
    /// a transaction's entities by `entity.0 % shards`, exactly like
    /// in-process callers).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Whether an earlier transport failure has poisoned the connection
    /// (every later call fails fast; reconnect to recover).
    pub fn is_poisoned(&self) -> bool {
        self.conn.lock().unwrap().poisoned
    }

    /// Fetch the server's metrics snapshot.
    pub fn metrics(&self) -> Result<WireMetrics, ServerError> {
        match self.call(OpCode::Stats, Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(self.desync(other)),
        }
    }

    /// Graceful goodbye: sends Shutdown, awaits Bye, closes the stream.
    pub fn close(self) -> Result<(), ServerError> {
        let mut conn = self.conn.into_inner().unwrap();
        if conn.poisoned {
            return Ok(()); // nothing orderly left to do
        }
        write_frame(
            &mut conn.transport,
            &wire::encode_request(&Request::Shutdown),
        )
        .map_err(|e| map_io(&e, "shutdown"))?;
        match read_reply(&mut conn)? {
            Response::Bye => Ok(()),
            other => Err(ServerError::Wire(format!("expected Bye, got {other:?}"))),
        }
    }

    /// One request/reply exchange, with the retry envelope around
    /// retryable server errors. Poisoned-transport errors are never
    /// retried: the failed attempt's reply could still arrive and
    /// desynchronize every later exchange.
    fn call(&self, op: OpCode, req: Request) -> Result<Response, ServerError> {
        let mut attempt: u32 = 0;
        loop {
            match self.exchange(&req) {
                // A retryable error only re-sends while the transport is
                // healthy: `Timeout` from a transport read poisons (the
                // late reply may still arrive), so it falls through typed.
                // A *server-signalled* `Timeout` arrives as a complete
                // frame and does not poison, but it leaves the outcome
                // unknown — the shard worker may still complete the
                // operation after the reply rendezvous expired — so it is
                // only retried for requests whose duplicate execution is
                // harmless; non-idempotent requests surface it typed
                // (unless the unsafe test hook disables the carve-out).
                Err(e)
                    if e.is_retryable()
                        && (duplicate_safe(&req)
                            || self.config.unsafe_retry_non_idempotent
                            || !matches!(e, ServerError::Timeout))
                        && attempt < self.config.max_retries
                        && !self.conn.lock().unwrap().poisoned =>
                {
                    attempt += 1;
                    let delay = self.backoff(attempt);
                    if let Some(obs) = &self.obs {
                        obs.emit(
                            NO_TXN,
                            ObsKind::NetRetry {
                                op,
                                attempt,
                                delay_ns: delay.as_nanos() as u64,
                            },
                        );
                    }
                    std::thread::sleep(delay);
                }
                other => return other,
            }
        }
    }

    /// Jittered exponential backoff: `min(cap, base·2^(n−1))`, then a
    /// uniform draw from `[delay/2, delay]`.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.max(Duration::from_micros(1));
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(20));
        let delay = exp.min(self.config.backoff_cap.max(base));
        let ns = delay.as_nanos() as u64;
        let jittered = self.rng.lock().unwrap().random_range(ns / 2..=ns);
        Duration::from_nanos(jittered)
    }

    /// Send one frame and read its reply. Server-signalled errors come
    /// back as `Err` without touching `poisoned`; transport failures
    /// poison the connection.
    fn exchange(&self, req: &Request) -> Result<Response, ServerError> {
        let mut conn = self.conn.lock().unwrap();
        if conn.poisoned {
            return Err(ServerError::Wire(
                "connection poisoned by an earlier transport failure; reconnect".into(),
            ));
        }
        let payload = wire::encode_request(req);
        if payload.len() > wire::MAX_FRAME {
            // Refused before any bytes hit the stream: it is still in
            // sync, so this is a typed per-request error, not poison (the
            // server would reject the frame at read time and drop the
            // connection).
            return Err(ServerError::Wire(format!(
                "encoded request of {} bytes exceeds MAX_FRAME ({})",
                payload.len(),
                wire::MAX_FRAME
            )));
        }
        let _ = conn
            .transport
            .set_read_deadline(Some(self.config.request_deadline));
        if let Err(e) = write_frame(&mut conn.transport, &payload) {
            conn.poisoned = true;
            return Err(map_io(&e, "send"));
        }
        match read_reply(&mut conn) {
            Ok(Response::Error { code, detail }) => Err(Response::into_server_error(code, &detail)),
            Ok(resp) => Ok(resp),
            Err(e) => {
                conn.poisoned = true;
                Err(e)
            }
        }
    }

    fn desync(&self, got: Response) -> ServerError {
        self.conn.lock().unwrap().poisoned = true;
        ServerError::Wire(format!("response type desync: unexpected {got:?}"))
    }

    fn unit(&self, op: OpCode, req: Request) -> Result<(), ServerError> {
        match self.call(op, req)? {
            Response::Done => Ok(()),
            other => Err(self.desync(other)),
        }
    }
}

/// Read and decode one reply frame. EOF and timeouts are transport
/// failures (the caller poisons); a decoded `Error` frame is *not* — it
/// is a healthy reply.
fn read_reply<T: Transport>(conn: &mut Conn<T>) -> Result<Response, ServerError> {
    match read_frame(&mut conn.transport) {
        Ok(Some(payload)) => wire::decode_response(&payload).map_err(ServerError::from),
        Ok(None) => Err(ServerError::Wire("server closed the connection".into())),
        Err(e) => Err(map_io(&e, "receive")),
    }
}

/// Requests whose duplicate execution is harmless, and which may
/// therefore be re-sent after a *server-signalled* [`ServerError::Timeout`]
/// (the reply rendezvous expired while the shard worker may still
/// complete the operation). Re-sending anything else risks applying it
/// twice — a retried `Commit` could re-submit a commit that already
/// applied and report `Rejected` for a transaction that in fact
/// committed, and a retried `Open` could leave an orphan transaction.
/// `Busy`/`Backpressure` carry a known did-not-happen outcome and stay
/// retryable for every request.
fn duplicate_safe(req: &Request) -> bool {
    matches!(
        req,
        Request::Read { .. } | Request::Metrics | Request::Abort { .. }
    )
}

fn map_io(e: &std::io::Error, what: &str) -> ServerError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ServerError::Timeout,
        _ => ServerError::Wire(format!("{what}: {e}")),
    }
}

impl<T: Transport> Client for RemoteSession<T> {
    type Handle = RemoteTxn;

    fn open(&self, txn: TxnBuilder<RemoteTxn>) -> Result<RemoteTxn, ServerError> {
        let (spec, after, before, strategy) = txn.into_parts();
        let req = Request::Open {
            spec,
            after: after.into_iter().map(|t| t.0).collect(),
            before: before.into_iter().map(|t| t.0).collect(),
            strategy,
        };
        match self.call(OpCode::Define, req)? {
            Response::Opened { txn } => Ok(RemoteTxn(txn)),
            other => Err(self.desync(other)),
        }
    }

    fn validate(&self, txn: RemoteTxn) -> Result<(), ServerError> {
        self.unit(OpCode::Validate, Request::Validate { txn: txn.0 })
    }

    fn read(&self, txn: RemoteTxn, entity: EntityId) -> Result<Value, ServerError> {
        match self.call(OpCode::Read, Request::Read { txn: txn.0, entity })? {
            Response::Value { value } => Ok(value),
            other => Err(self.desync(other)),
        }
    }

    fn write(&self, txn: RemoteTxn, entity: EntityId, value: Value) -> Result<(), ServerError> {
        self.unit(
            OpCode::Write,
            Request::Write {
                txn: txn.0,
                entity,
                value,
            },
        )
    }

    fn commit(&self, txn: RemoteTxn) -> Result<(), ServerError> {
        self.unit(OpCode::Commit, Request::Commit { txn: txn.0 })
    }

    fn abort(&self, txn: RemoteTxn) -> Result<(), ServerError> {
        self.unit(OpCode::Abort, Request::Abort { txn: txn.0 })
    }
}
