//! `RemoteSession`: the networked counterpart of an in-process
//! [`Session`](ks_server::Session).
//!
//! It implements the same [`Client`] contract over any [`Transport`], so
//! workloads, tests, and benchmarks written against the trait run
//! unchanged on either transport. The differences live entirely in the
//! failure model:
//!
//! * **Connect timeouts** — [`RemoteSession::connect`] bounds the TCP
//!   dial and the Hello/HelloOk version negotiation.
//! * **Per-request deadlines** — every request gets a reply deadline; a
//!   reply that does not arrive in time surfaces as
//!   [`ServerError::Timeout`].
//! * **Bounded jittered retries** — server-signalled transient errors
//!   ([`ServerError::is_retryable`]) are retried up to `max_retries`
//!   times with the shared [`ks_server::backoff`] schedule
//!   (`min(cap, base·2^(n−1))`, jittered into `[delay/2, delay]` so
//!   synchronized clients decorrelate), each retry emitting an
//!   [`ObsKind::NetRetry`] event. The final error is typed — a saturated
//!   server yields `Busy`/`Backpressure`, never a hang. One carve-out: a
//!   server-signalled `Timeout` means the operation *may still complete*
//!   server-side, so only requests whose duplicate execution is harmless
//!   (`Read`, `Metrics`, `Abort`) are re-sent; for
//!   `Open`/`Validate`/`Write`/`Commit` the typed `Timeout` surfaces to
//!   the caller, which must treat the outcome as unknown (at-least-once
//!   ambiguity) rather than assume the request was lost.
//! * **Poisoning** — an I/O error or reply-deadline expiry leaves the
//!   request/reply bookkeeping in an unknowable state, so the connection
//!   is poisoned and every later call fails fast with
//!   [`ServerError::Wire`]. Transient *server* errors arrive as complete
//!   `Err` frames on a healthy stream and do not poison.
//!
//! # Pipelining
//!
//! Since protocol version 2 every frame carries a correlation id, and a
//! session keeps multiple requests in flight on one connection. The
//! transport is split ([`Transport::split`]) into a shared send half
//! (brief mutex per frame, reused encode scratch buffer) and a receive
//! half driven by an *elected reader*: whichever caller is waiting for a
//! reply and finds no reader active reads the next frame, routes it by
//! correlation id (stashing replies that belong to other waiters,
//! dropping replies nobody is waiting for — which is what makes a
//! duplicated or abandoned reply harmless), and hands the role off. No
//! background thread exists, so the same code runs single-threaded over
//! the deterministic simulation link. [`Client::run_batch`] exploits the
//! pipeline by packing a read/write burst into `Batch` frames and
//! sending up to the transaction's [`TxnBuilder::pipeline_depth`] of
//! them back-to-back before collecting replies in order.
//!
//! The byte stream itself is pluggable: [`RemoteSession::connect`] dials
//! TCP ([`TcpTransport`]), while [`RemoteSession::over`] wraps any
//! [`Transport`] — the deterministic simulation harness (`ks-dst`) runs
//! this exact client over an in-memory simulated link.

use crate::transport::{TcpTransport, Transport, TransportRx};
use crate::wire::{self, read_frame, write_frame, Request, Response, WireMetrics, HELLO_MAGIC};
use ks_kernel::{EntityId, Value};
use ks_obs::{
    derive_trace_id, trace_sampled, ObsEvent, ObsKind, ObsSink, OpCode, Recorder, SpanHop,
    TelemetryDelta, NO_TXN,
};
use ks_server::{backoff, Backend, BatchOp, BatchReply, Client, ServerError, TxnBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Client-side tuning: timeouts, deadlines, and the retry envelope.
#[derive(Clone)]
pub struct NetClientConfig {
    /// Bound on the TCP dial plus version negotiation.
    pub connect_timeout: Duration,
    /// Per-request reply deadline.
    pub request_deadline: Duration,
    /// Retries after the first attempt for retryable server errors.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// **Deliberately unsafe** test hook: when set, a server-signalled
    /// [`ServerError::Timeout`] is retried even for non-idempotent
    /// requests (`Open`/`Validate`/`Write`/`Commit`), re-introducing the
    /// at-least-once double-apply bug the carve-out exists to prevent.
    /// The deterministic simulation harness flips this on to prove its
    /// oracles catch the resulting double-applied commits. Never enable
    /// it in production code.
    pub unsafe_retry_non_idempotent: bool,
    /// Recorder for [`ObsKind::NetRetry`] / [`ObsKind::NetBatch`] events
    /// and client-side [`ObsKind::SpanStart`]/[`ObsKind::SpanEnd`] trace
    /// breadcrumbs.
    pub recorder: Option<Recorder>,
    /// Fraction of requests (0.0..=1.0) that originate a distributed
    /// trace. A sampled request derives a trace id from a per-session
    /// salt and its correlation id ([`derive_trace_id`]), emits a
    /// `Request`-hop span around the
    /// whole send→reply exchange, and carries the id in the wire header
    /// so every server-side hop (connection handler, shard queue,
    /// execute, certifier, WAL) records spans under the same trace. Each
    /// retry is a fresh attempt with a fresh correlation id, so it gets
    /// its own trace. Default 0.0 (tracing off).
    pub trace_sample: f64,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_deadline: Duration::from_secs(10),
            max_retries: 5,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            unsafe_retry_non_idempotent: false,
            recorder: None,
            trace_sample: 0.0,
        }
    }
}

/// An opaque, connection-scoped remote transaction handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteTxn(pub u64);

/// The shared send half: the transport's Tx plus a reused encode
/// buffer, so the frame hot path allocates nothing.
struct TxHalf<W> {
    writer: W,
    scratch: Vec<u8>,
}

/// Demultiplexer bookkeeping, shared by all callers of one session.
struct MuxState {
    /// Correlation ids with a caller waiting (or about to wait).
    pending: BTreeSet<u64>,
    /// Replies read off the wire for a pending id other than the
    /// reader's own, parked until their waiter claims them.
    arrived: BTreeMap<u64, Response>,
    /// Whether some caller currently holds the reader role (is blocked
    /// in `read` on the Rx half).
    reader_active: bool,
    /// Set after a transport failure: the reason every later call fails
    /// fast with. Server-signalled `Err` frames never set this.
    poisoned: Option<String>,
}

/// A connection to a [`NetServer`](crate::NetServer), usable wherever a
/// [`Client`] is expected. Generic over the byte stream; defaults to
/// TCP.
pub struct RemoteSession<T: Transport = TcpTransport> {
    tx: Mutex<TxHalf<T::Tx>>,
    rx: Mutex<T::Rx>,
    mux: Mutex<MuxState>,
    cv: Condvar,
    next_corr: AtomicU64,
    /// Pipeline-depth hints per open wire transaction id (declared at
    /// [`TxnBuilder::pipeline_depth`], dropped on terminal outcomes).
    depths: Mutex<HashMap<u64, usize>>,
    shards: usize,
    backend: Backend,
    config: NetClientConfig,
    rng: Mutex<StdRng>,
    obs: Option<ObsSink>,
    /// Per-session salt mixed into trace-id derivation: correlation ids
    /// are connection-scoped counters, so unsalted ids would collide
    /// across sessions and corrupt cross-session trace stitching.
    trace_salt: u64,
}

impl<T: Transport> std::fmt::Debug for RemoteSession<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSession")
            .field("shards", &self.shards)
            .field("poisoned", &self.is_poisoned())
            .finish()
    }
}

/// Distinct backoff-jitter seeds across sessions in one process without
/// an entropy source: process id mixed with a connection counter.
fn jitter_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    (std::process::id() as u64) << 32 | n
}

impl RemoteSession<TcpTransport> {
    /// Dial `addr`, negotiate the protocol version, and return a ready
    /// session. Fails with [`ServerError::Wire`] on version mismatch and
    /// [`ServerError::Timeout`] if the dial or handshake exceeds
    /// `connect_timeout`.
    pub fn connect(addr: impl ToSocketAddrs, config: NetClientConfig) -> Result<Self, ServerError> {
        let addr: SocketAddr = addr
            .to_socket_addrs()
            .map_err(|e| ServerError::Wire(format!("resolving address: {e}")))?
            .next()
            .ok_or_else(|| ServerError::Wire("address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)
            .map_err(|e| map_io(&e, "connect"))?;
        let _ = stream.set_nodelay(true);
        let transport = TcpTransport::new(stream).map_err(|e| ServerError::Wire(e.to_string()))?;
        Self::over(transport, config)
    }
}

impl<T: Transport> RemoteSession<T> {
    /// Run the client over an already-established byte stream: negotiate
    /// the protocol version (bounded by `connect_timeout`) and return a
    /// ready session. This is how non-TCP transports — above all the
    /// deterministic simulation link — get the full production client:
    /// framing, correlation, deadlines, retry/backoff, and poisoning all
    /// behave identically.
    pub fn over(transport: T, config: NetClientConfig) -> Result<Self, ServerError> {
        let (mut rx, mut tx) = transport.split();
        rx.set_read_deadline(Some(config.connect_timeout))
            .map_err(|e| ServerError::Wire(e.to_string()))?;
        // Version negotiation happens serially: Hello must be answered
        // by HelloOk before any other frame is sent. Correlation id 0 is
        // reserved for it; real requests start at 1.
        write_frame(
            &mut tx,
            &wire::encode_request(0, 0, &Request::Hello { magic: HELLO_MAGIC }),
        )
        .map_err(|e| map_io(&e, "hello"))?;
        let (shards, backend) = match read_one(&mut rx)? {
            (_, Response::HelloOk { shards, backend }) => (shards as usize, backend),
            (_, Response::Error { code, detail }) => {
                return Err(Response::into_server_error(code, &detail))
            }
            (_, other) => {
                return Err(ServerError::Wire(format!(
                    "expected HelloOk, got {other:?}"
                )))
            }
        };
        Ok(RemoteSession {
            tx: Mutex::new(TxHalf {
                writer: tx,
                scratch: Vec::with_capacity(256),
            }),
            rx: Mutex::new(rx),
            mux: Mutex::new(MuxState {
                pending: BTreeSet::new(),
                arrived: BTreeMap::new(),
                reader_active: false,
                poisoned: None,
            }),
            cv: Condvar::new(),
            next_corr: AtomicU64::new(1),
            depths: Mutex::new(HashMap::new()),
            shards,
            backend,
            rng: Mutex::new(StdRng::seed_from_u64(jitter_seed())),
            obs: config.recorder.as_ref().map(|r| r.sink(u32::MAX)),
            trace_salt: derive_trace_id(jitter_seed()),
            config,
        })
    }

    /// Shard count the server reported in its HelloOk (clients co-locate
    /// a transaction's entities by `entity.0 % shards`, exactly like
    /// in-process callers).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The certifier backend the server advertised in its HelloOk.
    /// Workloads written for one backend's semantics check this (or pin
    /// via [`TxnBuilder::backend`]) instead of discovering mid-run.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Whether an earlier transport failure has poisoned the connection
    /// (every later call fails fast; reconnect to recover).
    pub fn is_poisoned(&self) -> bool {
        self.mux.lock().unwrap().poisoned.is_some()
    }

    /// Fetch the server's metrics snapshot.
    pub fn metrics(&self) -> Result<WireMetrics, ServerError> {
        match self.call(OpCode::Stats, Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(self.desync(other)),
        }
    }

    /// Pull the server's incremental telemetry: every closed 1-second
    /// window with sequence ≥ `since`, plus the cursor to resume from.
    /// Polling this in a loop reconstructs the full time series —
    /// p50/p99/p999, throughput, abort rate, queue depth, WAL flush
    /// groups — and is sufficient on its own to evaluate an
    /// [`SloSpec`](ks_obs::SloSpec) client-side.
    pub fn telemetry(&self, since: u64) -> Result<TelemetryDelta, ServerError> {
        match self.call(OpCode::Stats, Request::Telemetry { since })? {
            Response::Telemetry { delta, .. } => Ok(delta),
            other => Err(self.desync(other)),
        }
    }

    /// Pull up to `max` span events from the server's trace-export
    /// buffer starting at absolute cursor `since`. Returns the next
    /// cursor (resume from it; a gap means the buffer wrapped past a
    /// slow poller) and the events, ready for
    /// [`stitch_traces`](ks_obs::stitch_traces).
    pub fn trace_export(&self, since: u64, max: u32) -> Result<(u64, Vec<ObsEvent>), ServerError> {
        match self.call(OpCode::Stats, Request::TraceExport { since, max })? {
            Response::TraceExport { next, events } => Ok((next, events)),
            other => Err(self.desync(other)),
        }
    }

    /// Graceful goodbye: sends Shutdown, awaits Bye, closes the stream.
    pub fn close(self) -> Result<(), ServerError> {
        if self.is_poisoned() {
            return Ok(()); // nothing orderly left to do
        }
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let mut tx = self.tx.into_inner().unwrap();
        let mut rx = self.rx.into_inner().unwrap();
        wire::encode_request_into(&mut tx.scratch, corr, 0, &Request::Shutdown);
        write_frame(&mut tx.writer, &tx.scratch).map_err(|e| map_io(&e, "shutdown"))?;
        let _ = rx.set_read_deadline(Some(self.config.request_deadline));
        // Late replies for abandoned correlation ids may still be queued
        // ahead of the Bye; skip a bounded number of them.
        for _ in 0..64 {
            match read_one(&mut rx)? {
                (c, Response::Bye) if c == corr => return Ok(()),
                (c, other) if c == corr => {
                    return Err(ServerError::Wire(format!("expected Bye, got {other:?}")))
                }
                _ => continue,
            }
        }
        Err(ServerError::Wire("no Bye within 64 frames".into()))
    }

    /// One request/reply exchange, with the retry envelope around
    /// retryable server errors. Poisoned-transport errors are never
    /// retried: the failed attempt left the connection unusable.
    fn call(&self, op: OpCode, req: Request) -> Result<Response, ServerError> {
        let mut attempt: u32 = 0;
        loop {
            match self.exchange(op, &req) {
                // A retryable error only re-sends while the transport is
                // healthy: `Timeout` from an expired reply deadline
                // poisons, so it falls through typed. A *server-signalled*
                // `Timeout` arrives as a complete frame and does not
                // poison, but it leaves the outcome unknown — the shard
                // worker may still complete the operation after the reply
                // rendezvous expired — so it is only retried for requests
                // whose duplicate execution is harmless; non-idempotent
                // requests surface it typed (unless the unsafe test hook
                // disables the carve-out).
                Err(e)
                    if e.is_retryable()
                        && (duplicate_safe(&req)
                            || self.config.unsafe_retry_non_idempotent
                            || !matches!(e, ServerError::Timeout))
                        && attempt < self.config.max_retries
                        && !self.is_poisoned() =>
                {
                    attempt += 1;
                    let delay = {
                        let mut rng = self.rng.lock().unwrap();
                        backoff::jittered_delay(
                            &mut rng,
                            self.config.backoff_base,
                            self.config.backoff_cap,
                            attempt,
                        )
                    };
                    if let Some(obs) = &self.obs {
                        obs.emit(
                            NO_TXN,
                            ObsKind::NetRetry {
                                op,
                                attempt,
                                delay_ns: delay.as_nanos() as u64,
                            },
                        );
                    }
                    std::thread::sleep(delay);
                }
                other => return other,
            }
        }
    }

    /// Send one frame and await its correlated reply, wrapped in the
    /// `Request` trace hop when this attempt is sampled. Server-signalled
    /// errors come back as `Err` without poisoning; transport failures
    /// poison the connection.
    fn exchange(&self, op: OpCode, req: &Request) -> Result<Response, ServerError> {
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        // The observability plane never traces itself: a traced
        // telemetry or trace-export pull would append its own spans to
        // the buffer it is draining, and a drain-until-empty poller
        // would chase its own tail forever.
        let trace = match req {
            Request::Telemetry { .. } | Request::TraceExport { .. } => 0,
            _ => self.pick_trace(corr),
        };
        if trace != 0 {
            if let Some(obs) = &self.obs {
                obs.emit(
                    NO_TXN,
                    ObsKind::SpanStart {
                        hop: SpanHop::Request,
                        op,
                        trace,
                    },
                );
            }
        }
        let result = self
            .send_with(corr, trace, req)
            .and_then(|()| self.await_reply(corr));
        if trace != 0 {
            // "ok" is the client's view: a deadline expiry or transport
            // failure closes the span unsuccessfully even though a
            // server-side span under the same trace may record success.
            let ok = matches!(&result, Ok(resp) if !matches!(resp, Response::Error { .. }));
            if let Some(obs) = &self.obs {
                obs.emit(
                    NO_TXN,
                    ObsKind::SpanEnd {
                        hop: SpanHop::Request,
                        ok,
                        trace,
                    },
                );
            }
        }
        match result? {
            Response::Error { code, detail } => Err(Response::into_server_error(code, &detail)),
            resp => Ok(resp),
        }
    }

    /// The trace id this attempt carries on the wire: derived from the
    /// session salt and the attempt's correlation id when sampled, zero
    /// (untraced) otherwise.
    fn pick_trace(&self, corr: u64) -> u64 {
        if self.config.trace_sample <= 0.0 {
            return 0;
        }
        let trace = derive_trace_id(self.trace_salt ^ corr);
        if trace_sampled(trace, self.config.trace_sample) {
            trace
        } else {
            0
        }
    }

    /// Allocate a correlation id, derive this attempt's trace id, and
    /// send `req`. Returns the id to await. Used by paths that pipeline
    /// frames without a per-exchange `Request` span (`run_batch`).
    fn send_request(&self, req: &Request) -> Result<u64, ServerError> {
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        self.send_with(corr, self.pick_trace(corr), req)?;
        Ok(corr)
    }

    /// Encode `req` into the shared scratch buffer and write it as one
    /// frame, registering its correlation id with the demultiplexer
    /// *before* any byte hits the wire (so a fast reply can never race
    /// the registration and be dropped as unknown).
    fn send_with(&self, corr: u64, trace: u64, req: &Request) -> Result<(), ServerError> {
        let mut tx = self.tx.lock().unwrap();
        let TxHalf { writer, scratch } = &mut *tx;
        wire::encode_request_into(scratch, corr, trace, req);
        if scratch.len() > wire::MAX_FRAME {
            // Refused before any bytes hit the stream, which is therefore
            // still in sync: a typed per-request error, not poison.
            return Err(ServerError::Wire(format!(
                "encoded request of {} bytes exceeds MAX_FRAME ({})",
                scratch.len(),
                wire::MAX_FRAME
            )));
        }
        {
            let mut mux = self.mux.lock().unwrap();
            if let Some(reason) = &mux.poisoned {
                return Err(ServerError::Wire(reason.clone()));
            }
            mux.pending.insert(corr);
        }
        if let Err(e) = write_frame(writer, scratch) {
            let err = map_io(&e, "send");
            self.poison(corr, format!("send failed: {e}"));
            return Err(err);
        }
        Ok(())
    }

    /// Wait for the reply correlated with `corr`, cooperating on the
    /// reader role: claim the reply if it already arrived, otherwise
    /// either become the reader (read one frame off the Rx half, route
    /// it, hand the role back) or wait to be notified. Deadline expiry —
    /// ours or the transport's — poisons the connection.
    fn await_reply(&self, corr: u64) -> Result<Response, ServerError> {
        let start = Instant::now();
        let deadline = self.config.request_deadline;
        loop {
            let remaining = {
                let mut mux = self.mux.lock().unwrap();
                if let Some(resp) = mux.arrived.remove(&corr) {
                    mux.pending.remove(&corr);
                    return Ok(resp);
                }
                if let Some(reason) = &mux.poisoned {
                    let reason = reason.clone();
                    mux.pending.remove(&corr);
                    return Err(ServerError::Wire(reason));
                }
                let Some(remaining) = deadline.checked_sub(start.elapsed()) else {
                    mux.pending.remove(&corr);
                    mux.poisoned = Some(poison_reason("reply deadline expired"));
                    drop(mux);
                    self.cv.notify_all();
                    return Err(ServerError::Timeout);
                };
                if mux.reader_active {
                    // Someone else is blocked in `read`; they will route
                    // our reply (or poison) and notify.
                    let _ = self.cv.wait_timeout(mux, remaining).unwrap();
                    continue;
                }
                mux.reader_active = true;
                remaining
            };
            // We are the elected reader. Read one frame without holding
            // the mux lock (so parked waiters can time out), then route.
            let read = {
                let mut rx = self.rx.lock().unwrap();
                let _ = rx.set_read_deadline(Some(remaining));
                read_one(&mut *rx)
            };
            let mut mux = self.mux.lock().unwrap();
            mux.reader_active = false;
            match read {
                Ok((rcorr, resp)) => {
                    if rcorr == corr {
                        mux.pending.remove(&corr);
                        drop(mux);
                        self.cv.notify_all();
                        return Ok(resp);
                    }
                    if mux.pending.contains(&rcorr) {
                        mux.arrived.insert(rcorr, resp);
                    }
                    // else: a reply nobody is waiting for (abandoned or
                    // duplicated) — dropped; the stream stays sound.
                    drop(mux);
                    self.cv.notify_all();
                }
                Err(e) => {
                    mux.pending.remove(&corr);
                    mux.poisoned = Some(poison_reason(&e.to_string()));
                    drop(mux);
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Drop interest in `corr`; its reply, if it ever comes, is
    /// discarded by the demultiplexer.
    fn abandon(&self, corr: u64) {
        let mut mux = self.mux.lock().unwrap();
        mux.pending.remove(&corr);
        mux.arrived.remove(&corr);
    }

    /// Poison after a transport failure attributable to `corr`.
    fn poison(&self, corr: u64, why: String) {
        let mut mux = self.mux.lock().unwrap();
        mux.pending.remove(&corr);
        mux.poisoned = Some(poison_reason(&why));
        drop(mux);
        self.cv.notify_all();
    }

    fn desync(&self, got: Response) -> ServerError {
        let mut mux = self.mux.lock().unwrap();
        mux.poisoned = Some(poison_reason("response type desync"));
        drop(mux);
        self.cv.notify_all();
        ServerError::Wire(format!("response type desync: unexpected {got:?}"))
    }

    fn unit(&self, op: OpCode, req: Request) -> Result<(), ServerError> {
        match self.call(op, req)? {
            Response::Done => Ok(()),
            other => Err(self.desync(other)),
        }
    }

    /// The transaction's pipeline-depth hint (≥ 1).
    fn depth_hint(&self, txn: RemoteTxn) -> usize {
        self.depths
            .lock()
            .unwrap()
            .get(&txn.0)
            .copied()
            .unwrap_or(1)
            .max(1)
    }

    fn forget_depth_if_terminal<V>(&self, txn: RemoteTxn, result: &Result<V, ServerError>) {
        let transient = matches!(result, Err(e) if e.is_retryable());
        if !transient {
            self.depths.lock().unwrap().remove(&txn.0);
        }
    }
}

fn poison_reason(why: &str) -> String {
    format!("connection poisoned by an earlier transport failure ({why}); reconnect")
}

/// Read and decode one reply frame into `(corr, response)`. EOF and
/// timeouts are transport failures (the caller poisons); a decoded
/// `Error` frame is *not* — it is a healthy reply.
fn read_one<R: TransportRx>(rx: &mut R) -> Result<(u64, Response), ServerError> {
    match read_frame(rx) {
        // The echoed trace id is dropped here: the demultiplexer routes
        // by correlation id alone, and the client's span for the attempt
        // closes in `exchange` regardless of what the reply echoes.
        Ok(Some(payload)) => wire::decode_response(&payload)
            .map(|(corr, _trace, resp)| (corr, resp))
            .map_err(ServerError::from),
        Ok(None) => Err(ServerError::Wire("server closed the connection".into())),
        Err(e) => Err(map_io(&e, "receive")),
    }
}

/// Requests whose duplicate execution is harmless, and which may
/// therefore be re-sent after a *server-signalled*
/// [`ServerError::Timeout`] (the reply rendezvous expired while the
/// shard worker may still complete the operation). Re-sending anything
/// else risks applying it twice — a retried `Commit` could re-submit a
/// commit that already applied and report `Rejected` for a transaction
/// that in fact committed, and a retried `Open` could leave an orphan
/// transaction. `Busy`/`Backpressure` carry a known did-not-happen
/// outcome and stay retryable for every request.
fn duplicate_safe(req: &Request) -> bool {
    matches!(
        req,
        Request::Read { .. }
            | Request::Metrics
            | Request::Abort { .. }
            | Request::Telemetry { .. }
            | Request::TraceExport { .. }
    )
}

fn map_io(e: &std::io::Error, what: &str) -> ServerError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ServerError::Timeout,
        _ => ServerError::Wire(format!("{what}: {e}")),
    }
}

impl<T: Transport> Client for RemoteSession<T> {
    type Handle = RemoteTxn;

    fn open(&self, txn: TxnBuilder<RemoteTxn>) -> Result<RemoteTxn, ServerError> {
        let depth = txn.pipeline_depth_hint();
        let (spec, after, before, strategy, backend) = txn.into_parts();
        let req = Request::Open {
            spec,
            after: after.into_iter().map(|t| t.0).collect(),
            before: before.into_iter().map(|t| t.0).collect(),
            strategy,
            backend,
        };
        match self.call(OpCode::Define, req)? {
            Response::Opened { txn } => {
                if depth > 1 {
                    self.depths.lock().unwrap().insert(txn, depth);
                }
                Ok(RemoteTxn(txn))
            }
            other => Err(self.desync(other)),
        }
    }

    fn validate(&self, txn: RemoteTxn) -> Result<(), ServerError> {
        self.unit(OpCode::Validate, Request::Validate { txn: txn.0 })
    }

    fn read(&self, txn: RemoteTxn, entity: EntityId) -> Result<Value, ServerError> {
        match self.call(OpCode::Read, Request::Read { txn: txn.0, entity })? {
            Response::Value { value } => Ok(value),
            other => Err(self.desync(other)),
        }
    }

    fn write(&self, txn: RemoteTxn, entity: EntityId, value: Value) -> Result<(), ServerError> {
        self.unit(
            OpCode::Write,
            Request::Write {
                txn: txn.0,
                entity,
                value,
            },
        )
    }

    fn commit(&self, txn: RemoteTxn) -> Result<(), ServerError> {
        let result = self.unit(OpCode::Commit, Request::Commit { txn: txn.0 });
        self.forget_depth_if_terminal(txn, &result);
        result
    }

    fn abort(&self, txn: RemoteTxn) -> Result<(), ServerError> {
        let result = self.unit(OpCode::Abort, Request::Abort { txn: txn.0 });
        self.forget_depth_if_terminal(txn, &result);
        result
    }

    /// Pack the burst into `Batch` wire frames — up to the transaction's
    /// [`TxnBuilder::pipeline_depth`] of them in flight at once — so N
    /// ops cost about ⌈N/depth⌉ round trips instead of N. Frames are
    /// sent back-to-back, then replies are collected in order (the
    /// demultiplexer handles any interleaving). Batch frames are not
    /// retried at the frame level: per-op transient errors (`Busy`)
    /// surface in the inner results for the caller's retry policy, and a
    /// transport failure poisons as usual.
    fn run_batch(
        &self,
        txn: RemoteTxn,
        ops: &[BatchOp],
    ) -> Result<Vec<Result<BatchReply, ServerError>>, ServerError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let depth = self.depth_hint(txn);
        let frames = depth.min(ops.len());
        let chunk = ops.len().div_ceil(frames).min(wire::MAX_BATCH_OPS);
        let mut corrs = Vec::with_capacity(frames);
        let mut failed = None;
        for chunk_ops in ops.chunks(chunk) {
            if let Some(obs) = &self.obs {
                obs.emit(
                    txn.0 as u32,
                    ObsKind::NetBatch {
                        ops: chunk_ops.len() as u32,
                    },
                );
            }
            let req = Request::Batch {
                ops: chunk_ops.iter().map(|&op| (txn.0, op)).collect(),
            };
            match self.send_request(&req) {
                Ok(corr) => corrs.push(corr),
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let mut results = Vec::with_capacity(ops.len());
        for corr in corrs {
            if failed.is_some() {
                // A reply may still arrive for an already-sent frame;
                // drop interest so the demultiplexer discards it.
                self.abandon(corr);
                continue;
            }
            match self.await_reply(corr) {
                Ok(Response::Batch { results: rs }) => results.extend(rs.into_iter().map(|r| {
                    r.map_err(|(code, detail)| Response::into_server_error(code, &detail))
                })),
                Ok(Response::Error { code, detail }) => {
                    failed = Some(Response::into_server_error(code, &detail))
                }
                Ok(other) => failed = Some(self.desync(other)),
                Err(e) => failed = Some(e),
            }
        }
        match failed {
            Some(e) => Err(e),
            None => Ok(results),
        }
    }
}
