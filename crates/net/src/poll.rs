//! Readiness polling for the event-loop server core.
//!
//! The repo vendors no I/O crates, so this is a deliberately small
//! epoll(7) wrapper — [`Poller`], [`Events`], [`Waker`] — declared
//! straight against the C library (Linux-only, like the rest of the
//! serving stack's performance tier). Alongside it live the two other
//! pieces of event-loop plumbing the server and the connection-scale
//! test tier share: [`BufferPool`], the bounded free list that keeps
//! frame-decode allocations off the per-connection cost sheet, and the
//! `/proc` probes ([`fd_count`], [`rss_bytes`], [`raise_nofile_limit`])
//! the `exp_conn_scale` gates are measured with.
//!
//! Design notes:
//!
//! * **Level-triggered.** Interest is re-reported until drained, so a
//!   connection whose frames outpace one executor slice is simply seen
//!   again next tick — no edge-trigger re-arm bookkeeping, and pausing a
//!   connection (backpressure) is just dropping `EPOLLIN` from its mask.
//! * **One poller per I/O thread.** `epoll_ctl` is thread-safe, but this
//!   codebase never needs it: every registration mutation happens on the
//!   thread that owns the poller, and cross-thread signalling goes
//!   through the [`Waker`] (an `eventfd` registered like any other fd).

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_uint = u32;

// epoll event mask bits and control ops (linux/eventpoll.h).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;
const RLIMIT_NOFILE: c_int = 7;

/// `struct epoll_event`; packed on x86-64, which is why field reads
/// below copy the value out instead of taking references.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// What a registration wants to hear about. Hangup and error conditions
/// are always delivered regardless of the mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd has bytes to read (or the peer closed).
    pub readable: bool,
    /// Report when the fd can accept writes again.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Bytes are readable (or the peer half-closed: read to find out).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// Error or hangup condition; the owner should read until EOF/error
    /// and close.
    pub failed: bool,
}

/// Reusable readiness-event buffer for [`Poller::wait`].
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `cap` events per wait.
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    /// The events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|ev| {
            let (bits, data) = (ev.events, ev.data);
            Event {
                token: data,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                failed: bits & (EPOLLERR | EPOLLHUP) != 0,
            }
        })
    }
}

/// An epoll instance: register fds with a token and an [`Interest`],
/// wait for readiness.
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.mask(),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(drop)
    }

    /// Start watching `fd`; events carry `token` back.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change an existing registration's interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stop watching `fd`. Safe to call for an fd the kernel already
    /// dropped from the set (the error is surfaced, not panicked).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
    }

    /// Block until readiness (or `timeout`), filling `events`. Returns
    /// the number of events delivered; 0 means the timeout elapsed.
    /// `None` blocks indefinitely. Spurious `EINTR` wakes surface as 0.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a 100µs timeout doesn't spin at 0ms.
            Some(d) => d.as_millis().clamp(1, c_int::MAX as u128) as c_int,
        };
        events.len = 0;
        let n = unsafe {
            epoll_wait(
                self.epfd,
                events.buf.as_mut_ptr(),
                events.buf.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// A cross-thread wakeup for a [`Poller`]: an `eventfd` registered like
/// any other fd. [`Waker::wake`] makes the owning thread's `wait` return
/// immediately; the owner calls [`Waker::drain`] to reset it.
pub struct Waker {
    efd: RawFd,
}

impl Waker {
    /// Create the eventfd and register it with `poller` under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let efd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        poller.register(efd, token, Interest::READ)?;
        Ok(Waker { efd })
    }

    /// Wake the owning poller. Cheap and idempotent: concurrent wakes
    /// coalesce into one readable event.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.efd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Reset after a wake so the (level-triggered) poller goes quiet.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.efd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { close(self.efd) };
    }
}

/// A bounded free list of frame-decode buffers.
///
/// The event loop borrows a buffer when a frame's length prefix
/// completes and the executor returns it once the request is handled,
/// so steady-state decode allocation is bounded by the number of frames
/// *concurrently* in flight — not by the connection count. An idle
/// connection holds no buffer at all, which is what keeps 10k+ mostly
/// idle connections cheap. `cap` bounds the free list: returns beyond
/// it free the allocation instead of hoarding it.
pub struct BufferPool {
    free: std::sync::Mutex<Vec<Vec<u8>>>,
    cap: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

/// Counters describing a [`BufferPool`]'s behaviour so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Borrows served from the free list.
    pub hits: u64,
    /// Borrows that had to allocate fresh.
    pub misses: u64,
    /// Buffers currently parked on the free list.
    pub free: usize,
}

impl BufferPool {
    /// A pool whose free list retains at most `cap` buffers.
    pub fn new(cap: usize) -> BufferPool {
        BufferPool {
            free: std::sync::Mutex::new(Vec::new()),
            cap,
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Borrow a buffer of exactly `len` bytes (contents unspecified —
    /// callers overwrite every byte before trusting it).
    pub fn get(&self, len: usize) -> Vec<u8> {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(mut buf) = self.free.lock().unwrap().pop() {
            self.hits.fetch_add(1, Relaxed);
            buf.resize(len, 0);
            return buf;
        }
        self.misses.fetch_add(1, Relaxed);
        vec![0u8; len]
    }

    /// Return a borrowed buffer; freed outright if the list is full.
    pub fn put(&self, buf: Vec<u8>) {
        let mut free = self.free.lock().unwrap();
        if free.len() < self.cap {
            free.push(buf);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        use std::sync::atomic::Ordering::Relaxed;
        PoolStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            free: self.free.lock().unwrap().len(),
        }
    }
}

/// Open file descriptors of this process, by counting `/proc/self/fd`.
/// The readdir handle itself is included, so compare deltas, not
/// absolutes. This is what the connection-scale tier asserts leak
/// freedom with.
pub fn fd_count() -> io::Result<usize> {
    Ok(std::fs::read_dir("/proc/self/fd")?.count())
}

/// Resident set size of this process in bytes (from `/proc/self/status`
/// `VmRSS`).
pub fn rss_bytes() -> io::Result<u64> {
    let status = std::fs::read_to_string("/proc/self/status")?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("VmRSS: {e}")))?;
            return Ok(kib * 1024);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "no VmRSS in /proc/self/status",
    ))
}

/// Raise `RLIMIT_NOFILE`'s soft limit to at least `min`. A privileged
/// process may raise the hard limit too, so that is attempted first;
/// otherwise the soft limit is capped at the existing hard limit.
/// Returns the resulting soft limit. Holding 10k+ sockets plus their
/// peer ends in one process blows through the usual 1024 default; the
/// connection-scale bench calls this first.
pub fn raise_nofile_limit(min: u64) -> io::Result<u64> {
    let mut lim = Rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= min {
        return Ok(lim.rlim_cur);
    }
    if min > lim.rlim_max {
        let raised = Rlimit {
            rlim_cur: min,
            rlim_max: min,
        };
        if cvt(unsafe { setrlimit(RLIMIT_NOFILE, &raised) }).is_ok() {
            return Ok(min);
        }
    }
    lim.rlim_cur = min.min(lim.rlim_max);
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) })?;
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn waker_wakes_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 7).unwrap();
        let mut events = Events::with_capacity(4);
        // Quiet poller times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);
        waker.wake();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);
        waker.drain();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0, "drained waker goes quiet");
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        use std::os::fd::AsRawFd;
        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 42, Interest::READ)
            .unwrap();
        let mut events = Events::with_capacity(4);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0, "no bytes yet");

        client.write_all(b"ping").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 42);
        assert!(ev.readable && !ev.failed);

        poller.deregister(server.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0, "deregistered fd is silent");
    }

    #[test]
    fn buffer_pool_recycles_up_to_cap() {
        let pool = BufferPool::new(1);
        let a = pool.get(16);
        let b = pool.get(8);
        assert_eq!((a.len(), b.len()), (16, 8));
        pool.put(a);
        pool.put(b); // beyond cap: freed
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.free), (0, 2, 1));
        let c = pool.get(32);
        assert_eq!(c.len(), 32);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn proc_probes_answer() {
        assert!(fd_count().unwrap() > 0);
        assert!(rss_bytes().unwrap() > 0);
        let cur = raise_nofile_limit(256).unwrap();
        assert!(cur >= 256);
    }
}
