//! The byte-stream abstraction under [`RemoteSession`](crate::RemoteSession).
//!
//! A [`Transport`] is an ordered, reliable, bidirectional byte stream
//! that splits into independent halves: a [`TransportRx`] read half with
//! deadlines (so a reply that never arrives surfaces as
//! `WouldBlock`/`TimedOut` instead of hanging the caller) and a plain
//! `Write` send half. The split is what makes client-side pipelining
//! possible: one thread can block in `read` on the Rx half while the Tx
//! half keeps accepting correlated request frames. TCP provides the
//! halves via handle cloning; the deterministic simulation harness
//! (`ks-dst`) provides them as two handles onto one in-memory link with a
//! logical clock. Everything above this trait — framing, correlation,
//! retry/backoff, poisoning — is identical on both, so the simulator
//! exercises the same client code that talks to production sockets.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The receive half: an ordered reliable byte stream with read deadlines.
///
/// `read` must honor the last deadline set: if no bytes become available
/// in time it fails with [`io::ErrorKind::WouldBlock`] or
/// [`io::ErrorKind::TimedOut`] (the client maps both to
/// [`ServerError::Timeout`](ks_server::ServerError::Timeout) and poisons
/// the connection).
pub trait TransportRx: Read {
    /// Bound subsequent reads; `None` blocks indefinitely.
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()>;
}

/// A bidirectional byte stream that splits into independent halves.
///
/// `write`/`flush` failures on the [`Tx`](Transport::Tx) half mean the
/// peer is gone. The halves must reference the same underlying
/// connection: bytes written on `Tx` are answered on `Rx`.
pub trait Transport {
    /// The receive half (deadlined reads).
    type Rx: TransportRx;
    /// The send half.
    type Tx: Write;

    /// Consume the transport, yielding its two halves.
    fn split(self) -> (Self::Rx, Self::Tx);
}

/// The receive half of a [`TcpTransport`]: the socket handle (deadlines
/// are set here) plus a buffered reader over a clone of it.
pub struct TcpRx {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Read for TcpRx {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reader.read(buf)
    }
}

impl TransportRx for TcpRx {
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(deadline)
    }
}

/// The production [`Transport`]: a TCP stream, buffered in both
/// directions, split via handle cloning (both halves clone the same fd,
/// so deadlines set on the Rx half govern reads while writes proceed
/// concurrently).
pub struct TcpTransport {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    /// Buffer an already-connected stream.
    pub fn new(stream: TcpStream) -> io::Result<TcpTransport> {
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(TcpTransport {
            stream,
            reader,
            writer,
        })
    }
}

impl Transport for TcpTransport {
    type Rx = TcpRx;
    type Tx = BufWriter<TcpStream>;

    fn split(self) -> (TcpRx, BufWriter<TcpStream>) {
        (
            TcpRx {
                stream: self.stream,
                reader: self.reader,
            },
            self.writer,
        )
    }
}
