//! The byte-stream abstraction under [`RemoteSession`](crate::RemoteSession).
//!
//! A [`Transport`] is an ordered, reliable, bidirectional byte stream
//! with one extra capability the client's failure model needs: a read
//! deadline, so a reply that never arrives surfaces as
//! `WouldBlock`/`TimedOut` instead of hanging the caller. TCP provides
//! this via `set_read_timeout`; the deterministic simulation harness
//! (`ks-dst`) provides it with a logical clock. Everything above this
//! trait — framing, retry/backoff, poisoning — is identical on both, so
//! the simulator exercises the same client code that talks to production
//! sockets.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// An ordered reliable byte stream with read deadlines.
///
/// `read` must honor the last deadline set: if no bytes become available
/// in time it fails with [`io::ErrorKind::WouldBlock`] or
/// [`io::ErrorKind::TimedOut`] (the client maps both to
/// [`ServerError::Timeout`](ks_server::ServerError::Timeout) and poisons
/// the connection). `write`/`flush` failures mean the peer is gone.
pub trait Transport: Read + Write {
    /// Bound subsequent reads; `None` blocks indefinitely.
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()>;
}

/// The production [`Transport`]: a TCP stream, buffered in both
/// directions.
pub struct TcpTransport {
    /// The underlying socket (deadlines are set here; reads and writes go
    /// through the buffered halves below, which clone the handle).
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpTransport {
    /// Buffer an already-connected stream.
    pub fn new(stream: TcpStream) -> io::Result<TcpTransport> {
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(TcpTransport {
            stream,
            reader,
            writer,
        })
    }
}

impl Read for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reader.read(buf)
    }
}

impl Write for TcpTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writer.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

impl Transport for TcpTransport {
    fn set_read_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(deadline)
    }
}
