//! The flight recorder: lock-free per-thread ring buffers.
//!
//! Each emitting thread (shard worker, client session, simulator) owns an
//! [`ObsSink`] backed by its own [`Ring`]; a [`Recorder`] is the registry
//! that hands out sinks and drains every ring into one time-ordered
//! stream. The rings are bounded (memory never grows) and overwrite the
//! oldest events when full, counting every overwrite in a drop counter —
//! an always-on flight recorder, not a lossless log.
//!
//! ## Lock-freedom without `unsafe`
//!
//! A slot is a seqlock over plain atomics: the writer claims an index with
//! `fetch_add` on the ring head, marks the slot's sequence odd (write in
//! progress), stores the five payload words, then marks the sequence even
//! with the slot's generation. Readers load the sequence before and after
//! copying the words and discard the slot on any mismatch — a torn read is
//! *skipped*, never observed. Writers never wait, readers never block
//! writers, and the whole structure is `#![forbid(unsafe_code)]`-clean.

use crate::event::{ObsEvent, ObsKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Words per packed event (see [`ObsEvent::pack`]).
const WORDS: usize = 5;

/// Default events per ring. At 48 bytes/slot this is ~200 KiB per
/// emitting thread — cheap enough to leave on.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

struct Slot {
    /// 0 = never written; odd = write in progress; even `2(g+1)` = holds
    /// an event of generation `g`.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One bounded, lock-free event ring (single logical writer, any number
/// of concurrent readers; concurrent writers are safe but may skip slots).
pub struct Ring {
    slots: Box<[Slot]>,
    /// Total events ever pushed (monotone; `head - capacity` of them have
    /// been overwritten once `head > capacity`).
    head: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Push one event (never blocks; overwrites the oldest when full).
    pub fn push(&self, ev: &ObsEvent) {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let n = self.slots.len() as u64;
        let slot = &self.slots[(i % n) as usize];
        let generation = i / n;
        slot.seq.store(generation * 2 + 1, Ordering::Release);
        for (w, v) in slot.words.iter().zip(ev.pack()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(generation * 2 + 2, Ordering::Release);
    }

    /// Events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events overwritten (lost to the bounded capacity).
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Snapshot the currently retained events, oldest first. Slots being
    /// written concurrently are skipped, never torn.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let mut words = [0u64; WORDS];
            for (w, a) in words.iter_mut().zip(&slot.words) {
                // Acquire keeps the re-check of `seq` below ordered after
                // these loads — the safe-Rust seqlock discipline.
                *w = a.load(Ordering::Acquire);
            }
            if slot.seq.load(Ordering::Acquire) != before {
                continue;
            }
            if let Some(ev) = ObsEvent::unpack(words) {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.ts);
        out
    }
}

struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
}

/// The recorder registry: hands out per-thread [`ObsSink`]s and merges
/// their rings on demand. Cloning shares the registry.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("rings", &self.inner.rings.lock().unwrap().len())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl Recorder {
    /// An enabled recorder whose rings hold `capacity` events each.
    pub fn new(capacity: usize) -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                epoch: Instant::now(),
                capacity,
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A recorder whose sinks drop everything (for overhead A/B runs: the
    /// instrumentation call sites stay identical, only the flag differs).
    pub fn disabled() -> Recorder {
        let r = Recorder::default();
        r.inner.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Is recording on?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off (all sinks observe the flag).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since this recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Register a new ring and return a sink writing to it, stamped with
    /// `shard` (use `u32::MAX` for unsharded emitters).
    pub fn sink(&self, shard: u32) -> ObsSink {
        let ring = Arc::new(Ring::new(self.inner.capacity));
        self.inner.rings.lock().unwrap().push(Arc::clone(&ring));
        ObsSink {
            ring,
            inner: Arc::clone(&self.inner),
            shard,
        }
    }

    /// Merge every ring's retained events into one stream, ordered by
    /// timestamp (stable across rings).
    pub fn drain(&self) -> Vec<ObsEvent> {
        let rings = self.inner.rings.lock().unwrap().clone();
        let mut out: Vec<ObsEvent> = rings.iter().flat_map(|r| r.snapshot()).collect();
        out.sort_by_key(|e| e.ts);
        out
    }

    /// Snapshot every ring separately, in ring-registration order.
    ///
    /// [`Recorder::drain`] merges rings by wall-clock timestamp, which is
    /// racy across concurrently emitting threads (two rings' clocks can
    /// interleave either way between runs). Deterministic consumers — the
    /// `ks-dst` seed-determinism oracle above all — need the per-ring
    /// streams, whose *within-ring* order is the emitter's program order
    /// and therefore reproducible.
    pub fn drain_rings(&self) -> Vec<Vec<ObsEvent>> {
        let rings = self.inner.rings.lock().unwrap().clone();
        rings.iter().map(|r| r.snapshot()).collect()
    }

    /// Total events ever recorded across all rings.
    pub fn recorded(&self) -> u64 {
        self.inner
            .rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.pushed())
            .sum()
    }

    /// Total events lost to ring overwrites across all rings.
    pub fn dropped(&self) -> u64 {
        self.inner
            .rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.dropped())
            .sum()
    }
}

/// A cheap, `Send + Sync` handle one thread uses to emit events. Carries
/// its shard stamp; the timestamp comes from the parent recorder's epoch.
#[derive(Clone)]
pub struct ObsSink {
    ring: Arc<Ring>,
    inner: Arc<Inner>,
    shard: u32,
}

impl std::fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsSink")
            .field("shard", &self.shard)
            .finish()
    }
}

impl ObsSink {
    /// The shard this sink stamps onto events.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Is the parent recorder enabled? (One relaxed load.)
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the parent recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    /// Emit with the sink's shard stamp and the current time.
    #[inline]
    pub fn emit(&self, txn: u32, kind: ObsKind) {
        if !self.is_enabled() {
            return;
        }
        self.push(self.now_ns(), self.shard, txn, kind);
    }

    /// Emit for an explicit shard (session-side sinks route per call).
    #[inline]
    pub fn emit_for(&self, shard: u32, txn: u32, kind: ObsKind) {
        if !self.is_enabled() {
            return;
        }
        self.push(self.now_ns(), shard, txn, kind);
    }

    /// Emit with an explicit timestamp (simulation bridging: `ts` is the
    /// simulated tick, not wall time).
    #[inline]
    pub fn emit_at(&self, ts: u64, txn: u32, kind: ObsKind) {
        if !self.is_enabled() {
            return;
        }
        self.push(ts, self.shard, txn, kind);
    }

    fn push(&self, ts: u64, shard: u32, txn: u32, kind: ObsKind) {
        self.ring.push(&ObsEvent {
            ts,
            shard,
            txn,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_TXN;

    #[test]
    fn rings_retain_the_newest_and_count_drops() {
        let rec = Recorder::new(8);
        let sink = rec.sink(0);
        for i in 0..20 {
            sink.emit_at(i, i as u32, ObsKind::TxnBegin);
        }
        let events = rec.drain();
        assert_eq!(events.len(), 8);
        // Oldest retained is event 12 (20 pushed, 8 kept).
        assert_eq!(events.first().unwrap().ts, 12);
        assert_eq!(events.last().unwrap().ts, 19);
        assert_eq!(rec.recorded(), 20);
        assert_eq!(rec.dropped(), 12);
    }

    #[test]
    fn disabled_recorder_drops_everything_cheaply() {
        let rec = Recorder::disabled();
        let sink = rec.sink(0);
        sink.emit(NO_TXN, ObsKind::SessionAdmit);
        assert_eq!(rec.recorded(), 0);
        rec.set_enabled(true);
        sink.emit(NO_TXN, ObsKind::SessionAdmit);
        assert_eq!(rec.recorded(), 1);
    }

    #[test]
    fn drain_merges_rings_in_time_order() {
        let rec = Recorder::new(16);
        let a = rec.sink(0);
        let b = rec.sink(1);
        a.emit_at(5, 0, ObsKind::TxnBegin);
        b.emit_at(3, 0, ObsKind::TxnBegin);
        a.emit_at(9, 0, ObsKind::TxnCommitted);
        b.emit_at(7, 0, ObsKind::TxnAborted);
        let ts: Vec<u64> = rec.drain().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![3, 5, 7, 9]);
    }

    #[test]
    fn concurrent_writers_and_reader_never_tear() {
        let rec = Recorder::new(64);
        let sinks: Vec<ObsSink> = (0..4).map(|s| rec.sink(s)).collect();
        std::thread::scope(|scope| {
            for (i, sink) in sinks.iter().enumerate() {
                scope.spawn(move || {
                    for k in 0..10_000u64 {
                        sink.emit_at(
                            k,
                            i as u32,
                            ObsKind::CandidatesConsidered {
                                entity: i as u32,
                                count: k as u32,
                            },
                        );
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..200 {
                    for ev in rec.drain() {
                        // Any event that decodes must be self-consistent:
                        // the payload the writer of that shard wrote.
                        match ev.kind {
                            ObsKind::CandidatesConsidered { entity, .. } => {
                                assert_eq!(entity, ev.shard)
                            }
                            other => panic!("alien event {other:?}"),
                        }
                    }
                }
            });
        });
        assert_eq!(rec.recorded(), 40_000);
        assert_eq!(rec.dropped(), 40_000 - 4 * 64);
    }
}
