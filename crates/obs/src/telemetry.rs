//! Time-series telemetry: windowed histograms and declarative SLOs.
//!
//! End-of-run aggregates hide exactly what matters under sustained load —
//! a ten-second p99 spike disappears into a five-minute average. A
//! [`TelemetrySeries`] keeps a bounded ring of fixed-width time windows
//! (1 second by default), each holding a log₂ latency histogram plus
//! request/commit/abort counters, the deepest shard queue observed, and
//! WAL flush-group sizes. Closed windows are immutable and exported
//! incrementally: [`TelemetrySeries::delta`] returns every closed window
//! at or past a caller-held cursor as a [`TelemetryDelta`], so a remote
//! puller (the wire `Telemetry` request) reconstructs the full series
//! from deltas alone.
//!
//! [`SloSpec`] is the declarative check over that series: `p99 ≤ X over
//! any Y-second window`, written `p99<=800us@3s` and evaluated by
//! merging every run of `Y` consecutive windows. Because it consumes
//! only [`WindowSnapshot`]s, a breach is detectable from pulled deltas
//! without touching the serving process.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Log₂ latency buckets per window (bucket `i` holds `[2^i, 2^(i+1))`
/// nanoseconds, except bucket 63 which absorbs the tail).
pub const LATENCY_BUCKETS: usize = 64;

/// Default window width.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(1);

/// Closed windows retained for pullers that fall behind.
pub const DEFAULT_RETAIN: usize = 128;

fn bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (63 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// The upper edge of a bucket — the value a quantile reports.
fn bucket_edge(i: usize) -> u64 {
    if i >= LATENCY_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// One closed (or still-filling) telemetry window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Window sequence number: `start_ns / width_ns` on the series
    /// clock. Consecutive load produces consecutive numbers; idle gaps
    /// skip numbers.
    pub seq: u64,
    /// Requests whose latency landed in this window.
    pub requests: u64,
    /// Transactions committed in this window.
    pub committed: u64,
    /// Transactions aborted in this window.
    pub aborted: u64,
    /// Deepest shard queue observed during the window.
    pub queue_depth: u64,
    /// WAL group-commit flushes in this window.
    pub flush_groups: u64,
    /// Commits those flushes covered (mean group size =
    /// `flush_commits / flush_groups`).
    pub flush_commits: u64,
    /// Request-latency histogram (log₂ buckets).
    pub latency: [u64; LATENCY_BUCKETS],
}

impl WindowSnapshot {
    /// An empty window at `seq`.
    pub fn empty(seq: u64) -> WindowSnapshot {
        WindowSnapshot {
            seq,
            requests: 0,
            committed: 0,
            aborted: 0,
            queue_depth: 0,
            flush_groups: 0,
            flush_commits: 0,
            latency: [0; LATENCY_BUCKETS],
        }
    }

    /// Fold `other` into `self` (for SLO evaluation over `Y` consecutive
    /// windows). `seq` keeps the smaller value.
    pub fn merge(&mut self, other: &WindowSnapshot) {
        self.seq = self.seq.min(other.seq);
        self.requests += other.requests;
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.queue_depth = self.queue_depth.max(other.queue_depth);
        self.flush_groups += other.flush_groups;
        self.flush_commits += other.flush_commits;
        for (a, b) in self.latency.iter_mut().zip(other.latency) {
            *a += b;
        }
    }

    /// The latency at or below which fraction `q` of requests completed
    /// (upper bucket edge); `None` when the window saw no requests.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total: u64 = self.latency.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.latency.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_edge(i));
            }
        }
        Some(bucket_edge(LATENCY_BUCKETS - 1))
    }

    /// Median latency.
    pub fn p50_ns(&self) -> Option<u64> {
        self.quantile_ns(0.50)
    }

    /// 99th percentile latency.
    pub fn p99_ns(&self) -> Option<u64> {
        self.quantile_ns(0.99)
    }

    /// 99.9th percentile latency.
    pub fn p999_ns(&self) -> Option<u64> {
        self.quantile_ns(0.999)
    }

    /// Committed transactions per second, given the series width.
    pub fn throughput(&self, width_ns: u64) -> f64 {
        self.committed as f64 / (width_ns.max(1) as f64 / 1e9)
    }

    /// Aborted / (committed + aborted), 0 when neither happened.
    pub fn abort_rate(&self) -> f64 {
        let total = self.committed + self.aborted;
        if total == 0 {
            0.0
        } else {
            self.aborted as f64 / total as f64
        }
    }
}

/// An incremental export: every closed window at or past the puller's
/// cursor, plus the cursor to pass next time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryDelta {
    /// Window width of the producing series, nanoseconds.
    pub width_ns: u64,
    /// Pass this as `since` on the next pull.
    pub next_seq: u64,
    /// Closed windows with `seq >= since`, oldest first.
    pub windows: Vec<WindowSnapshot>,
}

struct SeriesInner {
    /// The window currently filling.
    current: WindowSnapshot,
    /// Closed windows, oldest first, bounded by `retain`.
    closed: VecDeque<WindowSnapshot>,
}

/// A shared, windowed telemetry collector. Cloning shares the series.
///
/// Recording takes one mutex acquisition; at the tens-of-thousands of
/// requests per second this stack serves, that is noise next to a
/// protocol round-trip (the tracing overhead bench measures the whole
/// observability layer and gates it).
#[derive(Clone)]
pub struct TelemetrySeries {
    inner: Arc<Mutex<SeriesInner>>,
    epoch: Instant,
    width_ns: u64,
    retain: usize,
}

impl std::fmt::Debug for TelemetrySeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySeries")
            .field("width_ns", &self.width_ns)
            .field("retain", &self.retain)
            .finish()
    }
}

impl Default for TelemetrySeries {
    fn default() -> Self {
        TelemetrySeries::new(DEFAULT_WINDOW, DEFAULT_RETAIN)
    }
}

impl TelemetrySeries {
    /// A series of `width`-wide windows, retaining the last `retain`
    /// closed ones.
    pub fn new(width: Duration, retain: usize) -> TelemetrySeries {
        TelemetrySeries {
            inner: Arc::new(Mutex::new(SeriesInner {
                current: WindowSnapshot::empty(0),
                closed: VecDeque::new(),
            })),
            epoch: Instant::now(),
            width_ns: (width.as_nanos() as u64).max(1),
            retain: retain.max(1),
        }
    }

    /// The configured window width, nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Nanoseconds since the series epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Roll `inner` forward to the window containing `now`, closing the
    /// current one if time moved past it.
    fn roll(&self, inner: &mut SeriesInner, now_ns: u64) {
        let seq = now_ns / self.width_ns;
        if seq > inner.current.seq {
            let closed = std::mem::replace(&mut inner.current, WindowSnapshot::empty(seq));
            // An untouched window carries no information; skip it so idle
            // time costs nothing and gaps stay visible as missing seqs.
            if closed.requests > 0
                || closed.committed > 0
                || closed.aborted > 0
                || closed.flush_groups > 0
            {
                inner.closed.push_back(closed);
                while inner.closed.len() > self.retain {
                    inner.closed.pop_front();
                }
            }
        }
    }

    /// Record one served request: its latency, whether it was a commit
    /// or abort resolution, and the shard queue depth observed at reply
    /// time.
    pub fn record_request(
        &self,
        latency_ns: u64,
        committed: bool,
        aborted: bool,
        queue_depth: u64,
    ) {
        let now = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        self.roll(&mut inner, now);
        let w = &mut inner.current;
        w.requests += 1;
        w.latency[bucket(latency_ns)] += 1;
        w.committed += u64::from(committed);
        w.aborted += u64::from(aborted);
        w.queue_depth = w.queue_depth.max(queue_depth);
    }

    /// Record one WAL group-commit flush covering `commits` commits.
    pub fn record_flush(&self, commits: u64) {
        let now = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        self.roll(&mut inner, now);
        inner.current.flush_groups += 1;
        inner.current.flush_commits += commits;
    }

    /// Export every closed window with `seq >= since`, oldest first,
    /// closing the current window first if its time has passed. The
    /// returned `next_seq` is the cursor for the next pull.
    pub fn delta(&self, since: u64) -> TelemetryDelta {
        let now = self.now_ns();
        let mut inner = self.inner.lock().unwrap();
        self.roll(&mut inner, now);
        let windows: Vec<WindowSnapshot> = inner
            .closed
            .iter()
            .filter(|w| w.seq >= since)
            .cloned()
            .collect();
        let next_seq = windows.last().map_or(since, |w| w.seq + 1);
        TelemetryDelta {
            width_ns: self.width_ns,
            next_seq,
            windows,
        }
    }
}

/// Which quantile an SLO constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloQuantile {
    /// Median.
    P50,
    /// 99th percentile.
    P99,
    /// 99.9th percentile.
    P999,
}

impl SloQuantile {
    /// The quantile as a fraction.
    pub fn fraction(self) -> f64 {
        match self {
            SloQuantile::P50 => 0.50,
            SloQuantile::P99 => 0.99,
            SloQuantile::P999 => 0.999,
        }
    }

    /// Stable spec name.
    pub fn name(self) -> &'static str {
        match self {
            SloQuantile::P50 => "p50",
            SloQuantile::P99 => "p99",
            SloQuantile::P999 => "p999",
        }
    }
}

/// A declarative latency SLO: *quantile ≤ limit over any `windows`
/// consecutive windows*. Written `p99<=800us@3s` (with 1-second
/// windows, "over any 3-second window").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// The constrained quantile.
    pub quantile: SloQuantile,
    /// The latency ceiling, nanoseconds.
    pub limit_ns: u64,
    /// How many consecutive windows each evaluation merges (≥ 1).
    pub windows: u64,
}

/// One violated SLO evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloBreach {
    /// First window sequence of the breaching run.
    pub start_seq: u64,
    /// The quantile value that exceeded the limit, nanoseconds.
    pub value_ns: u64,
}

impl SloSpec {
    /// Parse `"<quantile><=<duration>@<N>s"`, e.g. `p99<=800us@3s`.
    /// Duration units: `ns`, `us`, `ms`, `s`.
    pub fn parse(s: &str) -> Result<SloSpec, String> {
        let bad = || format!("malformed SLO spec {s:?} (want e.g. p99<=800us@3s)");
        let (quant, rest) = s.split_once("<=").ok_or_else(bad)?;
        let quantile = match quant.trim() {
            "p50" => SloQuantile::P50,
            "p99" => SloQuantile::P99,
            "p999" => SloQuantile::P999,
            other => return Err(format!("unknown quantile {other:?} in SLO spec {s:?}")),
        };
        let (limit, span) = rest.split_once('@').ok_or_else(bad)?;
        let limit_ns = parse_duration_ns(limit.trim()).ok_or_else(bad)?;
        let windows: u64 = span
            .trim()
            .strip_suffix('s')
            .and_then(|n| n.parse().ok())
            .ok_or_else(bad)?;
        if windows == 0 {
            return Err(format!("SLO spec {s:?} must cover at least 1 window"));
        }
        Ok(SloSpec {
            quantile,
            limit_ns,
            windows,
        })
    }

    /// Render back to the spec syntax.
    pub fn render(&self) -> String {
        format!(
            "{}<={}@{}s",
            self.quantile.name(),
            render_duration_ns(self.limit_ns),
            self.windows
        )
    }

    /// Evaluate over closed windows (any order, duplicates by `seq`
    /// collapse to the latest): every run of `self.windows` consecutive
    /// sequence numbers is merged and checked. Runs broken by idle gaps
    /// are not evaluated across the gap.
    pub fn check(&self, windows: &[WindowSnapshot]) -> Vec<SloBreach> {
        use std::collections::BTreeMap;
        let mut by_seq: BTreeMap<u64, &WindowSnapshot> = BTreeMap::new();
        for w in windows {
            by_seq.insert(w.seq, w);
        }
        let seqs: Vec<u64> = by_seq.keys().copied().collect();
        let mut breaches = Vec::new();
        for (i, &start) in seqs.iter().enumerate() {
            // The run [start, start + windows) must be fully present.
            let run: Vec<&WindowSnapshot> = (0..self.windows)
                .map_while(|k| by_seq.get(&(start + k)).copied())
                .collect();
            if run.len() as u64 != self.windows {
                continue;
            }
            // Skip runs already covered by an earlier evaluation start
            // only when identical; evaluating every start is fine (the
            // spec says *any* Y-window run).
            let _ = i;
            let mut merged = run[0].clone();
            for w in &run[1..] {
                merged.merge(w);
            }
            if let Some(value) = merged.quantile_ns(self.quantile.fraction()) {
                if value > self.limit_ns {
                    breaches.push(SloBreach {
                        start_seq: start,
                        value_ns: value,
                    });
                }
            }
        }
        breaches
    }
}

fn parse_duration_ns(s: &str) -> Option<u64> {
    // Longest suffix first: "ns" before "s", "us"/"ms" before "s".
    for (suffix, scale) in [("ns", 1u64), ("us", 1_000), ("ms", 1_000_000)] {
        if let Some(n) = s.strip_suffix(suffix) {
            return n.parse::<u64>().ok().map(|v| v.saturating_mul(scale));
        }
    }
    s.strip_suffix('s')
        .and_then(|n| n.parse::<u64>().ok())
        .map(|v| v.saturating_mul(1_000_000_000))
}

fn render_duration_ns(ns: u64) -> String {
    if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(seq: u64, latencies_ns: &[u64]) -> WindowSnapshot {
        let mut w = WindowSnapshot::empty(seq);
        for &ns in latencies_ns {
            w.requests += 1;
            w.latency[bucket(ns)] += 1;
            w.committed += 1;
        }
        w
    }

    #[test]
    fn buckets_and_quantiles_are_sane() {
        let w = window(0, &[100, 100, 100, 100_000]);
        // p50 lands in the 100ns bucket's edge, p999 in the 100µs one.
        assert!(w.p50_ns().unwrap() < 256);
        assert!(w.p999_ns().unwrap() >= 100_000);
        assert_eq!(WindowSnapshot::empty(0).p99_ns(), None);
    }

    #[test]
    fn series_closes_windows_and_exports_incremental_deltas() {
        let series = TelemetrySeries::new(Duration::from_nanos(u64::MAX / 2), 8);
        // One giant window: nothing closes, delta is empty.
        series.record_request(500, true, false, 3);
        assert!(series.delta(0).windows.is_empty());

        let fast = TelemetrySeries::new(Duration::from_millis(1), 8);
        fast.record_request(1_000, true, false, 1);
        fast.record_flush(4);
        std::thread::sleep(Duration::from_millis(3));
        // Recording after the width elapsed closes the first window.
        fast.record_request(2_000, false, true, 2);
        std::thread::sleep(Duration::from_millis(3));
        let d1 = fast.delta(0);
        assert!(!d1.windows.is_empty());
        let sum = |f: fn(&WindowSnapshot) -> u64| d1.windows.iter().map(f).sum::<u64>();
        assert_eq!(sum(|w| w.requests), 2);
        assert_eq!(sum(|w| w.committed), 1);
        assert_eq!(sum(|w| w.aborted), 1);
        assert_eq!(sum(|w| w.flush_groups), 1);
        assert_eq!(sum(|w| w.flush_commits), 4);
        // The cursor advances past everything exported; re-pulling with
        // it returns only newer windows.
        let d2 = fast.delta(d1.next_seq);
        assert!(d2.windows.iter().all(|w| w.seq >= d1.next_seq));
    }

    #[test]
    fn slo_spec_parses_and_renders() {
        let spec = SloSpec::parse("p99<=800us@3s").unwrap();
        assert_eq!(spec.quantile, SloQuantile::P99);
        assert_eq!(spec.limit_ns, 800_000);
        assert_eq!(spec.windows, 3);
        assert_eq!(spec.render(), "p99<=800us@3s");
        assert_eq!(SloSpec::parse("p50<=2ms@1s").unwrap().limit_ns, 2_000_000);
        assert_eq!(
            SloSpec::parse("p999<=1s@5s").unwrap().limit_ns,
            1_000_000_000
        );
        assert!(SloSpec::parse("p98<=1ms@1s").is_err());
        assert!(SloSpec::parse("p99<=1parsec@1s").is_err());
        assert!(SloSpec::parse("p99<=1ms@0s").is_err());
        assert!(SloSpec::parse("nonsense").is_err());
    }

    #[test]
    fn slo_check_finds_breaches_in_merged_runs() {
        let spec = SloSpec::parse("p99<=1us@2s").unwrap();
        // Two consecutive fast windows: no breach.
        let fast = [window(0, &[100; 10]), window(1, &[100; 10])];
        assert!(spec.check(&fast).is_empty());
        // A slow window inside a run breaches every run containing it.
        let mixed = [
            window(0, &[100; 10]),
            window(1, &[5_000_000; 10]),
            window(2, &[100; 10]),
        ];
        let breaches = spec.check(&mixed);
        assert!(!breaches.is_empty());
        assert!(breaches.iter().any(|b| b.start_seq <= 1));
        assert!(breaches.iter().all(|b| b.value_ns > 1_000));
        // A gap breaks the run: windows 0 and 2 alone never merge.
        let gapped = [window(0, &[5_000_000; 10]), window(2, &[5_000_000; 10])];
        assert_eq!(
            SloSpec::parse("p99<=1us@2s").unwrap().check(&gapped).len(),
            0
        );
        // ...but a 1-window SLO still catches each.
        assert_eq!(
            SloSpec::parse("p99<=1us@1s").unwrap().check(&gapped).len(),
            2
        );
    }

    #[test]
    fn merge_accumulates_and_abort_rate_divides() {
        let mut a = window(3, &[100]);
        let b = {
            let mut w = window(4, &[200, 300]);
            w.aborted = 1;
            w.queue_depth = 9;
            w
        };
        a.merge(&b);
        assert_eq!(a.seq, 3);
        assert_eq!(a.requests, 3);
        assert_eq!(a.queue_depth, 9);
        assert!((a.abort_rate() - 0.25).abs() < 1e-9);
        assert!((a.throughput(1_000_000_000) - 3.0).abs() < 1e-9);
    }
}
