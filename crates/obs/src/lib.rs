//! # ks-obs
//!
//! First-class observability for the KS stack: *verdicts with witnesses*.
//!
//! The protocol's whole value claim is that it admits non-serializable
//! executions that are still provably correct — but a bare "violation:
//! yes/no" after a model check is nearly useless for debugging a
//! weak-consistency system. This crate records **why** each decision was
//! taken, cheaply enough to leave on in production:
//!
//! * [`event`] — a typed, allocation-free event model ([`ObsEvent`]):
//!   request lifecycle (enqueue → execute → reply), protocol decisions
//!   (candidates considered, version assigned, re-eval triggered,
//!   re-assign, re-eval abort, cascade edge, the clause that made a
//!   validation unsatisfiable), and transaction lifecycle (begin,
//!   validated, committed, aborted). Every event packs into five `u64`
//!   words.
//! * [`ring`] — an always-on **flight recorder**: per-thread lock-free
//!   ring buffers (seqlock slots over atomics, no `unsafe`) with bounded
//!   memory and a drop counter; a [`Recorder`] registry drains all rings
//!   into one time-ordered stream.
//! * [`json`] — JSONL serialization, hand-written in the same
//!   dependency-free spirit as `ks-protocol::wire` (no `serde_json`):
//!   one event per line, exact round-trip.
//! * [`timeline`] — causal stitching: group a drained stream into
//!   per-transaction timelines, the artifact a dump-on-violation hands
//!   to a human.
//! * [`trace`] — distributed request tracing: `SpanStart`/`SpanEnd`
//!   breadcrumbs emitted at every pipeline hop (client send, connection
//!   handler, shard queue, worker execute, certifier decision, WAL group
//!   commit) stitch into end-to-end [`trace::TraceTree`]s with per-hop
//!   latency attribution.
//! * [`telemetry`] — time-series SLO telemetry: windowed latency
//!   histograms, throughput/abort-rate/queue-depth/flush-group series,
//!   incremental [`telemetry::TelemetryDelta`] export, and the
//!   declarative [`telemetry::SloSpec`] check
//!   (`p99 ≤ X over any Y-second window`).
//!
//! Emission cost when a recorder is attached is a timestamp read plus a
//! handful of relaxed atomic stores; when detached (the default), a single
//! branch on an `Option`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod ring;
pub mod telemetry;
pub mod timeline;
pub mod trace;

pub use event::{ObsEvent, ObsKind, OpCode, SpanHop, NO_TXN};
pub use json::{event_from_json, event_to_json, from_jsonl, to_jsonl, JsonError};
pub use ring::{ObsSink, Recorder, Ring};
pub use telemetry::{
    SloBreach, SloQuantile, SloSpec, TelemetryDelta, TelemetrySeries, WindowSnapshot,
    LATENCY_BUCKETS,
};
pub use timeline::{stitch, TxnTimeline};
pub use trace::{derive_trace_id, stitch_traces, trace_sampled, HopLatency, TraceSpan, TraceTree};
