//! Causal stitching: from a flat event stream to per-transaction
//! timelines.
//!
//! A drained flight-recorder stream interleaves every thread's events.
//! What a human debugging a violation needs is the *story of one
//! transaction*: the decisions that led to the bad state, in order, with
//! the cross-transaction edges (re-eval, cascade) attached to both ends.
//! [`stitch`] produces exactly that — events are grouped by
//! `(shard, txn)`, and decision events that name another transaction
//! (re-assign, re-eval abort, cascade edges) are mirrored into the named
//! transaction's timeline too, so either side of the causal edge tells the
//! whole story.

use crate::event::{ObsEvent, ObsKind, NO_TXN};
use std::collections::BTreeMap;

/// The stitched history of one transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnTimeline {
    /// The shard the transaction ran on.
    pub shard: u32,
    /// The shard-local transaction index.
    pub txn: u32,
    /// Events touching this transaction, in timestamp order. Includes
    /// events *emitted by* the transaction and decision events emitted by
    /// siblings that *name* it (the mirrored causal edges).
    pub events: Vec<ObsEvent>,
}

impl TxnTimeline {
    /// The last protocol-decision event, if any — in a violation dump this
    /// is the decision that produced the bad state (forced assignments
    /// rank above ordinary ones, since a forced assignment is by
    /// construction the injected cause).
    pub fn causal_decision(&self) -> Option<&ObsEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| matches!(e.kind, ObsKind::VersionAssigned { forced: true, .. }))
            .or_else(|| {
                self.events.iter().rev().find(|e| {
                    matches!(
                        e.kind,
                        ObsKind::VersionAssigned { .. }
                            | ObsKind::ValidationUnsat { .. }
                            | ObsKind::ReEvalTriggered { .. }
                            | ObsKind::ReAssigned { .. }
                            | ObsKind::ReEvalAbort { .. }
                            | ObsKind::ReassignFailed { .. }
                            | ObsKind::CascadeEdge { .. }
                    )
                })
            })
    }

    /// One-line human summary: `shard 0 txn 3: begin → validated →
    /// committed (12 events)`.
    pub fn summary(&self) -> String {
        let mut phases: Vec<&'static str> = Vec::new();
        for e in &self.events {
            let p = match e.kind {
                ObsKind::TxnBegin => "begin",
                ObsKind::TxnValidated => "validated",
                ObsKind::TxnCommitted => "committed",
                ObsKind::TxnAborted => "aborted",
                _ => continue,
            };
            if phases.last() != Some(&p) {
                phases.push(p);
            }
        }
        format!(
            "shard {} txn {}: {} ({} events)",
            self.shard,
            self.txn,
            if phases.is_empty() {
                "(no lifecycle events)".to_string()
            } else {
                phases.join(" → ")
            },
            self.events.len()
        )
    }
}

/// Which *other* transactions (same shard) an event names — the targets a
/// causal edge should be mirrored to.
fn named_peers(kind: ObsKind) -> [Option<u32>; 2] {
    match kind {
        ObsKind::ReAssigned { holder, .. }
        | ObsKind::ReEvalAbort { holder, .. }
        | ObsKind::ReassignFailed { holder, .. } => [Some(holder), None],
        ObsKind::CascadeEdge { from, to, .. } => [Some(from), Some(to)],
        _ => [None, None],
    }
}

/// Group a flat stream into per-transaction timelines (sorted by shard,
/// then transaction index). Events with `txn == NO_TXN` (service-level)
/// are dropped; decision events naming a peer are mirrored into the
/// peer's timeline.
pub fn stitch(events: &[ObsEvent]) -> Vec<TxnTimeline> {
    let mut by_txn: BTreeMap<(u32, u32), Vec<ObsEvent>> = BTreeMap::new();
    for ev in events {
        let mut targets: Vec<u32> = Vec::with_capacity(3);
        if ev.txn != NO_TXN {
            targets.push(ev.txn);
        }
        for peer in named_peers(ev.kind).into_iter().flatten() {
            if !targets.contains(&peer) {
                targets.push(peer);
            }
        }
        for t in targets {
            by_txn.entry((ev.shard, t)).or_default().push(*ev);
        }
    }
    by_txn
        .into_iter()
        .map(|((shard, txn), mut events)| {
            events.sort_by_key(|e| e.ts);
            TxnTimeline { shard, txn, events }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, txn: u32, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            ts,
            shard: 0,
            txn,
            kind,
        }
    }

    #[test]
    fn groups_and_mirrors_causal_edges() {
        let events = vec![
            ev(1, 1, ObsKind::TxnBegin),
            ev(2, 2, ObsKind::TxnBegin),
            ev(
                3,
                2,
                ObsKind::ReEvalTriggered {
                    entity: 0,
                    version: 1,
                },
            ),
            // Txn 2's write aborts holder 1: must appear in both timelines.
            ev(
                4,
                2,
                ObsKind::ReEvalAbort {
                    holder: 1,
                    entity: 0,
                },
            ),
            ev(5, 1, ObsKind::TxnAborted),
            ev(6, 2, ObsKind::TxnCommitted),
        ];
        let timelines = stitch(&events);
        assert_eq!(timelines.len(), 2);
        let t1 = &timelines[0];
        assert_eq!((t1.shard, t1.txn), (0, 1));
        assert!(t1
            .events
            .iter()
            .any(|e| matches!(e.kind, ObsKind::ReEvalAbort { holder: 1, .. })));
        assert_eq!(t1.summary(), "shard 0 txn 1: begin → aborted (3 events)");
        let t2 = &timelines[1];
        assert!(matches!(
            t2.causal_decision().unwrap().kind,
            ObsKind::ReEvalAbort { .. }
        ));
    }

    #[test]
    fn forced_assignment_outranks_later_decisions() {
        let events = vec![
            ev(
                1,
                1,
                ObsKind::VersionAssigned {
                    entity: 0,
                    version: 2,
                    forced: true,
                },
            ),
            ev(
                2,
                1,
                ObsKind::ReEvalTriggered {
                    entity: 1,
                    version: 0,
                },
            ),
        ];
        let timelines = stitch(&events);
        assert!(matches!(
            timelines[0].causal_decision().unwrap().kind,
            ObsKind::VersionAssigned { forced: true, .. }
        ));
    }
}
