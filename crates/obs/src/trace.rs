//! Distributed-trace stitching: span events → end-to-end trees.
//!
//! A traced request leaves [`ObsKind::SpanStart`]/[`ObsKind::SpanEnd`]
//! breadcrumbs at every pipeline hop it crosses (client send, connection
//! handler, shard queue, worker execute, certifier decision, WAL group
//! commit). The hops of one request all carry the same trace id, and the
//! hop taxonomy itself is a fixed topology ([`SpanHop::parent`]), so no
//! explicit span-id chain crosses the wire: `(trace, hop)` places every
//! span. This module reassembles the flat, arbitrarily interleaved event
//! stream a [`crate::Recorder`] drains into one [`TraceTree`] per trace,
//! with per-hop latency attribution that sums to the root span's
//! duration.
//!
//! Timestamps are nanoseconds on the emitting recorder's clock. Hops of
//! one trace only nest meaningfully when every emitter shares a recorder
//! (the loopback benches and ks-dst do exactly that); cross-process
//! traces still stitch, but interval arithmetic inherits the clock skew.

use crate::event::{ObsEvent, ObsKind, OpCode, SpanHop};

/// Derive a nonzero trace id from a seed (a wire correlation id, or an
/// origination sequence number) via SplitMix64. Deterministic, so a
/// replayed run — the dst harness in particular — produces identical
/// trace ids, and both ends of a wire derive the same id from the same
/// correlation id without exchanging extra state.
pub fn derive_trace_id(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 0 means "unsampled" on the wire; the all-zero output maps to 1.
    if z == 0 {
        1
    } else {
        z
    }
}

/// Head-sampling decision at `rate ∈ [0, 1]`: a pure function of the
/// derived trace id (its top 53 bits against the rate threshold), so
/// every component that sees the id agrees without coordination.
pub fn trace_sampled(trace: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        true
    } else if rate <= 0.0 {
        false
    } else {
        ((trace >> 11) as f64 / (1u64 << 53) as f64) < rate
    }
}

/// One reassembled span: a hop's interval within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// The trace this span belongs to.
    pub trace: u64,
    /// Where in the pipeline.
    pub hop: SpanHop,
    /// The operation, when the start event carried one.
    pub op: Option<OpCode>,
    /// Shard stamp of the start event.
    pub shard: u32,
    /// Transaction stamp of the start event ([`crate::NO_TXN`] when the
    /// emitter did not know the transaction yet).
    pub txn: u32,
    /// Start timestamp (recorder nanoseconds).
    pub start_ns: u64,
    /// End timestamp; `None` for a span whose end event was not drained
    /// (dropped by the ring, or the request was still in flight).
    pub end_ns: Option<u64>,
    /// The end event's outcome; for [`SpanHop::Certify`] the certifier's
    /// decision.
    pub ok: Option<bool>,
}

impl TraceSpan {
    /// The span's duration, 0 while unclosed.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns
            .map_or(0, |end| end.saturating_sub(self.start_ns))
    }
}

/// Per-hop latency attribution within one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopLatency {
    /// The hop.
    pub hop: SpanHop,
    /// The hop's full interval.
    pub span_ns: u64,
    /// The interval minus the intervals of its direct children — the
    /// time *this* hop is responsible for. Self times over a
    /// single-rooted tree sum to the root span's duration.
    pub self_ns: u64,
}

/// One trace's spans, linked into a tree by the hop topology.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id.
    pub trace: u64,
    /// Every reassembled span, in start-timestamp order.
    pub spans: Vec<TraceSpan>,
    /// `children[i]` = indices of the spans attached under `spans[i]`.
    pub children: Vec<Vec<usize>>,
    /// Indices of top-level spans (no present ancestor). A full wire
    /// trace has exactly one: the client's [`SpanHop::Request`].
    pub roots: Vec<usize>,
}

impl TraceTree {
    /// The root span when the tree has exactly one top-level span.
    pub fn root(&self) -> Option<&TraceSpan> {
        match self.roots.as_slice() {
            [r] => Some(&self.spans[*r]),
            _ => None,
        }
    }

    /// End-to-end duration: the single root's interval, or the envelope
    /// of all spans when the trace has no single root.
    pub fn total_ns(&self) -> u64 {
        if let Some(root) = self.root() {
            return root.duration_ns();
        }
        let start = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let end = self
            .spans
            .iter()
            .filter_map(|s| s.end_ns)
            .max()
            .unwrap_or(start);
        end.saturating_sub(start)
    }

    /// Which hops the trace covers.
    pub fn hops(&self) -> Vec<SpanHop> {
        self.spans.iter().map(|s| s.hop).collect()
    }

    /// Per-hop latency attribution, in span order. Each hop's `self_ns`
    /// is its interval minus its direct children's; over a well-formed
    /// single-rooted tree the self times sum exactly to
    /// [`TraceTree::total_ns`].
    pub fn hop_latencies(&self) -> Vec<HopLatency> {
        self.spans
            .iter()
            .enumerate()
            .map(|(i, span)| {
                let span_ns = span.duration_ns();
                let child_ns: u64 = self.children[i]
                    .iter()
                    .map(|&c| self.spans[c].duration_ns())
                    .sum();
                HopLatency {
                    hop: span.hop,
                    span_ns,
                    self_ns: span_ns.saturating_sub(child_ns),
                }
            })
            .collect()
    }

    /// Structural validity: exactly one root, every span closed, every
    /// child interval within its parent's, and every span's end at or
    /// after its start.
    pub fn is_well_formed(&self) -> bool {
        if self.roots.len() != 1 {
            return false;
        }
        for (i, span) in self.spans.iter().enumerate() {
            let Some(end) = span.end_ns else { return false };
            if end < span.start_ns {
                return false;
            }
            for &c in &self.children[i] {
                let child = &self.spans[c];
                if child.start_ns < span.start_ns || child.end_ns.unwrap_or(u64::MAX) > end {
                    return false;
                }
            }
        }
        true
    }

    /// One line per span, indented by depth — the hop breakdown a human
    /// (or ks-top) reads.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {:#018x}: {} spans, {} ns end-to-end",
            self.trace,
            self.spans.len(),
            self.total_ns()
        );
        fn walk(tree: &TraceTree, i: usize, depth: usize, out: &mut String) {
            use std::fmt::Write as _;
            let s = &tree.spans[i];
            let _ = writeln!(
                out,
                "{:indent$}{} {:>10} ns{}{}",
                "",
                s.hop.name(),
                s.duration_ns(),
                s.op.map(|o| format!(" op={}", o.name()))
                    .unwrap_or_default(),
                s.ok.map(|ok| format!(" ok={ok}")).unwrap_or_default(),
                indent = 2 + depth * 2,
            );
            for &c in &tree.children[i] {
                walk(tree, c, depth + 1, out);
            }
        }
        for &r in &self.roots {
            walk(self, r, 0, &mut out);
        }
        out
    }
}

/// Reassemble every trace present in `events` (other event kinds are
/// ignored). Starts and ends pair by `(trace, hop)` in timestamp order;
/// an end without a start opens a zero-length span at its own timestamp
/// so ring drops degrade to visible stubs, never to panics. Returned
/// trees are ordered by first span start.
pub fn stitch_traces(events: &[ObsEvent]) -> Vec<TraceTree> {
    use std::collections::BTreeMap;

    // Collect per-trace span events, in timestamp order.
    let mut sorted: Vec<&ObsEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, ObsKind::SpanStart { .. } | ObsKind::SpanEnd { .. }))
        .collect();
    sorted.sort_by_key(|e| e.ts);

    let mut traces: BTreeMap<u64, Vec<TraceSpan>> = BTreeMap::new();
    for ev in sorted {
        match ev.kind {
            ObsKind::SpanStart { hop, op, trace } => {
                traces.entry(trace).or_default().push(TraceSpan {
                    trace,
                    hop,
                    op: Some(op),
                    shard: ev.shard,
                    txn: ev.txn,
                    start_ns: ev.ts,
                    end_ns: None,
                    ok: None,
                });
            }
            ObsKind::SpanEnd { hop, ok, trace } => {
                let spans = traces.entry(trace).or_default();
                match spans
                    .iter_mut()
                    .find(|s| s.hop == hop && s.end_ns.is_none())
                {
                    Some(open) => {
                        open.end_ns = Some(ev.ts);
                        open.ok = Some(ok);
                    }
                    // Orphan end (start dropped): a zero-length stub.
                    None => spans.push(TraceSpan {
                        trace,
                        hop,
                        op: None,
                        shard: ev.shard,
                        txn: ev.txn,
                        start_ns: ev.ts,
                        end_ns: Some(ev.ts),
                        ok: Some(ok),
                    }),
                }
            }
            _ => unreachable!("filtered above"),
        }
    }

    let mut trees: Vec<TraceTree> = traces
        .into_iter()
        .map(|(trace, mut spans)| {
            spans.sort_by_key(|s| s.start_ns);
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
            let mut roots = Vec::new();
            for i in 0..spans.len() {
                // Walk the static topology to the nearest hop actually
                // present in this trace; absent intermediates (an
                // in-process request has no ConnHandle) are skipped.
                let mut ancestor = spans[i].hop.parent();
                let parent = loop {
                    match ancestor {
                        None => break None,
                        Some(hop) => {
                            if let Some(p) = spans.iter().position(|s| s.hop == hop) {
                                break Some(p);
                            }
                            ancestor = hop.parent();
                        }
                    }
                };
                match parent {
                    Some(p) if p != i => children[p].push(i),
                    _ => roots.push(i),
                }
            }
            TraceTree {
                trace,
                spans,
                children,
                roots,
            }
        })
        .collect();
    trees.sort_by_key(|t| t.spans.first().map_or(0, |s| s.start_ns));
    trees
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_TXN;

    fn ev(ts: u64, kind: ObsKind) -> ObsEvent {
        ObsEvent {
            ts,
            shard: 0,
            txn: NO_TXN,
            kind,
        }
    }

    fn full_trace(trace: u64, base: u64) -> Vec<ObsEvent> {
        let op = OpCode::Commit;
        vec![
            ev(
                base,
                ObsKind::SpanStart {
                    hop: SpanHop::Request,
                    op,
                    trace,
                },
            ),
            ev(
                base + 10,
                ObsKind::SpanStart {
                    hop: SpanHop::ConnHandle,
                    op,
                    trace,
                },
            ),
            ev(
                base + 12,
                ObsKind::SpanStart {
                    hop: SpanHop::Queue,
                    op,
                    trace,
                },
            ),
            ev(
                base + 20,
                ObsKind::SpanEnd {
                    hop: SpanHop::Queue,
                    ok: true,
                    trace,
                },
            ),
            ev(
                base + 20,
                ObsKind::SpanStart {
                    hop: SpanHop::Exec,
                    op,
                    trace,
                },
            ),
            ev(
                base + 22,
                ObsKind::SpanStart {
                    hop: SpanHop::Certify,
                    op,
                    trace,
                },
            ),
            ev(
                base + 30,
                ObsKind::SpanEnd {
                    hop: SpanHop::Certify,
                    ok: true,
                    trace,
                },
            ),
            ev(
                base + 34,
                ObsKind::SpanStart {
                    hop: SpanHop::WalEnqueue,
                    op,
                    trace,
                },
            ),
            ev(
                base + 36,
                ObsKind::SpanEnd {
                    hop: SpanHop::Exec,
                    ok: true,
                    trace,
                },
            ),
            ev(
                base + 40,
                ObsKind::SpanEnd {
                    hop: SpanHop::WalEnqueue,
                    ok: true,
                    trace,
                },
            ),
            ev(
                base + 40,
                ObsKind::SpanStart {
                    hop: SpanHop::WalBarrier,
                    op,
                    trace,
                },
            ),
            ev(
                base + 50,
                ObsKind::SpanEnd {
                    hop: SpanHop::WalBarrier,
                    ok: true,
                    trace,
                },
            ),
            ev(
                base + 50,
                ObsKind::SpanStart {
                    hop: SpanHop::WalFsync,
                    op,
                    trace,
                },
            ),
            ev(
                base + 70,
                ObsKind::SpanEnd {
                    hop: SpanHop::WalFsync,
                    ok: true,
                    trace,
                },
            ),
            ev(
                base + 80,
                ObsKind::SpanEnd {
                    hop: SpanHop::ConnHandle,
                    ok: true,
                    trace,
                },
            ),
            ev(
                base + 90,
                ObsKind::SpanEnd {
                    hop: SpanHop::Request,
                    ok: true,
                    trace,
                },
            ),
        ]
    }

    #[test]
    fn stitches_a_full_wire_trace_into_one_rooted_tree() {
        let trees = stitch_traces(&full_trace(7, 1000));
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert!(t.is_well_formed(), "{t:?}");
        assert_eq!(t.root().unwrap().hop, SpanHop::Request);
        assert_eq!(t.total_ns(), 90);
        // Self times over the tree sum exactly to the root duration.
        let sum: u64 = t.hop_latencies().iter().map(|h| h.self_ns).sum();
        assert_eq!(sum, 90);
        // The certifier decision is a child of execute.
        let exec = t.spans.iter().position(|s| s.hop == SpanHop::Exec).unwrap();
        assert!(t.children[exec]
            .iter()
            .any(|&c| t.spans[c].hop == SpanHop::Certify));
    }

    #[test]
    fn interleaved_traces_separate_and_order_by_start() {
        let mut events = full_trace(2, 5000);
        events.extend(full_trace(1, 1000));
        // Shuffle deterministically: reverse.
        events.reverse();
        let trees = stitch_traces(&events);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace, 1);
        assert_eq!(trees[1].trace, 2);
        assert!(trees.iter().all(TraceTree::is_well_formed));
    }

    #[test]
    fn in_process_trace_roots_at_request_despite_missing_conn_hop() {
        let trace = 3;
        let op = OpCode::Read;
        let events = vec![
            ev(
                0,
                ObsKind::SpanStart {
                    hop: SpanHop::Request,
                    op,
                    trace,
                },
            ),
            ev(
                1,
                ObsKind::SpanStart {
                    hop: SpanHop::Queue,
                    op,
                    trace,
                },
            ),
            ev(
                5,
                ObsKind::SpanEnd {
                    hop: SpanHop::Queue,
                    ok: true,
                    trace,
                },
            ),
            ev(
                5,
                ObsKind::SpanStart {
                    hop: SpanHop::Exec,
                    op,
                    trace,
                },
            ),
            ev(
                9,
                ObsKind::SpanEnd {
                    hop: SpanHop::Exec,
                    ok: true,
                    trace,
                },
            ),
            ev(
                12,
                ObsKind::SpanEnd {
                    hop: SpanHop::Request,
                    ok: true,
                    trace,
                },
            ),
        ];
        let t = &stitch_traces(&events)[0];
        assert!(t.is_well_formed(), "{t:?}");
        // Queue and Exec skipped the absent ConnHandle and attached to
        // Request directly.
        let root = t.roots[0];
        assert_eq!(t.children[root].len(), 2);
        let sum: u64 = t.hop_latencies().iter().map(|h| h.self_ns).sum();
        assert_eq!(sum, 12);
    }

    #[test]
    fn orphan_end_becomes_a_stub_not_a_panic() {
        let events = vec![ev(
            9,
            ObsKind::SpanEnd {
                hop: SpanHop::Exec,
                ok: false,
                trace: 8,
            },
        )];
        let t = &stitch_traces(&events)[0];
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].duration_ns(), 0);
        assert_eq!(t.spans[0].ok, Some(false));
        // A stub is closed but the tree is still renderable and its
        // latency attribution is zero, not garbage.
        assert_eq!(t.hop_latencies()[0].self_ns, 0);
        assert!(!t.render().is_empty());
    }

    #[test]
    fn unclosed_span_is_not_well_formed() {
        let events = vec![ev(
            1,
            ObsKind::SpanStart {
                hop: SpanHop::Request,
                op: OpCode::Commit,
                trace: 5,
            },
        )];
        let t = &stitch_traces(&events)[0];
        assert!(!t.is_well_formed());
        assert_eq!(t.total_ns(), 0);
    }
}
