//! JSONL serialization of event streams.
//!
//! Hand-written in the same dependency-free spirit as
//! `ks-protocol::wire` — no `serde_json`, a stable format, and an exact
//! round-trip. One event per line:
//!
//! ```text
//! {"ts":1201,"shard":0,"txn":3,"kind":"version_assigned","entity":1,"version":4,"forced":false}
//! ```
//!
//! Every value the encoder emits is an unsigned integer, a boolean, or one
//! of a fixed set of bare-word strings (kind and op names), so the parser
//! is a small exact-match scanner, not a general JSON implementation. It
//! rejects anything the encoder would not produce.

use crate::event::{ObsEvent, ObsKind, OpCode, SpanHop};
use std::fmt::Write as _;

/// A malformed JSONL document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line the error was detected at (0 for stream-level).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jsonl error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Encode one event as a single JSON object (no trailing newline).
pub fn event_to_json(ev: &ObsEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"ts\":{},\"shard\":{},\"txn\":{},\"kind\":\"{}\"",
        ev.ts,
        ev.shard,
        ev.txn,
        ev.kind.name()
    );
    match ev.kind {
        ObsKind::SessionAdmit
        | ObsKind::SessionShed
        | ObsKind::TxnBegin
        | ObsKind::TxnValidated
        | ObsKind::TxnCommitted
        | ObsKind::TxnAborted
        | ObsKind::SimBegin
        | ObsKind::SimCommit
        | ObsKind::SimAbort => {}
        ObsKind::Enqueue { op } => {
            let _ = write!(s, ",\"op\":\"{}\"", op.name());
        }
        ObsKind::Execute { op, queue_ns } => {
            let _ = write!(s, ",\"op\":\"{}\",\"queue_ns\":{queue_ns}", op.name());
        }
        ObsKind::Reply { op, ok, exec_ns } => {
            let _ = write!(
                s,
                ",\"op\":\"{}\",\"ok\":{ok},\"exec_ns\":{exec_ns}",
                op.name()
            );
        }
        ObsKind::CandidatesConsidered { entity, count } => {
            let _ = write!(s, ",\"entity\":{entity},\"count\":{count}");
        }
        ObsKind::VersionAssigned {
            entity,
            version,
            forced,
        } => {
            let _ = write!(
                s,
                ",\"entity\":{entity},\"version\":{version},\"forced\":{forced}"
            );
        }
        ObsKind::ValidationUnsat { clause } => {
            let _ = write!(s, ",\"clause\":{clause}");
        }
        ObsKind::ReEvalTriggered { entity, version } => {
            let _ = write!(s, ",\"entity\":{entity},\"version\":{version}");
        }
        ObsKind::ReAssigned { holder, entity }
        | ObsKind::ReEvalAbort { holder, entity }
        | ObsKind::ReassignFailed { holder, entity } => {
            let _ = write!(s, ",\"holder\":{holder},\"entity\":{entity}");
        }
        ObsKind::CascadeEdge { from, to, entity } => {
            let _ = write!(s, ",\"from\":{from},\"to\":{to},\"entity\":{entity}");
        }
        ObsKind::ConnOpened { conn } | ObsKind::ConnClosed { conn } => {
            let _ = write!(s, ",\"conn\":{conn}");
        }
        ObsKind::NetRetry {
            op,
            attempt,
            delay_ns,
        } => {
            let _ = write!(
                s,
                ",\"op\":\"{}\",\"attempt\":{attempt},\"delay_ns\":{delay_ns}",
                op.name()
            );
        }
        ObsKind::NetBatch { ops } => {
            let _ = write!(s, ",\"ops\":{ops}");
        }
        ObsKind::WorkerDrain { n } => {
            let _ = write!(s, ",\"n\":{n}");
        }
        ObsKind::WalAppend { bytes } => {
            let _ = write!(s, ",\"bytes\":{bytes}");
        }
        ObsKind::WalFsync { records, sync_ns } => {
            let _ = write!(s, ",\"records\":{records},\"sync_ns\":{sync_ns}");
        }
        ObsKind::GroupCommit { n } => {
            let _ = write!(s, ",\"n\":{n}");
        }
        ObsKind::RecoveryReplay { writes, committed } => {
            let _ = write!(s, ",\"writes\":{writes},\"committed\":{committed}");
        }
        ObsKind::SpanStart { hop, op, trace } => {
            let _ = write!(
                s,
                ",\"hop\":\"{}\",\"op\":\"{}\",\"trace\":{trace}",
                hop.name(),
                op.name()
            );
        }
        ObsKind::SpanEnd { hop, ok, trace } => {
            let _ = write!(
                s,
                ",\"hop\":\"{}\",\"ok\":{ok},\"trace\":{trace}",
                hop.name()
            );
        }
        ObsKind::TelemetryDelta { seq, windows } => {
            let _ = write!(s, ",\"seq\":{seq},\"windows\":{windows}");
        }
        ObsKind::SimRead { entity } | ObsKind::SimWrite { entity } => {
            let _ = write!(s, ",\"entity\":{entity}");
        }
    }
    s.push('}');
    s
}

/// Encode a stream as JSONL (one event per line, trailing newline).
pub fn to_jsonl(events: &[ObsEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        out.push_str(&event_to_json(ev));
        out.push('\n');
    }
    out
}

/// The flat key/value pairs of one encoded object.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
    line: usize,
}

impl<'a> Fields<'a> {
    /// Split `{"k":v,...}` into raw pairs. Values never contain `,` `:`
    /// `{` `}` (integers, booleans, bare-word strings), so splitting on
    /// commas is exact for this format.
    fn parse(line_no: usize, text: &'a str) -> Result<Fields<'a>, JsonError> {
        let e = |m: String| JsonError {
            line: line_no,
            message: m,
        };
        let body = text
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| e(format!("expected {{…}}, got {text:?}")))?;
        let mut pairs = Vec::new();
        for part in body.split(',') {
            let (k, v) = part
                .split_once(':')
                .ok_or_else(|| e(format!("expected \"key\":value, got {part:?}")))?;
            let k = k
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| e(format!("unquoted key {k:?}")))?;
            pairs.push((k, v));
        }
        Ok(Fields {
            pairs,
            line: line_no,
        })
    }

    fn err(&self, m: String) -> JsonError {
        JsonError {
            line: self.line,
            message: m,
        }
    }

    fn raw(&self, key: &str) -> Result<&'a str, JsonError> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .ok_or_else(|| self.err(format!("missing field {key:?}")))
    }

    fn u64(&self, key: &str) -> Result<u64, JsonError> {
        let v = self.raw(key)?;
        v.parse()
            .map_err(|_| self.err(format!("field {key:?}: expected integer, got {v:?}")))
    }

    fn u32(&self, key: &str) -> Result<u32, JsonError> {
        let v = self.raw(key)?;
        v.parse()
            .map_err(|_| self.err(format!("field {key:?}: expected u32, got {v:?}")))
    }

    fn bool(&self, key: &str) -> Result<bool, JsonError> {
        match self.raw(key)? {
            "true" => Ok(true),
            "false" => Ok(false),
            v => Err(self.err(format!("field {key:?}: expected bool, got {v:?}"))),
        }
    }

    fn string(&self, key: &str) -> Result<&'a str, JsonError> {
        let v = self.raw(key)?;
        v.strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| self.err(format!("field {key:?}: expected string, got {v:?}")))
    }

    fn op(&self) -> Result<OpCode, JsonError> {
        let name = self.string("op")?;
        OpCode::from_name(name).ok_or_else(|| self.err(format!("unknown op {name:?}")))
    }

    fn hop(&self) -> Result<SpanHop, JsonError> {
        let name = self.string("hop")?;
        SpanHop::from_name(name).ok_or_else(|| self.err(format!("unknown hop {name:?}")))
    }
}

/// Decode one JSON object line back into an event.
pub fn event_from_json(line_no: usize, text: &str) -> Result<ObsEvent, JsonError> {
    let f = Fields::parse(line_no, text.trim())?;
    let kind_name = f.string("kind")?;
    let kind = match kind_name {
        "session_admit" => ObsKind::SessionAdmit,
        "session_shed" => ObsKind::SessionShed,
        "enqueue" => ObsKind::Enqueue { op: f.op()? },
        "execute" => ObsKind::Execute {
            op: f.op()?,
            queue_ns: f.u64("queue_ns")?,
        },
        "reply" => ObsKind::Reply {
            op: f.op()?,
            ok: f.bool("ok")?,
            exec_ns: f.u64("exec_ns")?,
        },
        "txn_begin" => ObsKind::TxnBegin,
        "txn_validated" => ObsKind::TxnValidated,
        "txn_committed" => ObsKind::TxnCommitted,
        "txn_aborted" => ObsKind::TxnAborted,
        "candidates_considered" => ObsKind::CandidatesConsidered {
            entity: f.u32("entity")?,
            count: f.u32("count")?,
        },
        "version_assigned" => ObsKind::VersionAssigned {
            entity: f.u32("entity")?,
            version: f.u32("version")?,
            forced: f.bool("forced")?,
        },
        "validation_unsat" => ObsKind::ValidationUnsat {
            clause: f.u32("clause")?,
        },
        "re_eval_triggered" => ObsKind::ReEvalTriggered {
            entity: f.u32("entity")?,
            version: f.u32("version")?,
        },
        "re_assigned" => ObsKind::ReAssigned {
            holder: f.u32("holder")?,
            entity: f.u32("entity")?,
        },
        "re_eval_abort" => ObsKind::ReEvalAbort {
            holder: f.u32("holder")?,
            entity: f.u32("entity")?,
        },
        "reassign_failed" => ObsKind::ReassignFailed {
            holder: f.u32("holder")?,
            entity: f.u32("entity")?,
        },
        "cascade_edge" => ObsKind::CascadeEdge {
            from: f.u32("from")?,
            to: f.u32("to")?,
            entity: f.u32("entity")?,
        },
        "conn_opened" => ObsKind::ConnOpened {
            conn: f.u32("conn")?,
        },
        "conn_closed" => ObsKind::ConnClosed {
            conn: f.u32("conn")?,
        },
        "net_retry" => ObsKind::NetRetry {
            op: f.op()?,
            attempt: f.u32("attempt")?,
            delay_ns: f.u64("delay_ns")?,
        },
        "net_batch" => ObsKind::NetBatch { ops: f.u32("ops")? },
        "worker_drain" => ObsKind::WorkerDrain { n: f.u32("n")? },
        "wal_append" => ObsKind::WalAppend {
            bytes: f.u32("bytes")?,
        },
        "wal_fsync" => ObsKind::WalFsync {
            records: f.u32("records")?,
            sync_ns: f.u64("sync_ns")?,
        },
        "group_commit" => ObsKind::GroupCommit { n: f.u32("n")? },
        "recovery_replay" => ObsKind::RecoveryReplay {
            writes: f.u32("writes")?,
            committed: f.u32("committed")?,
        },
        "span_start" => ObsKind::SpanStart {
            hop: f.hop()?,
            op: f.op()?,
            trace: f.u64("trace")?,
        },
        "span_end" => ObsKind::SpanEnd {
            hop: f.hop()?,
            ok: f.bool("ok")?,
            trace: f.u64("trace")?,
        },
        "telemetry_delta" => ObsKind::TelemetryDelta {
            seq: f.u32("seq")?,
            windows: f.u32("windows")?,
        },
        "sim_begin" => ObsKind::SimBegin,
        "sim_read" => ObsKind::SimRead {
            entity: f.u32("entity")?,
        },
        "sim_write" => ObsKind::SimWrite {
            entity: f.u32("entity")?,
        },
        "sim_commit" => ObsKind::SimCommit,
        "sim_abort" => ObsKind::SimAbort,
        other => return Err(f.err(format!("unknown kind {other:?}"))),
    };
    Ok(ObsEvent {
        ts: f.u64("ts")?,
        shard: f.u32("shard")?,
        txn: f.u32("txn")?,
        kind,
    })
}

/// Decode a JSONL stream (blank lines are skipped).
pub fn from_jsonl(text: &str) -> Result<Vec<ObsEvent>, JsonError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(event_from_json(i + 1, line)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_TXN;

    #[test]
    fn encodes_the_documented_shape() {
        let ev = ObsEvent {
            ts: 1201,
            shard: 0,
            txn: 3,
            kind: ObsKind::VersionAssigned {
                entity: 1,
                version: 4,
                forced: false,
            },
        };
        assert_eq!(
            event_to_json(&ev),
            "{\"ts\":1201,\"shard\":0,\"txn\":3,\"kind\":\"version_assigned\",\
             \"entity\":1,\"version\":4,\"forced\":false}"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(event_from_json(1, "").is_err());
        assert!(event_from_json(1, "not json").is_err());
        assert!(event_from_json(1, "{\"ts\":1}").is_err());
        assert!(
            event_from_json(1, "{\"ts\":1,\"shard\":0,\"txn\":0,\"kind\":\"quantum\"}").is_err()
        );
        // Missing payload field.
        assert!(
            event_from_json(1, "{\"ts\":1,\"shard\":0,\"txn\":0,\"kind\":\"sim_read\"}").is_err()
        );
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ev = ObsEvent {
            ts: 7,
            shard: 1,
            txn: NO_TXN,
            kind: ObsKind::SessionAdmit,
        };
        let text = format!("\n{}\n\n", event_to_json(&ev));
        assert_eq!(from_jsonl(&text).unwrap(), vec![ev]);
    }
}
