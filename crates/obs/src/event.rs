//! The typed event model.
//!
//! Events are deliberately flat and integer-valued so one event packs into
//! five `u64` words (see [`ObsEvent::pack`]) and the recording hot path
//! never allocates. Ids are raw integers, not the typed ids of the other
//! crates, so `ks-obs` sits at the bottom of the dependency DAG and every
//! layer (protocol, server, sim) can emit into the same stream.

/// Sentinel for "no transaction" (service-level events).
pub const NO_TXN: u32 = u32::MAX;

/// Which service operation a lifecycle event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpCode {
    /// `define` — create a transaction.
    Define,
    /// `validate` — version assignment.
    Validate,
    /// `read`.
    Read,
    /// `write`.
    Write,
    /// `commit`.
    Commit,
    /// `abort`.
    Abort,
    /// statistics snapshot.
    Stats,
    /// `run_batch` — a read/write burst executed as one request.
    Batch,
}

impl OpCode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            OpCode::Define => "define",
            OpCode::Validate => "validate",
            OpCode::Read => "read",
            OpCode::Write => "write",
            OpCode::Commit => "commit",
            OpCode::Abort => "abort",
            OpCode::Stats => "stats",
            OpCode::Batch => "batch",
        }
    }

    fn code(self) -> u32 {
        match self {
            OpCode::Define => 0,
            OpCode::Validate => 1,
            OpCode::Read => 2,
            OpCode::Write => 3,
            OpCode::Commit => 4,
            OpCode::Abort => 5,
            OpCode::Stats => 6,
            OpCode::Batch => 7,
        }
    }

    fn from_code(c: u32) -> Option<OpCode> {
        Some(match c {
            0 => OpCode::Define,
            1 => OpCode::Validate,
            2 => OpCode::Read,
            3 => OpCode::Write,
            4 => OpCode::Commit,
            5 => OpCode::Abort,
            6 => OpCode::Stats,
            7 => OpCode::Batch,
            _ => return None,
        })
    }

    /// Parse a wire name.
    pub fn from_name(s: &str) -> Option<OpCode> {
        Some(match s {
            "define" => OpCode::Define,
            "validate" => OpCode::Validate,
            "read" => OpCode::Read,
            "write" => OpCode::Write,
            "commit" => OpCode::Commit,
            "abort" => OpCode::Abort,
            "stats" => OpCode::Stats,
            "batch" => OpCode::Batch,
            _ => return None,
        })
    }
}

/// A distributed-trace hop: where in the request pipeline a span was
/// recorded. The hop taxonomy is fixed, so the span tree's shape is
/// encoded here once — [`SpanHop::parent`] gives the static topology the
/// stitcher uses — and a span event only needs `(trace, hop)` to place
/// itself, never an explicit span-id chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanHop {
    /// The whole request as the originator saw it: send → reply (remote
    /// client) or call → reply (in-process session).
    Request,
    /// Server connection handler: frame decoded → response bytes ready.
    ConnHandle,
    /// Shard queue residency: enqueued → dequeued by the worker.
    Queue,
    /// Shard worker execution: dequeue → protocol result.
    Exec,
    /// Certifier decision inside execution (validate / commit); the end
    /// event's `ok` carries the decision outcome.
    Certify,
    /// Group commit: ticket enqueued by the worker → picked up by the
    /// flusher.
    WalEnqueue,
    /// Group commit: flusher barrier open (batching window) → fsync
    /// issued.
    WalBarrier,
    /// Durability barrier: fsync start → fsync complete.
    WalFsync,
}

impl SpanHop {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            SpanHop::Request => "request",
            SpanHop::ConnHandle => "conn_handle",
            SpanHop::Queue => "queue",
            SpanHop::Exec => "exec",
            SpanHop::Certify => "certify",
            SpanHop::WalEnqueue => "wal_enqueue",
            SpanHop::WalBarrier => "wal_barrier",
            SpanHop::WalFsync => "wal_fsync",
        }
    }

    /// Parse a wire name.
    pub fn from_name(s: &str) -> Option<SpanHop> {
        Some(match s {
            "request" => SpanHop::Request,
            "conn_handle" => SpanHop::ConnHandle,
            "queue" => SpanHop::Queue,
            "exec" => SpanHop::Exec,
            "certify" => SpanHop::Certify,
            "wal_enqueue" => SpanHop::WalEnqueue,
            "wal_barrier" => SpanHop::WalBarrier,
            "wal_fsync" => SpanHop::WalFsync,
            _ => return None,
        })
    }

    /// Packed code.
    pub fn code(self) -> u32 {
        match self {
            SpanHop::Request => 0,
            SpanHop::ConnHandle => 1,
            SpanHop::Queue => 2,
            SpanHop::Exec => 3,
            SpanHop::Certify => 4,
            SpanHop::WalEnqueue => 5,
            SpanHop::WalBarrier => 6,
            SpanHop::WalFsync => 7,
        }
    }

    /// Decode a packed code.
    pub fn from_code(c: u32) -> Option<SpanHop> {
        Some(match c {
            0 => SpanHop::Request,
            1 => SpanHop::ConnHandle,
            2 => SpanHop::Queue,
            3 => SpanHop::Exec,
            4 => SpanHop::Certify,
            5 => SpanHop::WalEnqueue,
            6 => SpanHop::WalBarrier,
            7 => SpanHop::WalFsync,
            _ => return None,
        })
    }

    /// The hop's static parent in the span topology, `None` for the
    /// root. A stitched trace may omit intermediate hops (an in-process
    /// request has no `ConnHandle`); the stitcher attaches a span to its
    /// nearest *present* ancestor.
    pub fn parent(self) -> Option<SpanHop> {
        match self {
            SpanHop::Request => None,
            SpanHop::ConnHandle => Some(SpanHop::Request),
            SpanHop::Queue | SpanHop::Exec => Some(SpanHop::ConnHandle),
            SpanHop::Certify => Some(SpanHop::Exec),
            // WAL hops overlap the worker's deferred-ack window, not the
            // execute interval, so they nest under the connection handler
            // (the conn thread blocks until the flusher acks).
            SpanHop::WalEnqueue | SpanHop::WalBarrier | SpanHop::WalFsync => {
                Some(SpanHop::ConnHandle)
            }
        }
    }

    /// Every hop, in topology order.
    pub fn all() -> [SpanHop; 8] {
        [
            SpanHop::Request,
            SpanHop::ConnHandle,
            SpanHop::Queue,
            SpanHop::Exec,
            SpanHop::Certify,
            SpanHop::WalEnqueue,
            SpanHop::WalBarrier,
            SpanHop::WalFsync,
        ]
    }
}

/// What happened. The taxonomy covers the three layers that emit:
///
/// * **request lifecycle** (server): [`ObsKind::Enqueue`] when a session
///   posts a request, [`ObsKind::Execute`] when the shard worker dequeues
///   it (carrying the queue wait), [`ObsKind::Reply`] when the worker
///   finishes (carrying the execute time);
/// * **transaction lifecycle** (protocol): begin / validated / committed /
///   aborted, plus session admission at the service edge;
/// * **protocol decisions** (the Figure 3/4 machinery): how many candidate
///   versions were considered per entity, which version was assigned (and
///   whether it was forced by a test hook), which CNF clause made a
///   validation unsatisfiable, each re-eval trigger, each re-assign /
///   re-eval abort, and each cascade edge (doomed author → dependent
///   sibling);
/// * **network lifecycle** (`ks-net`): connection open/close on the
///   server and retry/backoff decisions on the remote client;
/// * **simulation ops** (sim): the bridged `TraceEvent` stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsKind {
    /// A session was admitted by the service.
    SessionAdmit,
    /// A session was shed by admission control.
    SessionShed,
    /// A session posted a request onto a shard queue.
    Enqueue {
        /// The operation.
        op: OpCode,
    },
    /// The shard worker dequeued a request.
    Execute {
        /// The operation.
        op: OpCode,
        /// Nanoseconds the request sat in the shard queue.
        queue_ns: u64,
    },
    /// The shard worker finished a request.
    Reply {
        /// The operation.
        op: OpCode,
        /// Did the call succeed (`Ok`)?
        ok: bool,
        /// Nanoseconds spent executing (dequeue → reply).
        exec_ns: u64,
    },
    /// A transaction was defined.
    TxnBegin,
    /// A transaction passed validation (versions assigned).
    TxnValidated,
    /// A transaction committed.
    TxnCommitted,
    /// A transaction aborted (explicitly, by re-eval, or by cascade).
    TxnAborted,
    /// Validation considered a candidate version set for one entity.
    CandidatesConsidered {
        /// The entity (shard-local id).
        entity: u32,
        /// Number of allowed candidate versions.
        count: u32,
    },
    /// A version was assigned to a transaction's input set.
    VersionAssigned {
        /// The entity.
        entity: u32,
        /// The assigned version's index in the entity's chain.
        version: u32,
        /// True when injected by the `force_assign` test hook rather than
        /// chosen by the solver — the smoking gun in a violation dump.
        forced: bool,
    },
    /// Validation found no satisfying assignment. `clause` is the index of
    /// the first input-CNF clause no candidate combination can satisfy, or
    /// `u32::MAX` when every clause is individually satisfiable and the
    /// conflict is cross-clause.
    ValidationUnsat {
        /// Failing clause index (`u32::MAX` = cross-clause conflict).
        clause: u32,
    },
    /// A write triggered the Figure 4 re-eval procedure.
    ReEvalTriggered {
        /// The written entity.
        entity: u32,
        /// The new version's index in the entity's chain.
        version: u32,
    },
    /// Re-eval salvaged a holder by re-assignment.
    ReAssigned {
        /// The salvaged sibling.
        holder: u32,
        /// The entity whose version went stale.
        entity: u32,
    },
    /// Re-eval aborted a holder that had already read the stale version.
    ReEvalAbort {
        /// The aborted sibling.
        holder: u32,
        /// The entity whose version went stale.
        entity: u32,
    },
    /// Re-assignment failed and the holder was aborted.
    ReassignFailed {
        /// The aborted sibling.
        holder: u32,
        /// The entity whose version went stale.
        entity: u32,
    },
    /// An abort cascaded: `from`'s doomed versions forced `to` down.
    CascadeEdge {
        /// The transaction whose versions are doomed.
        from: u32,
        /// The dependent sibling that was aborted or re-assigned.
        to: u32,
        /// The entity carrying the dependency.
        entity: u32,
    },
    /// Network: a TCP connection was accepted and its session admitted.
    ConnOpened {
        /// Server-assigned connection id.
        conn: u32,
    },
    /// Network: a connection closed (client bye, drain, or error).
    ConnClosed {
        /// Server-assigned connection id.
        conn: u32,
    },
    /// Network: a remote client backed off and retried a transient reply.
    NetRetry {
        /// The operation being retried.
        op: OpCode,
        /// 1-based retry attempt number.
        attempt: u32,
        /// Nanoseconds of jittered backoff slept before this attempt.
        delay_ns: u64,
    },
    /// Network: a remote client sent a `Batch` frame.
    NetBatch {
        /// Number of read/write ops packed into the frame.
        ops: u32,
    },
    /// A shard worker woke up and drained a bounded batch of queued
    /// requests in one pass. Timing-dependent (the count reflects queue
    /// occupancy at wakeup), so deterministic trace comparisons must
    /// ignore it.
    WorkerDrain {
        /// Number of requests drained this wakeup.
        n: u32,
    },
    /// Durability: a record was appended to the write-ahead log (not
    /// yet durable).
    WalAppend {
        /// Encoded frame length in bytes.
        bytes: u32,
    },
    /// Durability: an fsync barrier completed on the log.
    WalFsync {
        /// Records the barrier covered (the flush queue depth drained).
        records: u32,
        /// Nanoseconds the barrier took. Timing-dependent, so
        /// deterministic trace comparisons must zero it.
        sync_ns: u64,
    },
    /// Durability: the group-commit flusher amortized one fsync across
    /// a batch of concurrent commit acknowledgements.
    GroupCommit {
        /// Commits acknowledged by this single fsync.
        n: u32,
    },
    /// Durability: recovery replayed the log onto one shard's state at
    /// service startup.
    RecoveryReplay {
        /// Committed writes applied to the shard's base state.
        writes: u32,
        /// Finally-committed transactions recovered on the shard.
        committed: u32,
    },
    /// Tracing: a span opened at a pipeline hop. `trace` is the
    /// end-to-end trace id minted by the sampling originator (never 0 —
    /// 0 on the wire means "unsampled").
    SpanStart {
        /// Where in the pipeline.
        hop: SpanHop,
        /// The operation the traced request carries.
        op: OpCode,
        /// The trace id.
        trace: u64,
    },
    /// Tracing: a span closed at a pipeline hop.
    SpanEnd {
        /// Where in the pipeline.
        hop: SpanHop,
        /// Did the hop succeed? For [`SpanHop::Certify`] this is the
        /// certifier's decision outcome.
        ok: bool,
        /// The trace id.
        trace: u64,
    },
    /// Telemetry: a windowed snapshot delta was exported (over the wire
    /// or to an in-process puller).
    TelemetryDelta {
        /// The puller's cursor after this delta (next window sequence).
        seq: u32,
        /// Windows carried by the delta.
        windows: u32,
    },
    /// Simulation: transaction (re)started.
    SimBegin,
    /// Simulation: a read executed.
    SimRead {
        /// The entity.
        entity: u32,
    },
    /// Simulation: a write executed.
    SimWrite {
        /// The entity.
        entity: u32,
    },
    /// Simulation: commit.
    SimCommit,
    /// Simulation: abort.
    SimAbort,
}

impl ObsKind {
    /// Stable wire name (also the JSONL `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            ObsKind::SessionAdmit => "session_admit",
            ObsKind::SessionShed => "session_shed",
            ObsKind::Enqueue { .. } => "enqueue",
            ObsKind::Execute { .. } => "execute",
            ObsKind::Reply { .. } => "reply",
            ObsKind::TxnBegin => "txn_begin",
            ObsKind::TxnValidated => "txn_validated",
            ObsKind::TxnCommitted => "txn_committed",
            ObsKind::TxnAborted => "txn_aborted",
            ObsKind::CandidatesConsidered { .. } => "candidates_considered",
            ObsKind::VersionAssigned { .. } => "version_assigned",
            ObsKind::ValidationUnsat { .. } => "validation_unsat",
            ObsKind::ReEvalTriggered { .. } => "re_eval_triggered",
            ObsKind::ReAssigned { .. } => "re_assigned",
            ObsKind::ReEvalAbort { .. } => "re_eval_abort",
            ObsKind::ReassignFailed { .. } => "reassign_failed",
            ObsKind::CascadeEdge { .. } => "cascade_edge",
            ObsKind::ConnOpened { .. } => "conn_opened",
            ObsKind::ConnClosed { .. } => "conn_closed",
            ObsKind::NetRetry { .. } => "net_retry",
            ObsKind::NetBatch { .. } => "net_batch",
            ObsKind::WorkerDrain { .. } => "worker_drain",
            ObsKind::WalAppend { .. } => "wal_append",
            ObsKind::WalFsync { .. } => "wal_fsync",
            ObsKind::GroupCommit { .. } => "group_commit",
            ObsKind::RecoveryReplay { .. } => "recovery_replay",
            ObsKind::SpanStart { .. } => "span_start",
            ObsKind::SpanEnd { .. } => "span_end",
            ObsKind::TelemetryDelta { .. } => "telemetry_delta",
            ObsKind::SimBegin => "sim_begin",
            ObsKind::SimRead { .. } => "sim_read",
            ObsKind::SimWrite { .. } => "sim_write",
            ObsKind::SimCommit => "sim_commit",
            ObsKind::SimAbort => "sim_abort",
        }
    }

    /// `(tag, a, b, c)` — the packed payload.
    fn fields(self) -> (u32, u32, u32, u64) {
        match self {
            ObsKind::SessionAdmit => (0, 0, 0, 0),
            ObsKind::SessionShed => (1, 0, 0, 0),
            ObsKind::Enqueue { op } => (2, op.code(), 0, 0),
            ObsKind::Execute { op, queue_ns } => (3, op.code(), 0, queue_ns),
            ObsKind::Reply { op, ok, exec_ns } => (4, op.code(), ok as u32, exec_ns),
            ObsKind::TxnBegin => (5, 0, 0, 0),
            ObsKind::TxnValidated => (6, 0, 0, 0),
            ObsKind::TxnCommitted => (7, 0, 0, 0),
            ObsKind::TxnAborted => (8, 0, 0, 0),
            ObsKind::CandidatesConsidered { entity, count } => (9, entity, count, 0),
            ObsKind::VersionAssigned {
                entity,
                version,
                forced,
            } => (10, entity, version, forced as u64),
            ObsKind::ValidationUnsat { clause } => (11, clause, 0, 0),
            ObsKind::ReEvalTriggered { entity, version } => (12, entity, version, 0),
            ObsKind::ReAssigned { holder, entity } => (13, holder, entity, 0),
            ObsKind::ReEvalAbort { holder, entity } => (14, holder, entity, 0),
            ObsKind::ReassignFailed { holder, entity } => (15, holder, entity, 0),
            ObsKind::CascadeEdge { from, to, entity } => (16, from, to, entity as u64),
            ObsKind::ConnOpened { conn } => (22, conn, 0, 0),
            ObsKind::ConnClosed { conn } => (23, conn, 0, 0),
            ObsKind::NetRetry {
                op,
                attempt,
                delay_ns,
            } => (24, op.code(), attempt, delay_ns),
            ObsKind::NetBatch { ops } => (25, ops, 0, 0),
            ObsKind::WorkerDrain { n } => (26, n, 0, 0),
            ObsKind::WalAppend { bytes } => (27, bytes, 0, 0),
            ObsKind::WalFsync { records, sync_ns } => (28, records, 0, sync_ns),
            ObsKind::GroupCommit { n } => (29, n, 0, 0),
            ObsKind::RecoveryReplay { writes, committed } => (30, writes, committed, 0),
            ObsKind::SpanStart { hop, op, trace } => (31, hop.code(), op.code(), trace),
            ObsKind::SpanEnd { hop, ok, trace } => (32, hop.code(), ok as u32, trace),
            ObsKind::TelemetryDelta { seq, windows } => (33, seq, windows, 0),
            ObsKind::SimBegin => (17, 0, 0, 0),
            ObsKind::SimRead { entity } => (18, entity, 0, 0),
            ObsKind::SimWrite { entity } => (19, entity, 0, 0),
            ObsKind::SimCommit => (20, 0, 0, 0),
            ObsKind::SimAbort => (21, 0, 0, 0),
        }
    }

    fn from_fields(tag: u32, a: u32, b: u32, c: u64) -> Option<ObsKind> {
        Some(match tag {
            0 => ObsKind::SessionAdmit,
            1 => ObsKind::SessionShed,
            2 => ObsKind::Enqueue {
                op: OpCode::from_code(a)?,
            },
            3 => ObsKind::Execute {
                op: OpCode::from_code(a)?,
                queue_ns: c,
            },
            4 => ObsKind::Reply {
                op: OpCode::from_code(a)?,
                ok: b != 0,
                exec_ns: c,
            },
            5 => ObsKind::TxnBegin,
            6 => ObsKind::TxnValidated,
            7 => ObsKind::TxnCommitted,
            8 => ObsKind::TxnAborted,
            9 => ObsKind::CandidatesConsidered {
                entity: a,
                count: b,
            },
            10 => ObsKind::VersionAssigned {
                entity: a,
                version: b,
                forced: c != 0,
            },
            11 => ObsKind::ValidationUnsat { clause: a },
            12 => ObsKind::ReEvalTriggered {
                entity: a,
                version: b,
            },
            13 => ObsKind::ReAssigned {
                holder: a,
                entity: b,
            },
            14 => ObsKind::ReEvalAbort {
                holder: a,
                entity: b,
            },
            15 => ObsKind::ReassignFailed {
                holder: a,
                entity: b,
            },
            16 => ObsKind::CascadeEdge {
                from: a,
                to: b,
                entity: c as u32,
            },
            22 => ObsKind::ConnOpened { conn: a },
            23 => ObsKind::ConnClosed { conn: a },
            24 => ObsKind::NetRetry {
                op: OpCode::from_code(a)?,
                attempt: b,
                delay_ns: c,
            },
            25 => ObsKind::NetBatch { ops: a },
            26 => ObsKind::WorkerDrain { n: a },
            27 => ObsKind::WalAppend { bytes: a },
            28 => ObsKind::WalFsync {
                records: a,
                sync_ns: c,
            },
            29 => ObsKind::GroupCommit { n: a },
            30 => ObsKind::RecoveryReplay {
                writes: a,
                committed: b,
            },
            31 => ObsKind::SpanStart {
                hop: SpanHop::from_code(a)?,
                op: OpCode::from_code(b)?,
                trace: c,
            },
            32 => ObsKind::SpanEnd {
                hop: SpanHop::from_code(a)?,
                ok: b != 0,
                trace: c,
            },
            33 => ObsKind::TelemetryDelta { seq: a, windows: b },
            17 => ObsKind::SimBegin,
            18 => ObsKind::SimRead { entity: a },
            19 => ObsKind::SimWrite { entity: a },
            20 => ObsKind::SimCommit,
            21 => ObsKind::SimAbort,
            _ => return None,
        })
    }
}

/// One recorded event: a timestamp, a source coordinate, and a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Nanoseconds since the recorder's epoch (simulation ticks for
    /// bridged sim events — the streams are merged by value, so bridge
    /// one source at a time or treat `ts` as per-layer).
    pub ts: u64,
    /// The shard (or `u32::MAX` for unsharded sources).
    pub shard: u32,
    /// The acting transaction's shard-local index, or [`NO_TXN`].
    pub txn: u32,
    /// What happened.
    pub kind: ObsKind,
}

impl ObsEvent {
    /// Pack into five words for the ring buffer.
    pub fn pack(&self) -> [u64; 5] {
        let (tag, a, b, c) = self.kind.fields();
        [
            self.ts,
            (u64::from(self.shard) << 32) | u64::from(self.txn),
            (u64::from(tag) << 32) | u64::from(a),
            u64::from(b),
            c,
        ]
    }

    /// Unpack five words; `None` when the tag is unknown (e.g. a torn or
    /// zero-initialized slot).
    pub fn unpack(words: [u64; 5]) -> Option<ObsEvent> {
        let kind = ObsKind::from_fields(
            (words[2] >> 32) as u32,
            words[2] as u32,
            words[3] as u32,
            words[4],
        )?;
        Some(ObsEvent {
            ts: words[0],
            shard: (words[1] >> 32) as u32,
            txn: words[1] as u32,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn all_kinds() -> Vec<ObsKind> {
        vec![
            ObsKind::SessionAdmit,
            ObsKind::SessionShed,
            ObsKind::Enqueue { op: OpCode::Define },
            ObsKind::Execute {
                op: OpCode::Validate,
                queue_ns: 12_345,
            },
            ObsKind::Reply {
                op: OpCode::Commit,
                ok: true,
                exec_ns: 99,
            },
            ObsKind::Reply {
                op: OpCode::Abort,
                ok: false,
                exec_ns: 0,
            },
            ObsKind::TxnBegin,
            ObsKind::TxnValidated,
            ObsKind::TxnCommitted,
            ObsKind::TxnAborted,
            ObsKind::CandidatesConsidered {
                entity: 3,
                count: 17,
            },
            ObsKind::VersionAssigned {
                entity: 1,
                version: 4,
                forced: true,
            },
            ObsKind::ValidationUnsat { clause: 2 },
            ObsKind::ValidationUnsat { clause: u32::MAX },
            ObsKind::ReEvalTriggered {
                entity: 0,
                version: 7,
            },
            ObsKind::ReAssigned {
                holder: 2,
                entity: 0,
            },
            ObsKind::ReEvalAbort {
                holder: 5,
                entity: 1,
            },
            ObsKind::ReassignFailed {
                holder: 6,
                entity: 2,
            },
            ObsKind::CascadeEdge {
                from: 1,
                to: 9,
                entity: 3,
            },
            ObsKind::ConnOpened { conn: 3 },
            ObsKind::ConnClosed { conn: u32::MAX },
            ObsKind::NetRetry {
                op: OpCode::Commit,
                attempt: 4,
                delay_ns: 2_500_000,
            },
            ObsKind::NetBatch { ops: 6 },
            ObsKind::WorkerDrain { n: 32 },
            ObsKind::WalAppend { bytes: 33 },
            ObsKind::WalFsync {
                records: 12,
                sync_ns: 1_250_000,
            },
            ObsKind::GroupCommit { n: 8 },
            ObsKind::RecoveryReplay {
                writes: 40,
                committed: 13,
            },
            ObsKind::Enqueue { op: OpCode::Batch },
            ObsKind::SpanStart {
                hop: SpanHop::Request,
                op: OpCode::Commit,
                trace: u64::MAX / 3,
            },
            ObsKind::SpanEnd {
                hop: SpanHop::Certify,
                ok: true,
                trace: 1,
            },
            ObsKind::SpanEnd {
                hop: SpanHop::WalFsync,
                ok: false,
                trace: u64::MAX,
            },
            ObsKind::TelemetryDelta {
                seq: 42,
                windows: u32::MAX,
            },
            ObsKind::SimBegin,
            ObsKind::SimRead { entity: 8 },
            ObsKind::SimWrite { entity: 9 },
            ObsKind::SimCommit,
            ObsKind::SimAbort,
        ]
    }

    #[test]
    fn pack_round_trips_every_kind() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let ev = ObsEvent {
                ts: 1_000 + i as u64,
                shard: i as u32,
                txn: if i % 3 == 0 { NO_TXN } else { i as u32 },
                kind,
            };
            assert_eq!(ObsEvent::unpack(ev.pack()), Some(ev), "{kind:?}");
        }
    }

    #[test]
    fn zeroed_slot_is_a_session_admit_tag_but_unknown_tag_is_none() {
        // A zeroed slot decodes as tag 0; rings guard against this with
        // the seq field, not the payload. Unknown tags still fail closed.
        assert!(ObsEvent::unpack([0, 0, u64::from(u32::MAX) << 32, 0, 0]).is_none());
    }
}
