//! JSONL wire round-trip: every event kind survives encode → decode
//! exactly, through both the packed ring representation and the JSONL
//! text format. This is the CI gate `scripts/check.sh` runs by name.

use ks_obs::{
    event_from_json, event_to_json, from_jsonl, to_jsonl, ObsEvent, ObsKind, OpCode, SpanHop,
};

/// One event of every kind, with payload values that exercise edge cases
/// (zero, `u32::MAX` sentinels, large ns counts, both booleans).
fn corpus() -> Vec<ObsEvent> {
    let kinds = vec![
        ObsKind::SessionAdmit,
        ObsKind::SessionShed,
        ObsKind::Enqueue { op: OpCode::Define },
        ObsKind::Enqueue { op: OpCode::Stats },
        ObsKind::Execute {
            op: OpCode::Validate,
            queue_ns: u64::MAX / 2,
        },
        ObsKind::Reply {
            op: OpCode::Write,
            ok: true,
            exec_ns: 1,
        },
        ObsKind::Reply {
            op: OpCode::Read,
            ok: false,
            exec_ns: 0,
        },
        ObsKind::TxnBegin,
        ObsKind::TxnValidated,
        ObsKind::TxnCommitted,
        ObsKind::TxnAborted,
        ObsKind::CandidatesConsidered {
            entity: 0,
            count: u32::MAX,
        },
        ObsKind::VersionAssigned {
            entity: 7,
            version: 0,
            forced: true,
        },
        ObsKind::VersionAssigned {
            entity: 7,
            version: 3,
            forced: false,
        },
        ObsKind::ValidationUnsat { clause: 5 },
        ObsKind::ValidationUnsat { clause: u32::MAX },
        ObsKind::ReEvalTriggered {
            entity: 2,
            version: 9,
        },
        ObsKind::ReAssigned {
            holder: 4,
            entity: 2,
        },
        ObsKind::ReEvalAbort {
            holder: 1,
            entity: 0,
        },
        ObsKind::ReassignFailed {
            holder: 3,
            entity: 1,
        },
        ObsKind::CascadeEdge {
            from: 2,
            to: 6,
            entity: 0,
        },
        ObsKind::ConnOpened { conn: 0 },
        ObsKind::ConnOpened { conn: u32::MAX },
        ObsKind::ConnClosed { conn: 17 },
        ObsKind::NetRetry {
            op: OpCode::Validate,
            attempt: 1,
            delay_ns: 0,
        },
        ObsKind::NetRetry {
            op: OpCode::Define,
            attempt: u32::MAX,
            delay_ns: u64::MAX / 2,
        },
        ObsKind::NetBatch { ops: 0 },
        ObsKind::NetBatch { ops: u32::MAX },
        ObsKind::WorkerDrain { n: 1 },
        ObsKind::WorkerDrain { n: u32::MAX },
        ObsKind::WalAppend { bytes: 0 },
        ObsKind::WalAppend { bytes: u32::MAX },
        ObsKind::WalFsync {
            records: 0,
            sync_ns: u64::MAX / 2,
        },
        ObsKind::WalFsync {
            records: u32::MAX,
            sync_ns: 0,
        },
        ObsKind::GroupCommit { n: 1 },
        ObsKind::GroupCommit { n: u32::MAX },
        ObsKind::RecoveryReplay {
            writes: 0,
            committed: u32::MAX,
        },
        ObsKind::RecoveryReplay {
            writes: u32::MAX,
            committed: 0,
        },
        ObsKind::Enqueue { op: OpCode::Batch },
        ObsKind::Reply {
            op: OpCode::Batch,
            ok: true,
            exec_ns: 42,
        },
        ObsKind::SimBegin,
        ObsKind::SimRead { entity: 11 },
        ObsKind::SimWrite { entity: 12 },
        ObsKind::SimCommit,
        ObsKind::SimAbort,
        ObsKind::TelemetryDelta {
            seq: 0,
            windows: u32::MAX,
        },
        ObsKind::TelemetryDelta {
            seq: u32::MAX,
            windows: 0,
        },
    ];
    // Every span hop, as both a start (each op exercised somewhere) and
    // an end (both outcomes), with edge-case trace ids.
    let kinds: Vec<ObsKind> = kinds
        .into_iter()
        .chain(SpanHop::all().into_iter().enumerate().flat_map(|(i, hop)| {
            let ops = [
                OpCode::Define,
                OpCode::Validate,
                OpCode::Read,
                OpCode::Write,
                OpCode::Commit,
                OpCode::Abort,
                OpCode::Stats,
                OpCode::Batch,
            ];
            [
                ObsKind::SpanStart {
                    hop,
                    op: ops[i % ops.len()],
                    trace: if i % 2 == 0 { 1 } else { u64::MAX },
                },
                ObsKind::SpanEnd {
                    hop,
                    ok: i % 2 == 0,
                    trace: u64::MAX / (i as u64 + 1),
                },
            ]
        }))
        .collect();
    kinds
        .into_iter()
        .enumerate()
        .map(|(i, kind)| ObsEvent {
            ts: i as u64 * 1_000_003,
            shard: (i % 5) as u32,
            txn: if i % 7 == 0 { u32::MAX } else { i as u32 },
            kind,
        })
        .collect()
}

#[test]
fn jsonl_round_trips_every_kind() {
    let events = corpus();
    let text = to_jsonl(&events);
    let back = from_jsonl(&text).expect("decode");
    assert_eq!(events, back);
}

#[test]
fn single_lines_round_trip() {
    for ev in corpus() {
        let line = event_to_json(&ev);
        assert_eq!(event_from_json(1, &line).expect(&line), ev, "{line}");
    }
}

#[test]
fn packed_and_jsonl_agree() {
    // Ring packing and JSONL are two encodings of the same event; going
    // through either must yield the same value.
    for ev in corpus() {
        let via_pack = ObsEvent::unpack(ev.pack()).expect("pack");
        let via_json = event_from_json(1, &event_to_json(&ev)).expect("json");
        assert_eq!(via_pack, via_json);
    }
}

#[test]
fn decode_reports_line_numbers() {
    let mut text = to_jsonl(&corpus());
    text.push_str("{\"ts\":0,\"shard\":0,\"txn\":0,\"kind\":\"warp_drive\"}\n");
    let err = from_jsonl(&text).unwrap_err();
    assert_eq!(err.line, corpus().len() + 1);
    assert!(err.message.contains("warp_drive"), "{err}");
}
