//! Property test: trace stitching reconstructs a valid tree — single
//! root, no orphan spans, child intervals within the parent's — from
//! arbitrarily interleaved ring-buffer drains across threads.
//!
//! Each generated trace is a well-formed request: a `Request` root plus
//! an arbitrary subset of the other pipeline hops, with intervals that
//! nest under every possible resolved ancestor (the stitcher attaches a
//! span to its nearest *present* ancestor, so the layout must nest under
//! `Request` directly too). The trace's events are then scattered over
//! several recorder sinks and emitted from concurrent threads, the
//! recorder is drained, and the stitched forest must reconstruct every
//! trace exactly.

use ks_obs::{stitch_traces, ObsKind, OpCode, Recorder, SpanHop, TraceTree};
use proptest::prelude::*;

/// Relative interval layout, nesting-correct for any present-subset:
/// every non-root hop nests inside `ConnHandle` and `Request`, and
/// `Certify` inside `Exec`.
fn layout(hop: SpanHop) -> (u64, u64) {
    match hop {
        SpanHop::Request => (0, 90),
        SpanHop::ConnHandle => (10, 80),
        SpanHop::Queue => (12, 20),
        SpanHop::Exec => (20, 36),
        SpanHop::Certify => (22, 30),
        SpanHop::WalEnqueue => (36, 40),
        SpanHop::WalBarrier => (40, 50),
        SpanHop::WalFsync => (50, 70),
    }
}

/// Total end-to-end duration of the layout above.
const TOTAL_NS: u64 = 90;

#[derive(Debug, Clone)]
struct GenTrace {
    trace: u64,
    base: u64,
    hops: Vec<SpanHop>,
}

fn gen_trace(index: usize, mask: u8, jitter: u64) -> GenTrace {
    let optional = [
        SpanHop::ConnHandle,
        SpanHop::Queue,
        SpanHop::Exec,
        SpanHop::Certify,
        SpanHop::WalEnqueue,
        SpanHop::WalBarrier,
        SpanHop::WalFsync,
    ];
    let mut hops = vec![SpanHop::Request];
    for (bit, hop) in optional.into_iter().enumerate() {
        if mask & (1 << bit) != 0 {
            hops.push(hop);
        }
    }
    GenTrace {
        trace: index as u64 + 1,
        // Traces may overlap in time (concurrent requests do); jitter
        // staggers them arbitrarily.
        base: index as u64 * 37 + jitter % 512,
        hops,
    }
}

proptest! {
    #[test]
    fn interleaved_multi_ring_drains_stitch_to_valid_trees(
        masks in prop::collection::vec(any::<u8>(), 1..8),
        jitters in prop::collection::vec(any::<u64>(), 1..8),
        assignment in prop::collection::vec(0usize..4, 0..256),
        sinks in 1usize..4,
    ) {
        let traces: Vec<GenTrace> = masks
            .iter()
            .zip(jitters.iter().chain(std::iter::repeat(&0)))
            .enumerate()
            .map(|(i, (&m, &j))| gen_trace(i, m, j))
            .collect();

        // Flatten every trace's start/end events, then scatter them over
        // the sinks according to the arbitrary assignment vector.
        let mut events = Vec::new();
        for t in &traces {
            for &hop in &t.hops {
                let (s, e) = layout(hop);
                events.push((t.base + s, ObsKind::SpanStart {
                    hop,
                    op: OpCode::Commit,
                    trace: t.trace,
                }));
                events.push((t.base + e, ObsKind::SpanEnd {
                    hop,
                    ok: true,
                    trace: t.trace,
                }));
            }
        }
        let recorder = Recorder::new(1024);
        let handles: Vec<_> = (0..sinks).map(|s| recorder.sink(s as u32)).collect();
        let mut per_sink: Vec<Vec<(u64, ObsKind)>> = vec![Vec::new(); sinks];
        for (i, ev) in events.into_iter().enumerate() {
            let s = assignment.get(i).copied().unwrap_or(i) % sinks;
            per_sink[s].push(ev);
        }
        // Emit concurrently: within-ring order is each thread's program
        // order, cross-ring order is whatever the scheduler does.
        std::thread::scope(|scope| {
            for (sink, batch) in handles.iter().zip(per_sink) {
                scope.spawn(move || {
                    for (ts, kind) in batch {
                        sink.emit_at(ts, 0, kind);
                    }
                });
            }
        });

        let drained = recorder.drain();
        let trees = stitch_traces(&drained);
        prop_assert_eq!(trees.len(), traces.len());
        for tree in &trees {
            let expected = &traces[(tree.trace - 1) as usize];
            prop_assert!(tree.is_well_formed(), "tree {:?}", tree);
            prop_assert_eq!(tree.spans.len(), expected.hops.len());
            // Single root, and it is the client request span.
            prop_assert_eq!(tree.roots.len(), 1);
            prop_assert_eq!(tree.root().unwrap().hop, SpanHop::Request);
            // No orphans: every non-root span is someone's child.
            let attached: usize = tree.children.iter().map(Vec::len).sum();
            prop_assert_eq!(attached, tree.spans.len() - 1);
            // Per-hop self times attribute the whole request exactly.
            prop_assert_eq!(tree.total_ns(), TOTAL_NS);
            let self_sum: u64 = tree.hop_latencies().iter().map(|h| h.self_ns).sum();
            prop_assert_eq!(self_sum, TOTAL_NS);
        }
        prop_assert!(trees.iter().all(TraceTree::is_well_formed));
    }
}
