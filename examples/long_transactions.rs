//! The Section 2.4 argument as a runnable comparison: the same
//! long-duration workload under strict 2PL, timestamp ordering, MVTO, and
//! the Korth–Speegle protocol.
//!
//! ```sh
//! cargo run --release --example long_transactions
//! ```

use korth_speegle::baselines::{MultiversionTimestampOrdering, TimestampOrdering, TwoPhaseLocking};
use korth_speegle::protocol::KsProtocolAdapter;
use korth_speegle::sim::{Engine, EngineConfig, Metrics, Workload, WorkloadSpec};

fn main() {
    println!("Long-duration designers: 12 transactions, 8 ops each, heavy hotspot.");
    println!("Think time models the human between operations.\n");

    for think in [2u64, 30, 120] {
        let w = Workload::generate(WorkloadSpec {
            num_txns: 12,
            ops_per_txn: 8,
            num_entities: 24,
            read_pct: 60,
            think_time: think,
            hot_fraction_pct: 20,
            hot_access_pct: 80,
            arrival_spread: 10,
            chain_length: 1,
            seed: 11,
        });
        println!("— think time {think} ticks —");
        println!("  {}", Metrics::header());
        let config = EngineConfig::default();
        let runs: Vec<Metrics> = vec![
            Engine::new(&w, TwoPhaseLocking::new(), config).run().0,
            Engine::new(&w, TimestampOrdering::new(), config).run().0,
            Engine::new(&w, MultiversionTimestampOrdering::new(), config)
                .run()
                .0,
            Engine::new(&w, KsProtocolAdapter::for_workload(&w), config)
                .run()
                .0,
        ];
        for m in &runs {
            println!("  {}", m.row());
        }
        let ks = &runs[3];
        assert_eq!(ks.waits, 0);
        assert_eq!(ks.aborts, 0);
        println!();
    }
    println!("The KS protocol's waits and aborts stay at zero as transactions");
    println!("grow: versions decouple readers from writers, and correctness is");
    println!("the model's (predicate satisfaction), not serializability.");
}
