//! Record a protocol session, serialize it to the wire format, replay it
//! on a fresh manager, and verify the replayed session against the formal
//! model — the observability/reproducibility workflow a production
//! deployment would use for bug reports.
//!
//! ```sh
//! cargo run --example session_replay
//! ```

use korth_speegle::kernel::{Domain, EntityId, Schema, UniqueState};
use korth_speegle::model::{check, Specification};
use korth_speegle::predicate::{parse_cnf, Strategy};
use korth_speegle::protocol::extract::model_execution;
use korth_speegle::protocol::session::replay;
use korth_speegle::protocol::RecordingManager;

fn main() {
    let schema = Schema::uniform(["x", "y"], Domain::Range { min: 0, max: 999 });
    let constraint = parse_cnf(&schema, "x = y").unwrap();
    let initial = UniqueState::new(&schema, vec![5, 5]).unwrap();
    let x = EntityId(0);
    let y = EntityId(1);

    // ── Record ───────────────────────────────────────────────────────────
    let mut rm = RecordingManager::new(
        schema.clone(),
        &initial,
        Specification::classical(&constraint),
    );
    let root = rm.root();
    let breaker = rm
        .define(
            root,
            Specification::new(
                parse_cnf(&schema, "x = 5 & y = 5").unwrap(),
                parse_cnf(&schema, "x > y").unwrap(),
            ),
            &[],
            &[],
        )
        .unwrap();
    let fixer = rm
        .define(
            root,
            Specification::new(
                parse_cnf(&schema, "x = 6 & y = 5").unwrap(),
                parse_cnf(&schema, "x = y").unwrap(),
            ),
            &[breaker],
            &[],
        )
        .unwrap();
    rm.validate(breaker, Strategy::Backtracking).unwrap();
    rm.read(breaker, x).unwrap();
    rm.write(breaker, x, 6).unwrap();
    rm.validate(fixer, Strategy::Backtracking).unwrap();
    rm.read(fixer, x).unwrap();
    rm.write(fixer, y, 6).unwrap();
    rm.commit(breaker).unwrap();
    rm.commit(fixer).unwrap();
    let live_final = rm.manager().result_view(root).unwrap();
    let log = rm.into_log();
    println!("recorded {} events", log.events.len());

    // ── Serialize / deserialize ──────────────────────────────────────────
    let text = korth_speegle::protocol::to_wire(&log);
    println!("log is {} bytes of wire text; first lines:", text.len());
    for line in text.lines().take(6) {
        println!("  {line}");
    }
    let restored: korth_speegle::protocol::SessionLog =
        korth_speegle::protocol::from_wire(&text).unwrap();

    // ── Replay ───────────────────────────────────────────────────────────
    let pm = replay(&restored).unwrap();
    let replayed_final = pm.result_view(pm.root()).unwrap();
    assert_eq!(live_final, replayed_final);
    println!("\nreplayed final state matches the live session: {replayed_final}");

    // ── Verify the replayed session against the model ───────────────────
    let (txn, parent, exec) = model_execution(&pm, pm.root()).unwrap();
    let report = check::check(&schema, &txn, &parent, &exec);
    assert!(report.is_correct_parent_based());
    println!("model check on the replayed session: correct ✓ parent-based ✓");
}
