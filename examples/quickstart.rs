//! Quickstart: the three pillars of the Korth–Speegle model in ~5 minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use korth_speegle::kernel::{DatabaseState, Domain, Schema, UniqueState, VersionSpace};
use korth_speegle::model::{check, search, Expr, Specification, Step, Transaction, TxnName};
use korth_speegle::predicate::{parse_cnf, Strategy};
use korth_speegle::schedule::{classify, corpus, Schedule};

fn main() {
    // ── 1. Versions: a database state is a SET of unique states ─────────
    let schema = Schema::uniform(["x", "y"], Domain::Range { min: 0, max: 99 });
    let db = DatabaseState::from_states(vec![
        UniqueState::new(&schema, vec![1, 2]).unwrap(),
        UniqueState::new(&schema, vec![3, 4]).unwrap(),
    ])
    .unwrap();
    println!("database state S = {db}");
    println!("version states V_S (mixtures of versions):");
    for v in VersionSpace::new(&db) {
        println!("  {v}");
    }

    // A predicate can be satisfiable over V_S even when no single unique
    // state satisfies it — the essence of multiversion freedom.
    let p = parse_cnf(&schema, "x = 3 & y = 2").unwrap();
    println!(
        "\npredicate {}: satisfiable over V_S? {}",
        p.display_with(&schema),
        p.satisfiable_over(&db)
    );

    // ── 2. Schedules: correctness classes beyond serializability ────────
    let s = Schedule::parse("R1(x) W1(x) R2(x) R2(y) W2(y) R1(y) W1(y)").unwrap();
    println!("\nExample 1's schedule: {s}");
    let m = classify(&s, &corpus::xy_objects());
    println!("  serializable (VSR)?          {}", m.vsr);
    println!("  multiversion serializable?   {}", m.mvsr);
    println!("  predicate-wise serializable? {}", m.pwsr);
    println!("  conflict predicate correct?  {}", m.cpc);

    // ── 3. Nested transactions with pre/postconditions ─────────────────
    // Two cooperating subtransactions: c0 breaks x = y, c1 repairs it.
    let x = korth_speegle::kernel::EntityId(0);
    let y = korth_speegle::kernel::EntityId(1);
    let c0 = Transaction::leaf(
        TxnName::root(),
        Specification::new(
            parse_cnf(&schema, "x = y").unwrap(),
            parse_cnf(&schema, "x > y").unwrap(),
        ),
        vec![Step::Write(x, Expr::plus_const(x, 1))],
    );
    let c1 = Transaction::leaf(
        TxnName::root(),
        Specification::new(
            parse_cnf(&schema, "x > y").unwrap(),
            parse_cnf(&schema, "x = y").unwrap(),
        ),
        vec![Step::Write(y, Expr::plus_const(y, 1))],
    );
    let root = Transaction::nested(
        TxnName::root(),
        Specification::classical(&parse_cnf(&schema, "x = y").unwrap()),
        vec![c0, c1],
        vec![(0, 1)], // c0 before c1
    )
    .unwrap();
    let initial = DatabaseState::singleton(UniqueState::new(&schema, vec![5, 5]).unwrap());
    let (exec, stats) =
        search::find_correct_execution(&schema, &root, &initial, Strategy::Backtracking)
            .unwrap()
            .expect("a correct execution exists");
    println!("\nnested cooperation: found a correct execution");
    println!("  solver nodes: {}", stats.solver.nodes);
    println!("  X(t.0) = {}", exec.inputs[0]);
    println!("  X(t.1) = {}", exec.inputs[1]);
    println!("  final  = {}", exec.final_input);
    let report = check::check(&schema, &root, &initial, &exec);
    println!(
        "  correct? {}   parent-based? {}",
        report.is_correct(),
        report.parent_based
    );
    assert!(report.is_correct_parent_based());
    println!("\nNeither subtransaction preserves x = y on its own, and the");
    println!("interleaving is NOT serializable in the classical sense — yet the");
    println!("execution is provably correct. That is the paper's point.");
}
