//! A guided tour of the correctness-class lattice using the paper's own
//! Figure 2 region schedules.
//!
//! ```sh
//! cargo run --example classifier_tour
//! ```

use korth_speegle::schedule::classify::Membership;
use korth_speegle::schedule::corpus::fig2_regions;
use korth_speegle::schedule::csr::{conflict_graph, csr_witness};
use korth_speegle::schedule::mvsr::{mvsr_witness, reads_before_writes_graph};
use korth_speegle::schedule::pc::cpc_witnesses;
use korth_speegle::schedule::vsr::vsr_witness;

fn main() {
    println!("The Figure 2 lattice, region by region\n");
    println!("        {}", Membership::header());
    for region in fig2_regions() {
        let m = region.verify().expect("corpus verified by tests");
        println!("  r{}    {}  — {}", region.id, m.row(), region.cell);
    }

    println!("\n— Region 9 (fully serializable): every witness agrees —");
    let r9 = &fig2_regions()[8];
    println!("schedule: {}", r9.schedule);
    println!(
        "conflict graph edges: {:?}",
        conflict_graph(&r9.schedule).edges().collect::<Vec<_>>()
    );
    println!("CSR witness:  {:?}", csr_witness(&r9.schedule).unwrap());
    println!("VSR witness:  {:?}", vsr_witness(&r9.schedule).unwrap());
    println!("MVSR witness: {:?}", mvsr_witness(&r9.schedule).unwrap());

    println!("\n— Region 4 (Example 1): versions rescue a non-serializable run —");
    let r4 = &fig2_regions()[3];
    println!("schedule: {}", r4.schedule);
    println!(
        "VSR witness:  {:?} (none: not serializable)",
        vsr_witness(&r4.schedule)
    );
    println!("MVSR witness: {:?}", mvsr_witness(&r4.schedule).unwrap());
    println!(
        "reads-before-writes edges: {:?} (acyclic → MVCSR)",
        reads_before_writes_graph(&r4.schedule)
            .edges()
            .collect::<Vec<_>>()
    );

    println!("\n— Region 2: only the predicate decomposition rescues it —");
    let r2 = &fig2_regions()[1];
    println!("schedule: {}", r2.schedule);
    println!("full reads-before-writes: cyclic → not MVCSR");
    for (obj, order) in cpc_witnesses(&r2.schedule, &r2.objects).unwrap() {
        println!("  object {obj}: per-conjunct serialization {order:?}");
    }
    println!("the per-object orders DISAGREE — allowed, because conjuncts are");
    println!("independently responsible for consistency. That disagreement is");
    println!("exactly the concurrency serializability forbids.");

    println!("\n— Region 1: beyond repair —");
    let r1 = &fig2_regions()[0];
    println!("schedule: {} — in no class at all.", r1.schedule);
}
