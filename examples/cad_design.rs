//! The motivating scenario: cooperating designers on a shared CAD model,
//! run through the Section 5 protocol end to end.
//!
//! A bridge design has two parameters that must stay consistent:
//! `load` (what the deck must carry) and `capacity` (what the cables
//! provide); the invariant is `capacity >= load`. A third entity `rev`
//! counts design revisions.
//!
//! Designer A raises the load rating (breaking the invariant), designer B
//! reinforces the cables (restoring it), and an inspector reads a
//! consistent snapshot mid-flight thanks to versions. Under 2PL the
//! inspector would wait for hours; under timestamping somebody's afternoon
//! of work would be thrown away. Here nobody waits and nobody aborts.
//!
//! ```sh
//! cargo run --example cad_design
//! ```

use korth_speegle::kernel::{Domain, EntityId, Schema, UniqueState};
use korth_speegle::model::check;
use korth_speegle::model::Specification;
use korth_speegle::predicate::{parse_cnf, Strategy};
use korth_speegle::protocol::extract::model_execution;
use korth_speegle::protocol::{CommitOutcome, ProtocolManager, ReadOutcome};

fn main() {
    let schema = Schema::uniform(
        ["load", "capacity", "rev"],
        Domain::Range {
            min: 0,
            max: 10_000,
        },
    );
    let load = EntityId(0);
    let capacity = EntityId(1);
    let rev = EntityId(2);
    let invariant = parse_cnf(&schema, "capacity >= load").unwrap();

    // Initial design: load 100, capacity 120, revision 1.
    let initial = UniqueState::new(&schema, vec![100, 120, 1]).unwrap();
    let mut pm = ProtocolManager::new(
        schema.clone(),
        &initial,
        Specification::classical(&invariant),
    );
    let root = pm.root();

    // ── Phase 1: definition ─────────────────────────────────────────────
    // Designer A: upgrade the load rating to 200. Afterwards the invariant
    // is knowingly broken — the postcondition says only what A guarantees.
    let designer_a = pm
        .define(
            root,
            Specification::new(
                parse_cnf(&schema, "capacity >= load & load = 100").unwrap(),
                parse_cnf(&schema, "load = 200").unwrap(),
            ),
            &[],
            &[],
        )
        .unwrap();
    // Designer B: reinforce cables AFTER A's change lands; restores the
    // invariant. B's precondition describes the broken intermediate state.
    let designer_b = pm
        .define(
            root,
            Specification::new(
                parse_cnf(&schema, "load = 200 & capacity = 120").unwrap(),
                parse_cnf(&schema, "capacity >= load").unwrap(),
            ),
            &[designer_a],
            &[],
        )
        .unwrap();
    // The inspector is UNORDERED: they want any consistent design.
    let inspector = pm
        .define(
            root,
            Specification::new(
                parse_cnf(&schema, "capacity >= load & rev >= 1").unwrap(),
                parse_cnf(&schema, "true").unwrap(),
            ),
            &[],
            &[],
        )
        .unwrap();

    println!(
        "defined {} (designer A), {} (designer B), {} (inspector)",
        pm.name_of(designer_a).unwrap(),
        pm.name_of(designer_b).unwrap(),
        pm.name_of(inspector).unwrap()
    );

    // ── Phase 2+3: validation and execution, interleaved ───────────────
    pm.validate(designer_a, Strategy::Backtracking).unwrap();
    let ReadOutcome::Value(l) = pm.read(designer_a, load).unwrap() else {
        panic!()
    };
    println!("\ndesigner A reads load = {l}, raises it to 200");
    pm.write(designer_a, load, 200).unwrap();

    // The design is now INCONSISTENT (load 200 > capacity 120). The
    // inspector still validates: versions give them the old consistent
    // snapshot — no waiting.
    pm.validate(inspector, Strategy::Backtracking).unwrap();
    let ReadOutcome::Value(il) = pm.read(inspector, load).unwrap() else {
        panic!()
    };
    let ReadOutcome::Value(ic) = pm.read(inspector, capacity).unwrap() else {
        panic!()
    };
    println!("inspector reads a CONSISTENT snapshot mid-flight: load={il}, capacity={ic}");
    assert!(ic >= il);

    // Designer B picks up A's dirty (uncommitted!) change — cooperation.
    pm.validate(designer_b, Strategy::Backtracking).unwrap();
    let ReadOutcome::Value(bl) = pm.read(designer_b, load).unwrap() else {
        panic!()
    };
    println!("designer B sees A's in-flight load = {bl}, reinforces cables to 250");
    assert_eq!(bl, 200);
    pm.write(designer_b, capacity, 250).unwrap();
    pm.write(designer_b, rev, 2).unwrap();

    // ── Phase 4: termination ────────────────────────────────────────────
    assert_eq!(pm.commit(inspector).unwrap(), CommitOutcome::Committed);
    assert_eq!(pm.commit(designer_a).unwrap(), CommitOutcome::Committed);
    assert_eq!(pm.commit(designer_b).unwrap(), CommitOutcome::Committed);
    let view = pm.result_view(root).unwrap();
    println!(
        "\nfinal design: load={}, capacity={}, rev={}",
        view.get(load),
        view.get(capacity),
        view.get(rev)
    );
    assert_eq!(pm.commit(root).unwrap(), CommitOutcome::Committed);

    // Verify against the formal model: correct and parent-based.
    let (txn, parent, exec) = model_execution(&pm, root).unwrap();
    let report = check::check(&schema, &txn, &parent, &exec);
    assert!(report.is_correct_parent_based(), "{report:?}");
    println!("\nmodel check: correct ✓  parent-based ✓");
    println!("stats: {:?}", pm.stats());
    println!("\nNo designer waited; no work was thrown away; the invariant held");
    println!("at every commit point — without serializability.");
}
