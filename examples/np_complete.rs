//! Lemma 1 live: solve SAT by asking "can this transaction be given a
//! consistent set of versions to read?"
//!
//! ```sh
//! cargo run --example np_complete
//! ```

use korth_speegle::model::np::{decide, theorem1_instance};
use korth_speegle::predicate::sat::{reduce_to_version_problem, SatInstance};
use korth_speegle::predicate::Strategy;

fn main() {
    // (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (¬x2 ∨ ¬x3) — satisfiable.
    let inst = SatInstance::new(3, vec![vec![1, 2], vec![-1, 3], vec![-2, -3]]);
    println!("SAT instance: (x1 ∨ x2) ∧ (¬x1 ∨ x3) ∧ (¬x2 ∨ ¬x3)\n");

    // The paper's transformation: E = U, S = {all-0, all-1}, I_t = C.
    let vp = reduce_to_version_problem(&inst);
    println!("Lemma 1 reduction:");
    println!("  entities: {} boolean data items", vp.schema.len());
    println!(
        "  database state: {} (every truth assignment is a version state)",
        vp.state
    );
    println!("  I_t = {}", vp.input_predicate.display_with(&vp.schema));

    // Theorem 1: wrap in a one-child transaction with O_t = true and ask
    // the execution-correctness search.
    let t1 = theorem1_instance(&inst);
    match decide(&t1, Strategy::Backtracking) {
        Some(assignment) => {
            println!("\na correct execution exists — the version assignment IS a model:");
            for (i, v) in assignment.iter().enumerate() {
                println!("  x{} = {}", i + 1, v);
            }
            assert!(inst.eval(&assignment));
        }
        None => println!("\nno correct execution — the formula is unsatisfiable"),
    }

    // And the converse: an unsatisfiable formula admits no execution.
    let unsat = SatInstance::new(2, vec![vec![1], vec![-1]]);
    let t1u = theorem1_instance(&unsat);
    assert!(decide(&t1u, Strategy::Backtracking).is_none());
    println!("\n(x1) ∧ (¬x1): no correct execution, as expected.");
    println!("\nRecognizing correct executions is exactly as hard as SAT —");
    println!("which is why the paper defines the efficient CPC subclass.");
}
