//! # korth-speegle
//!
//! A production-quality Rust reproduction of Henry F. Korth and Gregory
//! Speegle, *Formal Model of Correctness Without Serializability*
//! (SIGMOD 1988 / UT Austin TR-87-47).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`kernel`] — entities, domains, unique/database/version states;
//! * [`predicate`] — CNF consistency predicates, objects, and the
//!   NP-complete version-assignment solver (Lemma 1);
//! * [`schedule`] — classical read/write schedules and the correctness-class
//!   suite: `CSR`, `VSR`, `MVSR`, `MVCSR`, `PWSR`, `PWCSR`, partial-order
//!   variants, `PC` and `CPC` (Section 4, Figure 2);
//! * [`model`] — the formal nested-transaction model: specifications,
//!   implementations, executions `(R, X)`, parent-based executions, and the
//!   correctness checker (Section 3);
//! * [`mvstore`] — the multi-version storage substrate;
//! * [`sim`] — the discrete-event simulator and workload generator for
//!   long-duration transactions;
//! * [`baselines`] — strict 2PL, timestamp ordering, and multiversion
//!   timestamp ordering comparators;
//! * [`protocol`] — the paper's Section 5 correct-execution protocol with
//!   the `R_v`/`R`/`W` lock table (Figure 3) and `re-eval` procedure
//!   (Figure 4);
//! * [`server`] — the concurrent multi-session transaction service:
//!   entity-sharded worker threads, blocking sessions, admission control,
//!   and post-run model-checked verification;
//! * [`net`] — the networked front end: a length-prefixed versioned wire
//!   protocol, a TCP server embedding the service, and a remote session
//!   with deadlines and retry/backoff implementing the same
//!   [`Client`](ks_server::Client) contract as in-process sessions.
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment inventory.

#![forbid(unsafe_code)]

pub use ks_baselines as baselines;
pub use ks_core as model;
pub use ks_kernel as kernel;
pub use ks_mvstore as mvstore;
pub use ks_net as net;
pub use ks_predicate as predicate;
pub use ks_protocol as protocol;
pub use ks_schedule as schedule;
pub use ks_server as server;
pub use ks_sim as sim;

/// Convenience re-exports for the common 90% of the API.
///
/// ```
/// use korth_speegle::prelude::*;
/// let s = Schedule::parse("R1(x) W1(x) R2(x)").unwrap();
/// assert!(csr::is_csr(&s));
/// ```
pub mod prelude {
    pub use ks_core::{
        check, check_tree, search, Execution, Expr, Specification, Step, Transaction, TreeBuilder,
        TreeExecution, TxnName,
    };
    pub use ks_kernel::{
        DatabaseState, Domain, EntityId, Schema, SchemaBuilder, UniqueState, Value, VersionSpace,
        VersionState,
    };
    pub use ks_net::{NetClientConfig, NetConfig, NetServer, RemoteSession};
    pub use ks_predicate::{parse_cnf, solve, Atom, Clause, CmpOp, Cnf, Object, Strategy};
    pub use ks_protocol::{
        CommitOutcome, ProtocolManager, ReadOutcome, RecordingManager, SessionLog,
        ValidationOutcome,
    };
    pub use ks_schedule::{classify, csr, mvsr, pc, pwsr, vsr, Membership, Schedule, TxnId};
    pub use ks_server::{
        Client, ServerConfig, ServerError, Session, TxnBuilder, TxnHandle, TxnService,
    };
    pub use ks_sim::{Engine, EngineConfig, Metrics, Workload, WorkloadSpec};
}
